"""Grid runner: execute every cell of a scenario, checkpointed, in parallel.

The runner owns everything between a parsed
:class:`~repro.experiments.spec.ExperimentSpec` and the aggregate report:

* **one directory per run** (``out_dir``)::

      spec.json              # canonical spec copy + digest (provenance)
      checkpoint.json        # PR 2 CheckpointManager state (grid progress)
      cells/<id>.json        # one schema-versioned RunReport per cell
      cells/<id>.trace.json  # optional Chrome trace (spec: trace: true)
      report.json            # the aggregate (repro.experiment_report/1)
      report.txt             # ascii rendering of the aggregate

* **process fan-out**: cells are independent, so ``workers > 1`` runs
  them through a :class:`~concurrent.futures.ProcessPoolExecutor`
  (non-daemonic workers — a cell may itself be a multiproc engine run).
  Cell *order* in reports is spec order regardless of completion order.

* **checkpoint/resume**: grid progress rides the same
  :class:`~repro.faults.checkpoint.CheckpointManager` the supervised
  engine uses — atomic tmp-sibling writes, orphan sweeping, and a
  fingerprint (spec digest + cell count) that refuses to resume a
  different scenario.  A cell is *completed* when its RunReport file is
  fully written (atomic rename); resume skips completed cells, so a run
  killed mid-grid finishes the remainder and the aggregate — built only
  from the on-disk cell reports — is bitwise identical to an
  uninterrupted run.

* **failure handling**: a failing cell is recorded (typed error string)
  and does not stop the grid; it stays out of the checkpoint so a later
  ``resume`` retries exactly the failed/missing cells.  The aggregate
  lists failed cells and the CLI exits non-zero.

Determinism note: simulated-engine cells report *virtual* time, so their
RunReports — and therefore the whole aggregate — are reproducible
byte-for-byte; real-engine cells (serial/multiproc/autotune) report wall
time and vary run to run.  Scenario files that feed checked-in tables
use MODELED simulated cells for exactly this reason.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ExperimentSpecError, ReproError
from repro.experiments.aggregate import build_aggregate, format_ascii
from repro.experiments.spec import CellSpec, ExperimentSpec
from repro.faults.checkpoint import CheckpointManager
from repro.obs.report import RunReport

#: checkpoint counter keys (grid progress, reported on resume)
_COUNTER_CELLS = "cells_completed"


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".cell-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _hits_digest(hits: Dict[int, List[Any]]) -> str:
    """Deterministic digest of a hit set (the identity-check currency).

    Hashes exactly the fields :class:`~repro.scoring.hits.Hit` equality
    compares — ``mass`` stays out because span masses legitimately
    differ in the last float bits across database partitionings.
    ``repr`` keeps scores full-precision: two cells agree iff their hits
    are bitwise identical, the same bar the engine-equality tests use.
    """
    blob = json.dumps(
        {
            str(qid): [
                [h.protein_id, h.start, h.stop, repr(h.mod_delta), repr(h.score)]
                for h in hit_list
            ]
            for qid, hit_list in sorted(hits.items())
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def build_workload(params: Dict[str, Any]):
    """(database, queries) for one cell's ``workload.*`` params."""
    from repro.workloads.queries import QueryWorkload
    from repro.workloads.synthetic import generate_database

    db = generate_database(
        int(params.get("workload.database_size", 1000)),
        seed=int(params.get("workload.seed", 202)),
    )
    workload_kwargs: Dict[str, Any] = {
        "num_queries": int(params.get("workload.queries", 100)),
        "seed": int(params.get("workload.query_seed", 17)),
    }
    for knob in ("source_size", "min_length", "max_length"):
        key = f"workload.{knob}"
        if key in params:
            workload_kwargs[knob] = int(params[key])
    if "workload.decoy_fraction" in params:
        workload_kwargs["decoy_fraction"] = float(params["workload.decoy_fraction"])
    if "workload.charges" in params:
        workload_kwargs["charges"] = tuple(int(z) for z in params["workload.charges"])
    spectra, _targets = QueryWorkload(**workload_kwargs).build()
    return db, spectra


def build_config(params: Dict[str, Any]):
    """A :class:`~repro.core.config.SearchConfig` from ``config.*`` params."""
    from repro.core.config import SearchConfig

    kwargs: Dict[str, Any] = {}
    for knob in (
        "scorer",
        "delta",
        "tau",
        "execution",
        "use_index",
        "use_sweep",
        "sweep_cohort",
        "fragment_tolerance",
        "index_max_length",
        "min_candidate_length",
    ):
        key = f"config.{knob}"
        if key in params:
            kwargs[knob] = params[key]
    return SearchConfig(**kwargs)


def store_key(params: Dict[str, Any]) -> str:
    """Stable directory name for the persisted store a cell streams from.

    Cells sharing a database and build geometry share one store under
    ``out_dir/stores/`` — built once by the runner (warm path), opened
    read-only by every cell that names it.
    """
    relevant = {
        k: params[k]
        for k in (
            "workload.database_size",
            "workload.seed",
            "index.mode",
            "index.partition_mb",
            "index.shards",
            "config.fragment_tolerance",
            "config.index_max_length",
        )
        if k in params
    }
    blob = json.dumps(relevant, sort_keys=True, separators=(",", ":"))
    return "store-" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def prebuild_store(params: Dict[str, Any], stores_dir: str) -> str:
    """Build (once) the persisted index a resident/partitioned cell uses."""
    from repro.workloads.synthetic import generate_database

    path = os.path.join(stores_dir, store_key(params))
    if os.path.isdir(path):
        return path  # fingerprint-validated at open; rebuilds never race
    os.makedirs(stores_dir, exist_ok=True)
    db = generate_database(
        int(params.get("workload.database_size", 1000)),
        seed=int(params.get("workload.seed", 202)),
    )
    build_kwargs: Dict[str, Any] = {}
    if "config.fragment_tolerance" in params:
        build_kwargs["fragment_tolerance"] = float(params["config.fragment_tolerance"])
    if "config.index_max_length" in params:
        build_kwargs["max_length"] = int(params["config.index_max_length"])
    if params.get("index.mode") == "partitioned":
        from repro.store import save_partitioned_index

        save_partitioned_index(
            db,
            path,
            partition_mb=float(params.get("index.partition_mb", 4.0)),
            **build_kwargs,
        )
    else:
        from repro.store import save_index

        save_index(
            db,
            path,
            num_shards=int(params.get("index.shards", 1)),
            **build_kwargs,
        )
    return path


def execute_cell(
    spec: ExperimentSpec, cell: CellSpec, out_dir: str, trace: bool = False
) -> Dict[str, Any]:
    """Run one cell and write its RunReport; returns a small summary.

    The cell's parameters ride inside the report
    (``extras.experiment_cell``) so every cell file is self-describing,
    and a ``hits_digest`` lands in extras for the identity checks.
    """
    from repro.obs.metrics import enable_metrics

    params = cell.params
    db, queries = build_workload(params)
    config = build_config(params)
    algorithm = params.get("engine.algorithm", "algorithm_a")
    ranks = int(params.get("engine.ranks", 1))
    plan = None
    plan_ref = params.get("faults.plan")
    if plan_ref is not None:
        plan = spec.fault_plans[plan_ref]

    registry = enable_metrics()
    registry.reset()
    trace_events: Optional[List[Dict[str, Any]]] = None
    tuning = None
    try:
        if algorithm == "multiproc":
            report = _run_multiproc_cell(db, queries, config, params, ranks, plan, out_dir)
        elif algorithm == "autotune":
            from repro.tune import autotune

            result = autotune(db, queries, config, run=True, lower_bounds=False)
            report = result.report
            tuning = result.tuning
        elif algorithm == "serial" and params.get("index.mode", "none") != "none":
            report = _run_serial_store_cell(db, queries, config, params, out_dir)
        elif algorithm == "serial":
            from repro.core.search import search_serial

            if ranks != 1:
                raise ExperimentSpecError(
                    f"cell {cell.cell_id!r}: serial engine requires engine.ranks == 1, got {ranks}"
                )
            report = search_serial(db, queries, config)
        else:
            from repro.core.driver import run_search
            from repro.simmpi.scheduler import ClusterConfig

            speeds = params.get("engine.rank_speeds")
            cluster_config = ClusterConfig(
                num_ranks=ranks,
                record_events=trace,
                rank_speeds=tuple(float(s) for s in speeds) if speeds else None,
                fault_plan=plan,
            )
            report = run_search(
                db, queries, algorithm, ranks, config, cluster_config=cluster_config
            )
            if trace and report.trace is not None:
                from repro.obs.chrome_trace import events_from_summary

                trace_events = events_from_summary(report.trace)
    finally:
        enable_metrics(False)

    extras = {
        **report.extras,
        "experiment_cell": {"id": cell.cell_id, "params": dict(params)},
    }
    if report.hits:  # MODELED cells score nothing; no digest to compare
        extras["hits_digest"] = _hits_digest(report.hits)
    report = dataclasses.replace(report, extras=extras)
    run_report = RunReport.from_search_report(
        report, metrics=registry.snapshot(), tuning=tuning
    )
    cells_dir = os.path.join(out_dir, "cells")
    os.makedirs(cells_dir, exist_ok=True)
    trace_path = None
    if trace_events:
        from repro.obs.chrome_trace import write_chrome_trace

        trace_path = os.path.join(cells_dir, f"{cell.cell_id}.trace.json")
        write_chrome_trace(
            trace_path,
            trace_events,
            {"cell": cell.cell_id, "algorithm": report.algorithm, "ranks": ranks},
        )
    report_path = os.path.join(cells_dir, f"{cell.cell_id}.json")
    _atomic_write(report_path, run_report.to_json() + "\n")
    return {
        "cell_id": cell.cell_id,
        "index": cell.index,
        "report_path": report_path,
        "trace_path": trace_path,
        "virtual_time": report.virtual_time,
        "candidates_evaluated": report.candidates_evaluated,
    }


def _run_multiproc_cell(db, queries, config, params, ranks, plan, out_dir):
    from repro.engines.multiproc import run_multiprocess_search
    from repro.faults.injector import FaultInjector, TaskFault

    injector = None
    if plan is not None and plan.crashes:
        # same mapping the CLI uses: simulated rank crashes become
        # injected task crashes (one attempt each)
        injector = FaultInjector(
            tuple(TaskFault(c.rank, "crash", attempts=1) for c in plan.crashes)
        )
    kwargs: Dict[str, Any] = {}
    mode = params.get("index.mode", "none")
    if mode != "none":
        kwargs["index_path"] = prebuild_store(params, os.path.join(out_dir, "stores"))
        if "index.memory_budget_mb" in params:
            kwargs["memory_budget_mb"] = float(params["index.memory_budget_mb"])
    return run_multiprocess_search(
        db,
        queries,
        num_workers=ranks,
        config=config,
        query_blocks=int(params.get("engine.query_blocks", 1)),
        start_method=params.get("engine.start_method"),
        fault_injector=injector,
        **kwargs,
    )


def _run_serial_store_cell(db, queries, config, params, out_dir):
    from repro.core.search import search_serial
    from repro.store import open_any_index

    path = prebuild_store(params, os.path.join(out_dir, "stores"))
    store = open_any_index(path)
    kwargs: Dict[str, Any] = {}
    if "index.memory_budget_mb" in params:
        kwargs["memory_budget_mb"] = float(params["index.memory_budget_mb"])
    return search_serial(db, queries, config, index_store=store, **kwargs)


def _cell_task(spec_payload: Dict[str, Any], cell_index: int, out_dir: str, trace: bool):
    """Top-level (picklable) pool entry point: rebuild the spec, run one cell."""
    spec = ExperimentSpec.from_dict(spec_payload)
    return execute_cell(spec, spec.cell(cell_index), out_dir, trace=trace)


def _grid_fingerprint(spec: ExperimentSpec) -> Dict[str, object]:
    return {"kind": "experiment_grid", "spec_digest": spec.digest(), "num_cells": len(spec.cells())}


def _load_cell_report(path: str) -> Optional[RunReport]:
    try:
        return RunReport.load(path)
    except (OSError, ValueError):
        return None


def run_experiment(
    spec: ExperimentSpec,
    out_dir: str,
    workers: int = 1,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Execute the grid and return the aggregate report (also persisted).

    ``resume=True`` continues a previous run of the *same* spec in
    ``out_dir``: completed cells (checkpointed **and** on disk) are not
    re-executed.  Fresh runs refuse an out_dir holding another grid's
    checkpoint — pass a new directory or resume the old one.
    """
    say = progress or (lambda line: None)
    if workers < 1:
        raise ExperimentSpecError(f"workers must be >= 1, got {workers}")
    cells = spec.cells()
    os.makedirs(out_dir, exist_ok=True)
    fingerprint = _grid_fingerprint(spec)
    checkpoint_path = os.path.join(out_dir, "checkpoint.json")
    if resume and os.path.exists(checkpoint_path):
        manager = CheckpointManager.resume(checkpoint_path, fingerprint, tau=1)
    else:
        if not resume and os.path.exists(checkpoint_path):
            # a different spec's leftovers must not be silently merged;
            # the same spec's leftovers are what `resume` is for
            raise ExperimentSpecError(
                f"{out_dir} already holds a grid checkpoint; "
                f"run `repro experiments resume` to continue it or choose "
                f"a fresh --out directory"
            )
        manager = CheckpointManager(checkpoint_path, fingerprint, tau=1)
    _atomic_write(
        os.path.join(out_dir, "spec.json"),
        json.dumps(
            {"digest": spec.digest(), "source": spec.source, "spec": spec.to_payload()},
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )

    # completed = checkpointed AND the report file still loads; a cell
    # whose file was deleted or torn re-runs rather than silently
    # missing from the aggregate
    completed: Dict[int, str] = {}
    for cell in cells:
        if cell.index not in manager.completed_tasks:
            continue
        path = os.path.join(out_dir, "cells", f"{cell.cell_id}.json")
        if _load_cell_report(path) is not None:
            completed[cell.index] = path
        else:
            manager.completed_tasks.discard(cell.index)
    pending = [cell for cell in cells if cell.index not in completed]
    if completed:
        say(f"resumed {len(completed)} completed cell(s) from {checkpoint_path}")

    # warm stores are shared across cells; build them once, serially,
    # before the fan-out so parallel cells never race a builder
    for cell in pending:
        if cell.params.get("index.mode", "none") != "none":
            prebuild_store(cell.params, os.path.join(out_dir, "stores"))

    failures: Dict[int, str] = {}

    def record_done(cell: CellSpec, summary: Dict[str, Any]) -> None:
        manager.record(
            cell.index, {}, counters={_COUNTER_CELLS: 1}
        )  # flushes atomically (interval=1)
        completed[cell.index] = summary["report_path"]
        say(
            f"cell {len(completed) + len(failures)}/{len(cells)} "
            f"{cell.cell_id}: t={summary['virtual_time']:.3f}s "
            f"candidates={summary['candidates_evaluated']}"
        )

    def record_failed(cell: CellSpec, exc: BaseException) -> None:
        failures[cell.index] = f"{type(exc).__name__}: {exc}"
        say(f"cell {cell.cell_id} FAILED: {failures[cell.index]}")

    if workers == 1 or len(pending) <= 1:
        for cell in pending:
            try:
                summary = execute_cell(spec, cell, out_dir, trace=spec.trace)
            except ReproError as exc:
                record_failed(cell, exc)
            else:
                record_done(cell, summary)
    else:
        import concurrent.futures

        payload = spec.to_payload()
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_cell_task, payload, cell.index, out_dir, spec.trace): cell
                for cell in pending
            }
            for future in concurrent.futures.as_completed(futures):
                cell = futures[future]
                try:
                    summary = future.result()
                except (ReproError, concurrent.futures.process.BrokenProcessPool) as exc:
                    record_failed(cell, exc)
                else:
                    record_done(cell, summary)

    manager.flush()
    aggregate = aggregate_run(spec, out_dir, failures=failures)
    return aggregate


def aggregate_run(
    spec: ExperimentSpec,
    out_dir: str,
    failures: Optional[Dict[int, str]] = None,
) -> Dict[str, Any]:
    """(Re)build the aggregate purely from the on-disk cell reports.

    Called at the end of every run *and* by ``repro experiments report``
    — the same inputs (spec + cell files) always produce the same bytes,
    which is what makes the killed-and-resumed grid's aggregate bitwise
    identical to an uninterrupted run's.
    """
    failures = failures or {}
    entries: List[Dict[str, Any]] = []
    for cell in spec.cells():
        path = os.path.join(out_dir, "cells", f"{cell.cell_id}.json")
        report = _load_cell_report(path)
        trace_path = os.path.join(out_dir, "cells", f"{cell.cell_id}.trace.json")
        entries.append(
            {
                "cell": cell,
                "report": report,
                "report_path": os.path.join("cells", f"{cell.cell_id}.json"),
                "trace_path": (
                    os.path.join("cells", f"{cell.cell_id}.trace.json")
                    if os.path.exists(trace_path)
                    else None
                ),
                "error": failures.get(
                    cell.index, None if report is not None else "report missing"
                ),
            }
        )
    aggregate = build_aggregate(spec, entries)
    _atomic_write(
        os.path.join(out_dir, "report.json"),
        json.dumps(aggregate, indent=2, sort_keys=True) + "\n",
    )
    _atomic_write(os.path.join(out_dir, "report.txt"), format_ascii(aggregate) + "\n")
    return aggregate
