"""Aggregate report: one comparative document for a whole grid.

The runner leaves one RunReport per cell on disk; this module folds them
into a single schema-versioned JSON payload (``repro.experiment_report/1``)
holding:

* a per-cell summary row (engine, ranks, virtual time, candidate
  counts, hit digest, fault block, report/trace paths);
* every table the spec declared — a rows x cols pivot of one summary
  value, optionally extended with the paper's speedup/efficiency
  derivation (real speedup where a 1-rank baseline exists, the Figure 4
  chained-anchor rule where it does not — ``repro.analysis.metrics``);
* cross-cell identity checks (cells agreeing on the ``group_by`` knobs
  must agree on ``hits_digest`` — the determinism contract the fault
  grids exist to exercise);
* the analytic lower-bound cross-check: the measured scaling next to
  the ``repro.tune.lower_bounds`` overlap projection for the same
  workload, plus the paper's headline residual-to-compute statistic.

Everything here is a pure function of (spec, on-disk cell reports):
no clocks, no RNG, dict keys sorted at serialization — so rebuilding
the aggregate after a kill-and-resume yields byte-identical output,
which is the property the resume tests pin.

``format_ascii`` renders the payload for terminals, ``format_markdown``
for the checked-in docs; ``splice_markdown`` swaps generated sections
into EXPERIMENTS.md / REPRODUCTION_REPORT.md between
``<!-- experiments:NAME begin/end -->`` markers so the paper-comparison
tables in those files are provably regenerable, never hand-edited.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import chained_speedup, mean_and_std, speedup
from repro.experiments.spec import CellSpec, ExperimentSpec, TableSpec
from repro.obs.report import RunReport
from repro.utils.format import render_table

#: schema identifier; bump the trailing integer on breaking changes
AGGREGATE_SCHEMA = "repro.experiment_report/1"

#: the paper's measured residual-to-compute ratio (mean, std) — printed
#: next to ours in every lower-bounds section
PAPER_RESIDUAL_TO_COMPUTE = (0.36, 0.11)

_REQUIRED_KEYS = (
    "schema",
    "name",
    "spec_digest",
    "num_cells",
    "completed",
    "cells",
    "failed",
    "tables",
    "checks",
    "lower_bounds",
)


# ---------------------------------------------------------------------------
# building


def _cell_row(entry: Dict[str, Any]) -> Dict[str, Any]:
    cell: CellSpec = entry["cell"]
    report: Optional[RunReport] = entry["report"]
    row: Dict[str, Any] = {
        "id": cell.cell_id,
        "index": cell.index,
        "params": dict(cell.params),
        "report_path": entry["report_path"],
        "trace_path": entry["trace_path"],
        "error": entry["error"],
    }
    if report is None:
        return row
    row.update(
        {
            "algorithm": report.algorithm,
            "engine": report.engine,
            "num_ranks": report.num_ranks,
            "virtual_time": report.virtual_time,
            "candidates_evaluated": report.candidates_evaluated,
            "candidates_per_second": report.candidates_per_second,
            "results": dict(report.results),
            "faults": dict(report.faults),
            "hits_digest": report.extras.get("hits_digest"),
            "residual_to_compute": (
                report.trace.get("mean_residual_to_compute") if report.trace else None
            ),
        }
    )
    return row


def _matches(params: Dict[str, Any], flt: Dict[str, Any]) -> bool:
    return all(params.get(k) == v for k, v in flt.items())


def _axis_value(params: Dict[str, Any], key: str) -> Any:
    """A cell's value for a pivot key, made JSON/hash-friendly.

    Cells that leave the knob unset (e.g. the no-fault arm of a
    ``faults.plan`` axis) land in a ``"(default)"`` bucket instead of
    being dropped; list values (rank_speeds) become strings so they can
    key a dict and render as a row label.
    """
    value = params.get(key)
    if value is None:
        return "(default)"
    if isinstance(value, (list, tuple)):
        return ",".join(str(v) for v in value)
    return value


def _pivot(
    table: TableSpec, rows: List[Dict[str, Any]]
) -> Tuple[List[Any], List[Any], Dict[Tuple[Any, Any], Dict[str, Any]]]:
    """First-seen-order row/col values + (row, col) -> cell row map.

    First match wins on collisions — cell order is spec order, so the
    pick is deterministic; a spec whose table is genuinely ambiguous
    should narrow it with ``filter``.
    """
    row_values: List[Any] = []
    col_values: List[Any] = []
    grid: Dict[Tuple[Any, Any], Dict[str, Any]] = {}
    for row in rows:
        params = row["params"]
        if not _matches(params, table.filter):
            continue
        r, c = _axis_value(params, table.rows), _axis_value(params, table.cols)
        if r not in row_values:
            row_values.append(r)
        if c not in col_values:
            col_values.append(c)
        grid.setdefault((r, c), row)
    return row_values, col_values, grid


def _table_payload(table: TableSpec, rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    row_values, col_values, grid = _pivot(table, rows)
    body = [
        {
            "row": r,
            "values": [
                (grid.get((r, c)) or {}).get(table.value) for c in col_values
            ],
        }
        for r in row_values
    ]
    payload: Dict[str, Any] = {
        "name": table.name,
        "rows": table.rows,
        "cols": table.cols,
        "value": table.value,
        "col_values": list(col_values),
        "grid": body,
        "scaling": None,
    }
    if table.scaling:
        payload["scaling"] = _scaling_payload(table, row_values, col_values, grid)
    return payload


def _scaling_payload(
    table: TableSpec,
    row_values: List[Any],
    col_values: List[Any],
    grid: Dict[Tuple[Any, Any], Dict[str, Any]],
) -> Dict[str, Any]:
    """Speedup/efficiency per row, columns read as rank counts.

    Rows with a 1-rank time use real speedup T(1)/T(p); rows without one
    use the paper's chained rule relative to ``anchor_rank``, scaled by
    the mean anchor speedup of the rows that do have a baseline
    (Figure 4's "multiplied by the average speedup obtained at p = 8
    ... 4.51").
    """
    times: Dict[Any, Dict[int, float]] = {}
    for r in row_values:
        per_rank: Dict[int, float] = {}
        for c in col_values:
            try:
                p = int(c)
            except (TypeError, ValueError):
                continue  # non-rank column (e.g. a "(default)" bucket)
            entry = grid.get((r, c))
            t = entry.get("virtual_time") if entry else None
            if t is not None and t > 0:
                per_rank[p] = float(t)
        if per_rank:
            times[r] = per_rank
    anchor = table.anchor_rank
    anchored = [
        speedup(t[1], t[anchor]) for t in times.values() if 1 in t and anchor in t
    ]
    anchor_speedup = sum(anchored) / len(anchored) if anchored else float(anchor)
    points: List[Dict[str, Any]] = []
    for r in row_values:
        per_rank = times.get(r, {})
        for p in sorted(per_rank):
            if 1 in per_rank:
                s = speedup(per_rank[1], per_rank[p])
                rule = "real"
            elif anchor in per_rank:
                s = chained_speedup(per_rank[anchor], per_rank[p], anchor_speedup)
                rule = "chained"
            else:
                continue
            points.append(
                {
                    "row": r,
                    "ranks": p,
                    "run_time": per_rank[p],
                    "speedup": s,
                    "efficiency": s / p,
                    "rule": rule,
                }
            )
    return {
        "anchor_rank": anchor,
        "anchor_speedup": anchor_speedup,
        "points": points,
    }


def _check_payload(spec: ExperimentSpec, rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for check in spec.checks:
        groups: Dict[str, Dict[str, Any]] = {}
        for row in rows:
            value = row.get(check.field)
            if value is None:
                continue  # modeled cells carry no hits, hence no digest
            key = {k: row["params"].get(k) for k in check.group_by}
            key_str = ",".join(f"{k}={key[k]}" for k in check.group_by) or "(all)"
            group = groups.setdefault(
                key_str, {"key": key, "cells": [], "values": []}
            )
            group["cells"].append(row["id"])
            if value not in group["values"]:
                group["values"].append(value)
        group_rows = [
            {**g, "ok": len(g["values"]) <= 1} for g in groups.values()
        ]
        out.append(
            {
                "name": check.name,
                "field": check.field,
                "group_by": list(check.group_by),
                "groups": group_rows,
                "ok": all(g["ok"] for g in group_rows),
            }
        )
    return out


def _lower_bounds_payload(
    spec: ExperimentSpec, rows: List[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Analytic floors for the grid's workload, next to what we measured.

    The projection is recomputed from the spec (deterministically — the
    profile counts candidates, it never times anything), so ``report``
    can rebuild this section from disk artifacts alone.
    """
    section = spec.lower_bounds
    if section is None:
        return None
    from repro.experiments.runner import build_config, build_workload  # lazy: no cycle
    from repro.tune.lower_bounds import overlap_projection
    from repro.tune.plan import profile_workload

    from repro.experiments.spec import BASE_DEFAULTS

    params = dict(BASE_DEFAULTS)
    params.update(spec.defaults)
    if "database_size" in section:
        params["workload.database_size"] = section["database_size"]
    db, queries = build_workload(params)
    config = build_config(params)
    profile = profile_workload(db, queries, config)
    projection = overlap_projection(profile, ranks=section["ranks"])

    measured: List[Dict[str, Any]] = []
    residuals: List[float] = []
    for row in rows:
        if row.get("residual_to_compute") is None:
            continue
        residuals.append(row["residual_to_compute"])
        # a floor only bounds cells searching the workload it was
        # projected for; other sizes keep their residual stat but are
        # not compared against it
        if row["params"].get("workload.database_size") != params[
            "workload.database_size"
        ] or row["params"].get("workload.queries") != params["workload.queries"]:
            continue
        p = row["num_ranks"]
        point = projection["points"].get(str(p))
        floor = point["floor_makespan_s"] if point else None
        measured.append(
            {
                "cell": row["id"],
                "ranks": p,
                "makespan_s": row["virtual_time"],
                "residual_to_compute": row["residual_to_compute"],
                "floor_makespan_s": floor,
                "makespan_to_floor": (
                    row["virtual_time"] / floor if floor else None
                ),
            }
        )
    mean, std = mean_and_std(residuals)
    return {
        "model": projection["model"],
        "database_size": params["workload.database_size"],
        "queries": params["workload.queries"],
        "ranks": section["ranks"],
        "points": projection["points"],
        "measured": measured,
        "residual_to_compute": {
            "mean": mean,
            "std": std,
            "cells": len(residuals),
            "paper": list(PAPER_RESIDUAL_TO_COMPUTE),
        },
    }


def build_aggregate(
    spec: ExperimentSpec, entries: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold per-cell entries into the ``repro.experiment_report/1`` payload.

    ``entries`` is one dict per cell in spec order: ``cell`` (CellSpec),
    ``report`` (RunReport or None), ``report_path``, ``trace_path``,
    ``error`` (None when the cell succeeded).
    """
    rows = [_cell_row(e) for e in entries]
    completed = [r for r in rows if r["error"] is None and "virtual_time" in r]
    failed = [
        {"id": r["id"], "index": r["index"], "error": r["error"]}
        for r in rows
        if r["error"] is not None
    ]
    return {
        "schema": AGGREGATE_SCHEMA,
        "name": spec.name,
        "description": spec.description,
        "source": spec.source,
        "spec_digest": spec.digest(),
        "num_cells": len(rows),
        "completed": len(completed),
        "cells": rows,
        "failed": failed,
        "tables": [_table_payload(t, completed) for t in spec.tables],
        "checks": _check_payload(spec, completed),
        "lower_bounds": _lower_bounds_payload(spec, completed),
    }


# ---------------------------------------------------------------------------
# validation


def validate_aggregate(payload: Any) -> List[str]:
    """Schema check; returns a list of problems (empty == valid)."""
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    problems = [f"missing key {k!r}" for k in _REQUIRED_KEYS if k not in payload]
    if problems:
        return problems
    schema = payload["schema"]
    if not isinstance(schema, str) or not schema.startswith("repro.experiment_report/"):
        problems.append(f"unrecognized schema {schema!r}")
    elif schema != AGGREGATE_SCHEMA:
        problems.append(
            f"unsupported schema version {schema!r} (expected {AGGREGATE_SCHEMA})"
        )
    for key in ("cells", "failed", "tables", "checks"):
        if not isinstance(payload[key], list):
            problems.append(f"{key} must be a list")
    if not isinstance(payload["num_cells"], int) or payload["num_cells"] < 1:
        problems.append("num_cells must be a positive int")
    if not isinstance(payload["completed"], int) or payload["completed"] < 0:
        problems.append("completed must be a non-negative int")
    if payload["lower_bounds"] is not None and not isinstance(
        payload["lower_bounds"], dict
    ):
        problems.append("lower_bounds must be null or an object")
    if not problems:
        for k, cell in enumerate(payload["cells"]):
            if not isinstance(cell, dict) or "id" not in cell or "params" not in cell:
                problems.append(f"cells[{k}] is not a cell summary object")
        for k, table in enumerate(payload["tables"]):
            if not isinstance(table, dict) or "grid" not in table:
                problems.append(f"tables[{k}] is not a table object")
    return problems


# ---------------------------------------------------------------------------
# rendering


def _fmt_value(value: Any, kind: str) -> str:
    if value is None:
        return "-"
    if kind == "candidates_evaluated":
        return str(int(value))
    if kind == "candidates_per_second":
        return f"{value:.0f}"
    return f"{value:.2f}"


def _table_blocks(table: Dict[str, Any]) -> List[Tuple[str, List[str], List[List[str]]]]:
    """(title, headers, rows) for the pivot and optional scaling block."""
    blocks: List[Tuple[str, List[str], List[List[str]]]] = []
    headers = [table["rows"]] + [str(c) for c in table["col_values"]]
    body = [
        [str(entry["row"])] + [_fmt_value(v, table["value"]) for v in entry["values"]]
        for entry in table["grid"]
    ]
    blocks.append((f"{table['name']} ({table['value']} by {table['cols']})", headers, body))
    scaling = table.get("scaling")
    if scaling:
        headers = [table["rows"], "p", "Run-time (s)", "Speedup", "Efficiency (%)", "Rule"]
        body = [
            [
                str(pt["row"]),
                str(pt["ranks"]),
                f"{pt['run_time']:.2f}",
                f"{pt['speedup']:.2f}",
                f"{100 * pt['efficiency']:.1f}",
                pt["rule"],
            ]
            for pt in scaling["points"]
        ]
        blocks.append(
            (
                f"{table['name']}: speedup/efficiency "
                f"(anchor p={scaling['anchor_rank']}, "
                f"anchor speedup {scaling['anchor_speedup']:.2f})",
                headers,
                body,
            )
        )
    return blocks


def _lower_bounds_blocks(lb: Dict[str, Any]) -> List[str]:
    lines = [
        f"lower bounds: {lb['model']}",
        f"  workload: n={lb['database_size']} m={lb['queries']}",
    ]
    headers = ["p", "Floor makespan (s)", "Overlap eff.", "Residual/compute"]
    body = [
        [
            str(p),
            f"{pt['floor_makespan_s']:.2f}",
            f"{pt['overlap_efficiency']:.2f}",
            f"{pt['residual_to_compute']:.2f}",
        ]
        for p, pt in sorted(lb["points"].items(), key=lambda kv: int(kv[0]))
    ]
    lines.append(render_table(headers, body, title="analytic floors"))
    if lb["measured"]:
        headers = ["cell", "p", "Makespan (s)", "Floor (s)", "x floor", "Residual/compute"]
        body = [
            [
                m["cell"],
                str(m["ranks"]),
                f"{m['makespan_s']:.2f}",
                "-" if m["floor_makespan_s"] is None else f"{m['floor_makespan_s']:.2f}",
                "-" if m["makespan_to_floor"] is None else f"{m['makespan_to_floor']:.2f}",
                f"{m['residual_to_compute']:.2f}",
            ]
            for m in lb["measured"]
        ]
        lines.append(render_table(headers, body, title="measured vs. floor"))
    r = lb["residual_to_compute"]
    lines.append(
        f"residual-to-compute: {r['mean']:.2f} +/- {r['std']:.2f} over "
        f"{r['cells']} traced cell(s); paper measured "
        f"{r['paper'][0]:.2f} +/- {r['paper'][1]:.2f}"
    )
    return lines


def _cells_block(aggregate: Dict[str, Any]) -> Tuple[List[str], List[List[str]]]:
    headers = ["cell", "engine", "algorithm", "p", "Time (s)", "Candidates", "Faults"]
    body = []
    for cell in aggregate["cells"]:
        if cell.get("error") is not None:
            body.append([cell["id"], "-", "-", "-", "-", "-", "FAILED"])
            continue
        faults = cell.get("faults") or {}
        body.append(
            [
                cell["id"],
                cell.get("engine", "-"),
                cell.get("algorithm", "-"),
                str(cell.get("num_ranks", "-")),
                f"{cell['virtual_time']:.2f}",
                str(cell["candidates_evaluated"]),
                "degraded" if faults.get("degraded") else "none",
            ]
        )
    return headers, body


def format_ascii(aggregate: Dict[str, Any]) -> str:
    """Terminal rendering of an aggregate payload."""
    lines = [
        f"experiment: {aggregate['name']}",
    ]
    if aggregate.get("description"):
        lines.append(f"  {aggregate['description']}")
    lines.append(
        f"  cells: {aggregate['completed']}/{aggregate['num_cells']} completed"
        + (f", {len(aggregate['failed'])} FAILED" if aggregate["failed"] else "")
    )
    lines.append(f"  spec digest: {aggregate['spec_digest'][:16]}")
    for failure in aggregate["failed"]:
        lines.append(f"  FAILED {failure['id']}: {failure['error']}")
    traced = [c for c in aggregate["cells"] if c.get("trace_path")]
    if traced:
        lines.append(
            "  chrome traces: "
            + ", ".join(c["trace_path"] for c in traced[:4])
            + (f" (+{len(traced) - 4} more)" if len(traced) > 4 else "")
        )
    headers, body = _cells_block(aggregate)
    lines.append("")
    lines.append(render_table(headers, body, title="cells"))
    for table in aggregate["tables"]:
        for title, headers, body in _table_blocks(table):
            lines.append("")
            lines.append(render_table(headers, body, title=title))
    for check in aggregate["checks"]:
        lines.append("")
        status = "ok" if check["ok"] else "FAILED"
        lines.append(
            f"check {check['name']} ({check['field']} per "
            f"{','.join(check['group_by']) or 'grid'}): {status}"
        )
        for group in check["groups"]:
            if not group["ok"]:
                lines.append(
                    f"  MISMATCH {group['key']}: cells {group['cells']} "
                    f"disagree ({len(group['values'])} distinct values)"
                )
    if aggregate["lower_bounds"]:
        lines.append("")
        lines.extend(_lower_bounds_blocks(aggregate["lower_bounds"]))
    return "\n".join(lines)


def _md_table(headers: List[str], body: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    lines.extend("| " + " | ".join(row) + " |" for row in body)
    return lines


def format_markdown(aggregate: Dict[str, Any]) -> str:
    """Markdown rendering — the emitter behind ``--format markdown``.

    Every block opens with a provenance line naming the scenario and
    spec digest, so a reader of EXPERIMENTS.md can regenerate the exact
    bytes with one command.
    """
    source = aggregate.get("source") or "the scenario file"
    lines = [
        f"Generated by `repro experiments report --format markdown` from "
        f"`{source}` (spec digest `{aggregate['spec_digest'][:16]}`, "
        f"{aggregate['completed']}/{aggregate['num_cells']} cells). "
        f"Do not hand-edit between the markers; rerun the scenario instead.",
        "",
    ]
    for failure in aggregate["failed"]:
        lines.append(f"**FAILED** `{failure['id']}`: {failure['error']}")
        lines.append("")
    if not aggregate["tables"]:
        headers, body = _cells_block(aggregate)
        lines.extend(_md_table(headers, body))
        lines.append("")
    for table in aggregate["tables"]:
        for title, headers, body in _table_blocks(table):
            lines.append(f"**{title}**")
            lines.append("")
            lines.extend(_md_table(headers, body))
            lines.append("")
    for check in aggregate["checks"]:
        status = "ok" if check["ok"] else "**FAILED**"
        lines.append(
            f"- check `{check['name']}` ({check['field']} per "
            f"{','.join(check['group_by']) or 'grid'}): {status}"
        )
    if aggregate["checks"]:
        lines.append("")
    lb = aggregate["lower_bounds"]
    if lb:
        lines.append(
            f"**Lower-bound cross-check** ({lb['model']}; "
            f"n={lb['database_size']}, m={lb['queries']})"
        )
        lines.append("")
        headers = ["p", "Floor makespan (s)", "Overlap eff.", "Residual/compute"]
        body = [
            [
                str(p),
                f"{pt['floor_makespan_s']:.2f}",
                f"{pt['overlap_efficiency']:.2f}",
                f"{pt['residual_to_compute']:.2f}",
            ]
            for p, pt in sorted(lb["points"].items(), key=lambda kv: int(kv[0]))
        ]
        lines.extend(_md_table(headers, body))
        lines.append("")
        r = lb["residual_to_compute"]
        lines.append(
            f"Measured residual-to-compute {r['mean']:.2f} ± {r['std']:.2f} "
            f"across {r['cells']} traced cells (paper: "
            f"{r['paper'][0]:.2f} ± {r['paper'][1]:.2f})."
        )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# markdown splicing


def _markers(name: str) -> Tuple[str, str]:
    return (
        f"<!-- experiments:{name} begin -->",
        f"<!-- experiments:{name} end -->",
    )


def splice_markdown(document: str, name: str, content: str) -> str:
    """Replace the ``experiments:name`` marker block of ``document``.

    The markers and everything between them are replaced with the
    markers wrapping ``content``; a document without the markers gets
    the block appended.  This is how generated sections live inside
    otherwise hand-written files: reruns touch only their own block.
    """
    begin, end = _markers(name)
    block = f"{begin}\n{content.rstrip()}\n{end}"
    start = document.find(begin)
    stop = document.find(end)
    if start == -1 or stop == -1 or stop < start:
        base = document.rstrip("\n")
        if base:
            return f"{base}\n\n{block}\n"
        return block + "\n"
    return document[:start] + block + document[stop + len(end):]


def extract_markdown(document: str, name: str) -> Optional[str]:
    """The content currently between the ``experiments:name`` markers."""
    begin, end = _markers(name)
    start = document.find(begin)
    stop = document.find(end)
    if start == -1 or stop == -1 or stop < start:
        return None
    inner = document[start + len(begin):stop]
    return inner.strip("\n")
