"""Real shared-nothing parallel engine using multiprocessing.

The simulated cluster answers "how would this scale to 128 ranks"; this
engine answers "does the decomposition actually speed up real execution
on this machine".  It runs Algorithm A's data decomposition — database
shards x query blocks — across worker *processes* (true parallelism, no
GIL), with each worker receiving only its (shard, query block) work
items, never the whole database: the per-process footprint stays
O(N/p + m/p), the paper's space property, modulo the parent process
which holds the inputs.

Work is shipped as raw arrays and rebuilt in the worker (as a real MPI
code would receive buffers), so this also exercises the
serialize/transport/rebuild path for real.

Supervision: tasks are dispatched with ``apply_async`` under a
supervisor loop rather than ``pool.map``.  A task that raises (or, with
``task_timeout`` set, hangs past its deadline) is resubmitted with
exponential backoff up to ``RetryPolicy.max_retries`` times; a task
that keeps failing is *quarantined* — the run completes with the
surviving results plus a ``failed_tasks`` manifest in the report
(graceful degradation) instead of aborting.  Because every task is an
independent (shard, query-block) cell and merging is deterministic, a
retried task reproduces exactly what the first attempt would have
produced.  ``checkpoint_path`` persists merged top-tau state after
completed tasks so a killed run can be resumed (``resume=True``)
without rescoring finished work.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chem.protein import ProteinDatabase
from repro.core.config import SearchConfig
from repro.core.partition import partition_database
from repro.core.results import SearchReport, merge_rank_hits
from repro.core.search import ShardSearcher, ShardStats
from repro.faults.checkpoint import CheckpointManager
from repro.faults.injector import FaultInjector
from repro.faults.supervisor import RetryPolicy
from repro.scoring.hits import Hit, TopHitList
from repro.spectra.spectrum import Spectrum

_SpectrumWire = Tuple[np.ndarray, np.ndarray, float, int, int]
_ShardWire = Tuple[np.ndarray, np.ndarray, np.ndarray]

#: supervisor poll interval (seconds) — bounds timeout detection lag
_POLL_S = 0.005


def _pack_spectrum(s: Spectrum) -> _SpectrumWire:
    return (np.asarray(s.mz), np.asarray(s.intensity), s.precursor_mz, s.charge, s.query_id)


def _unpack_spectrum(wire: _SpectrumWire) -> Spectrum:
    mz, intensity, precursor, charge, qid = wire
    return Spectrum(mz, intensity, precursor, charge, qid)


def _worker(
    task: Tuple[int, int, _ShardWire, List[_SpectrumWire], SearchConfig, Optional[FaultInjector]]
) -> Tuple[int, Dict[int, List[Hit]], ShardStats]:
    """Search one (shard, query block) pair; runs in a worker process."""
    task_id, attempt, shard_wire, query_wires, config, injector = task
    if injector is not None:
        injector.fire(task_id, attempt)
    shard = ProteinDatabase.from_buffers(*shard_wire)
    queries = [_unpack_spectrum(w) for w in query_wires]
    searcher = ShardSearcher(shard, config)
    hitlists: Dict[int, TopHitList] = {}
    stats = searcher.search(queries, hitlists)
    hits = {qid: hl.sorted_hits() for qid, hl in hitlists.items()}
    return task_id, hits, stats


class _Supervisor:
    """Drives tasks through a pool with retries, backoff and timeouts."""

    def __init__(
        self,
        pool: Optional[Any],
        tasks: Dict[int, tuple],
        policy: RetryPolicy,
        task_timeout: Optional[float],
        injector: Optional[FaultInjector],
    ):
        self._pool = pool
        self._tasks = tasks
        self._policy = policy
        self._timeout = task_timeout
        self._injector = injector
        self._attempts: Dict[int, int] = {t: 0 for t in tasks}  # failed attempts so far
        self.retries = 0
        self.timeouts = 0
        self.failed_tasks: List[Dict[str, Any]] = []
        self.results: Dict[int, Tuple[Dict[int, List[Hit]], ShardStats]] = {}

    def _payload(self, task_id: int) -> tuple:
        shard_wire, query_wires, config = self._tasks[task_id]
        attempt = self._attempts[task_id]  # 0-based: prior failed tries
        return (task_id, attempt, shard_wire, query_wires, config, self._injector)

    def _record_failure(self, task_id: int, error: str, backlog: List[Tuple[float, int]]) -> None:
        self._attempts[task_id] += 1
        failed = self._attempts[task_id]
        if self._policy.allows_retry(failed):
            self.retries += 1
            backlog.append((time.monotonic() + self._policy.delay(failed), task_id))
        else:
            self.failed_tasks.append(
                {"task_id": task_id, "attempts": failed, "error": error}
            )

    def run_inline(self) -> None:
        """Single-process path: retries and quarantine, but no timeout
        enforcement (a hung task would hang the caller too)."""
        backlog: List[Tuple[float, int]] = [(0.0, t) for t in sorted(self._tasks)]
        while backlog:
            ready_at, task_id = backlog.pop(0)
            delay = ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                tid, hits, stats = _worker(self._payload(task_id))
            except Exception as exc:
                self._record_failure(task_id, repr(exc), backlog)
            else:
                self.results[tid] = (hits, stats)

    def run_pooled(self) -> None:
        backlog: List[Tuple[float, int]] = [(0.0, t) for t in sorted(self._tasks)]
        in_flight: Dict[int, Tuple[Any, float]] = {}  # task_id -> (async, deadline)
        while backlog or in_flight:
            now = time.monotonic()
            for ready_at, task_id in list(backlog):
                if ready_at <= now and task_id not in in_flight:
                    backlog.remove((ready_at, task_id))
                    handle = self._pool.apply_async(_worker, (self._payload(task_id),))
                    deadline = now + self._timeout if self._timeout else float("inf")
                    in_flight[task_id] = (handle, deadline)
            now = time.monotonic()
            for task_id, (handle, deadline) in list(in_flight.items()):
                if handle.ready():
                    del in_flight[task_id]
                    try:
                        tid, hits, stats = handle.get()
                    except Exception as exc:
                        self._record_failure(task_id, repr(exc), backlog)
                    else:
                        self.results[tid] = (hits, stats)
                elif now > deadline:
                    # the worker is hung; abandon the handle (the pool
                    # process is reclaimed at pool teardown) and treat it
                    # as a failed attempt.
                    del in_flight[task_id]
                    self.timeouts += 1
                    self._record_failure(
                        task_id, f"timeout after {self._timeout}s", backlog
                    )
            if backlog or in_flight:
                time.sleep(_POLL_S)


def run_multiprocess_search(
    database: ProteinDatabase,
    queries: Sequence[Spectrum],
    num_workers: Optional[int] = None,
    config: Optional[SearchConfig] = None,
    shards_per_worker: int = 1,
    *,
    max_retries: int = 2,
    task_timeout: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_interval: int = 1,
    resume: bool = False,
    fault_injector: Optional[FaultInjector] = None,
) -> SearchReport:
    """Search with real OS processes; returns wall-clock in virtual_time.

    The database is split into ``num_workers * shards_per_worker``
    shards; every (shard, full query set) pair is an independent task
    (candidate sets over shards partition the database's candidate set,
    so merging per-shard top-tau lists reproduces the serial output
    exactly — the same argument Algorithms A/B rest on).

    Supervision knobs (see module docstring): ``max_retries`` /
    ``retry_policy`` bound resubmissions of failing tasks,
    ``task_timeout`` (seconds) detects hung workers, ``checkpoint_path``
    + ``resume`` persist and reuse completed-task state, and
    ``fault_injector`` deterministically injects failures for tests.
    """
    config = config or SearchConfig()
    if num_workers is None:
        num_workers = max(1, (os.cpu_count() or 2) - 1)
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    policy = retry_policy or RetryPolicy(max_retries=max_retries)
    nshards = num_workers * max(1, shards_per_worker)
    shards = [s for s in partition_database(database, nshards) if len(s) > 0]
    query_wires = [_pack_spectrum(q) for q in queries]
    tasks = {
        task_id: (shard.to_buffers(), query_wires, config)
        for task_id, shard in enumerate(shards)
    }

    manager: Optional[CheckpointManager] = None
    tasks_resumed = 0
    if checkpoint_path is not None:
        fingerprint = {
            "num_shards": len(shards),
            "num_queries": len(queries),
            "tau": config.tau,
            "delta": config.delta,
            "scorer": config.scorer,
        }
        if resume and os.path.exists(checkpoint_path):
            manager = CheckpointManager.resume(
                checkpoint_path, fingerprint, config.tau, checkpoint_interval
            )
            tasks_resumed = len(manager.completed_tasks)
            for done in manager.completed_tasks:
                tasks.pop(done, None)
        else:
            manager = CheckpointManager(
                checkpoint_path, fingerprint, config.tau, checkpoint_interval
            )

    start = time.perf_counter()
    if num_workers == 1:
        supervisor = _Supervisor(None, tasks, policy, task_timeout, fault_injector)
        supervisor.run_inline()
    else:
        ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
        with ctx.Pool(processes=num_workers) as pool:
            supervisor = _Supervisor(pool, tasks, policy, task_timeout, fault_injector)
            supervisor.run_pooled()
    wall = time.perf_counter() - start

    stats = ShardStats()
    for task_id in sorted(supervisor.results):
        task_hits, worker_stats = supervisor.results[task_id]
        stats.merge(worker_stats)
        if manager is not None:
            manager.record(
                task_id,
                task_hits,
                {
                    "candidates_evaluated": worker_stats.candidates_evaluated,
                    "batches": worker_stats.batches,
                    "rows_scored": worker_stats.rows_scored,
                },
            )
    if manager is not None:
        manager.flush()
        hits = manager.merged_hits()
        candidates = manager.counters.get("candidates_evaluated", 0)
        batches = manager.counters.get("batches", 0)
        rows_scored = manager.counters.get("rows_scored", 0)
    else:
        hits = merge_rank_hits(
            [supervisor.results[t][0] for t in sorted(supervisor.results)], config.tau
        )
        candidates = stats.candidates_evaluated
        batches = stats.batches
        rows_scored = stats.rows_scored
    # make empty hit lists visible for queries with no candidates anywhere
    for q in queries:
        hits.setdefault(q.query_id, [])
    return SearchReport(
        algorithm="multiprocess",
        num_ranks=num_workers,
        hits=hits,
        candidates_evaluated=candidates,
        virtual_time=wall,
        extras={
            "num_shards": len(shards),
            "wall_time": wall,
            "batches": batches,
            "rows_scored": rows_scored,
            "candidates_per_second": candidates / wall if wall > 0 else 0.0,
            "tasks_total": len(shards),
            "tasks_completed": len(supervisor.results),
            "tasks_resumed": tasks_resumed,
            "retries": supervisor.retries,
            "timeouts": supervisor.timeouts,
            "failed_tasks": supervisor.failed_tasks,
            "degraded": bool(supervisor.failed_tasks),
        },
    )
