"""Real shared-nothing parallel engine using multiprocessing.

The simulated cluster answers "how would this scale to 128 ranks"; this
engine answers "does the decomposition actually speed up real execution
on this machine".  It runs Algorithm A's data decomposition — database
shards x query blocks — across worker *processes* (true parallelism, no
GIL), with each worker receiving only its (shard, query block) work
items, never the whole database: the per-process footprint stays
O(N/p + m/p), the paper's space property, modulo the parent process
which holds the inputs.

Work is shipped as raw arrays and rebuilt in the worker (as a real MPI
code would receive buffers), so this also exercises the
serialize/transport/rebuild path for real.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chem.protein import ProteinDatabase
from repro.core.config import SearchConfig
from repro.core.partition import partition_database
from repro.core.results import SearchReport, merge_rank_hits
from repro.core.search import ShardSearcher, ShardStats
from repro.scoring.hits import Hit, TopHitList
from repro.spectra.spectrum import Spectrum

_SpectrumWire = Tuple[np.ndarray, np.ndarray, float, int, int]
_ShardWire = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _pack_spectrum(s: Spectrum) -> _SpectrumWire:
    return (np.asarray(s.mz), np.asarray(s.intensity), s.precursor_mz, s.charge, s.query_id)


def _unpack_spectrum(wire: _SpectrumWire) -> Spectrum:
    mz, intensity, precursor, charge, qid = wire
    return Spectrum(mz, intensity, precursor, charge, qid)


def _worker(
    task: Tuple[_ShardWire, List[_SpectrumWire], SearchConfig]
) -> Tuple[Dict[int, List[Hit]], ShardStats]:
    """Search one (shard, query block) pair; runs in a worker process."""
    shard_wire, query_wires, config = task
    shard = ProteinDatabase.from_buffers(*shard_wire)
    queries = [_unpack_spectrum(w) for w in query_wires]
    searcher = ShardSearcher(shard, config)
    hitlists: Dict[int, TopHitList] = {}
    stats = searcher.search(queries, hitlists)
    hits = {qid: hl.sorted_hits() for qid, hl in hitlists.items()}
    return hits, stats


def run_multiprocess_search(
    database: ProteinDatabase,
    queries: Sequence[Spectrum],
    num_workers: Optional[int] = None,
    config: Optional[SearchConfig] = None,
    shards_per_worker: int = 1,
) -> SearchReport:
    """Search with real OS processes; returns wall-clock in virtual_time.

    The database is split into ``num_workers * shards_per_worker``
    shards; every (shard, full query set) pair is an independent task
    (candidate sets over shards partition the database's candidate set,
    so merging per-shard top-tau lists reproduces the serial output
    exactly — the same argument Algorithms A/B rest on).
    """
    config = config or SearchConfig()
    if num_workers is None:
        num_workers = max(1, (os.cpu_count() or 2) - 1)
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    nshards = num_workers * max(1, shards_per_worker)
    shards = [s for s in partition_database(database, nshards) if len(s) > 0]
    query_wires = [_pack_spectrum(q) for q in queries]
    tasks = [(shard.to_buffers(), query_wires, config) for shard in shards]

    start = time.perf_counter()
    if num_workers == 1:
        results = [_worker(t) for t in tasks]
    else:
        ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
        with ctx.Pool(processes=num_workers) as pool:
            results = pool.map(_worker, tasks)
    wall = time.perf_counter() - start

    hits = merge_rank_hits([r[0] for r in results], config.tau)
    # make empty hit lists visible for queries with no candidates anywhere
    for q in queries:
        hits.setdefault(q.query_id, [])
    stats = ShardStats()
    for _hits, worker_stats in results:
        stats.merge(worker_stats)
    return SearchReport(
        algorithm="multiprocess",
        num_ranks=num_workers,
        hits=hits,
        candidates_evaluated=stats.candidates_evaluated,
        virtual_time=wall,
        extras={
            "num_shards": len(shards),
            "wall_time": wall,
            "batches": stats.batches,
            "rows_scored": stats.rows_scored,
            "candidates_per_second": stats.candidates_evaluated / wall if wall > 0 else 0.0,
        },
    )
