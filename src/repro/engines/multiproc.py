"""Real shared-nothing parallel engine using multiprocessing.

The simulated cluster answers "how would this scale to 128 ranks"; this
engine answers "does the decomposition actually speed up real execution
on this machine".  It runs Algorithm A's data decomposition — database
shards x query blocks — across worker *processes* (true parallelism, no
GIL).

Transport is zero-copy by reference: the shard buffers and the packed
query blocks are installed in a module-level *task context* exactly once
— inherited copy-on-write under fork, shipped once per worker through
the pool initializer under spawn — and each task is just a
``(task_id, attempt, shard_id, block_id)`` id tuple.  Per-task
serialization therefore drops from O(shard + queries) to O(1), retries
resubmit four integers instead of re-pickling buffers, and the report's
``bytes_shipped`` extras quantify the saving against the replicated
per-task baseline.  Workers keep a per-process cache of rebuilt
``ShardSearcher`` objects keyed by shard id (and of unpacked query
blocks keyed by block id), so a shard's mass and fragment-ion indexes
are built once per process, not once per task.

Supervision: tasks are dispatched with ``apply_async`` under a
supervisor loop rather than ``pool.map``.  A task that raises (or, with
``task_timeout`` set, hangs past its deadline) is resubmitted with
exponential backoff up to ``RetryPolicy.max_retries`` times; a task
that keeps failing is *quarantined* — the run completes with the
surviving results plus a ``failed_tasks`` manifest in the report
(graceful degradation) instead of aborting.  Because every task is an
independent (shard, query-block) cell and merging is deterministic, a
retried task reproduces exactly what the first attempt would have
produced.  ``checkpoint_path`` persists merged top-tau state after
completed tasks so a killed run can be resumed (``resume=True``)
without rescoring finished work.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chem.protein import ProteinDatabase
from repro.core.config import SearchConfig
from repro.core.partition import partition_database, partition_queries
from repro.core.results import SearchReport, merge_rank_hits
from repro.core.search import ShardSearcher, ShardStats, index_compat_problems
from repro.faults.checkpoint import CheckpointManager
from repro.faults.injector import FaultInjector
from repro.faults.supervisor import RetryPolicy
from repro.obs.metrics import MetricsRegistry, get_metrics, use_registry
from repro.obs.naming import canonicalize_extras
from repro.scoring.hits import Hit, TopHitList
from repro.spectra.spectrum import Spectrum

_SpectrumWire = Tuple[np.ndarray, np.ndarray, float, int, int]
_ShardWire = Tuple[np.ndarray, np.ndarray, np.ndarray]
#: a task on the wire: (task_id, attempt, shard_id, block_id) — ids only
_TaskWire = Tuple[int, int, int, int]

#: supervisor poll interval (seconds) — bounds timeout detection lag
_POLL_S = 0.005

#: conservative pickled size of one _TaskWire (four small ints + framing)
_TASK_WIRE_BYTES = 32


def _pack_spectrum(s: Spectrum) -> _SpectrumWire:
    return (np.asarray(s.mz), np.asarray(s.intensity), s.precursor_mz, s.charge, s.query_id)


def _unpack_spectrum(wire: _SpectrumWire) -> Spectrum:
    mz, intensity, precursor, charge, qid = wire
    return Spectrum(mz, intensity, precursor, charge, qid)


def _spectrum_wire_nbytes(wire: _SpectrumWire) -> int:
    mz, intensity, _precursor, _charge, _qid = wire
    return int(mz.nbytes + intensity.nbytes + 24)


def _shard_wire_nbytes(wire: _ShardWire) -> int:
    return int(sum(np.asarray(part).nbytes for part in wire))


# -- zero-copy task context ----------------------------------------------
#
# The context holds everything a task references by id.  Under fork it is
# inherited copy-on-write from the parent (set *before* the pool spawns);
# under spawn it is pickled once per worker via the pool initializer —
# either way, per-task payloads never carry buffers again.

_TASK_CONTEXT: Optional[Dict[str, Any]] = None
#: per-process rebuilt state: {"searchers": {shard_id: searcher},
#: "queries": {block_id: [Spectrum]}, "store": StoredIndex or
#: PartitionedIndex (opened once), "database": mmapped ProteinDatabase
#: (partitioned stores only)}
_PROCESS_CACHE: Dict[str, Any] = {}


def _install_context(context: Optional[Dict[str, Any]]) -> None:
    global _TASK_CONTEXT
    _TASK_CONTEXT = context
    _PROCESS_CACHE.clear()


def _worker_init(context: Optional[Dict[str, Any]] = None) -> None:
    """Pool initializer.  ``context is None`` means fork: the module
    global was inherited from the parent; only the cache (also inherited)
    must be reset so each process rebuilds its own searchers."""
    if context is not None:
        _install_context(context)
    else:
        _PROCESS_CACHE.clear()


def _cached_queries(block_id: int) -> List[Spectrum]:
    cache = _PROCESS_CACHE.setdefault("queries", {})
    queries = cache.get(block_id)
    if queries is None:
        wires = _TASK_CONTEXT["query_blocks"][block_id]
        queries = cache[block_id] = [_unpack_spectrum(w) for w in wires]
    return queries


def _cached_searcher(shard_id: int) -> Tuple[ShardSearcher, float, float]:
    """Per-process searcher for ``shard_id``; returns
    ``(searcher, build_s, load_s)``.

    ``build_s`` / ``load_s`` are the wall-clock seconds spent building or
    loading on *this* call — zero on a cache hit — so callers charge
    index construction (or store mapping) once per process, not once per
    task.  With an ``index_path`` in the context (mmap-once transport),
    the shard and its fragment index come out of the persisted store as
    read-only memory maps: nothing but the path string ever crossed the
    process boundary, and clean index pages are shared between workers
    by the OS page cache.
    """
    cache = _PROCESS_CACHE.setdefault("searchers", {})
    searcher = cache.get(shard_id)
    if searcher is not None:
        return searcher, 0.0, 0.0
    index_path = _TASK_CONTEXT.get("index_path")
    ranges = _TASK_CONTEXT.get("partition_ranges")
    if ranges is not None:
        # Partitioned store: this worker's "shard" is a contiguous range
        # of m/z partitions streamed through a StreamingSearcher.  Only
        # the path string crossed the process boundary; the directory
        # and the database buffers map once per process, and partition
        # blobs stream through the double buffer at search time.
        from repro.core.streaming import StreamingSearcher
        from repro.store import open_any_index

        t0 = time.perf_counter()
        store = _PROCESS_CACHE.get("store")
        if store is None:
            store = _PROCESS_CACHE["store"] = open_any_index(index_path)
        database = _PROCESS_CACHE.get("database")
        if database is None:
            database = _PROCESS_CACHE["database"] = store.load_database()
        searcher = cache[shard_id] = StreamingSearcher(
            store,
            _TASK_CONTEXT["config"],
            database=database,
            partition_range=ranges[shard_id],
            own_overflow=(shard_id == 0),
            memory_budget_mb=_TASK_CONTEXT.get("memory_budget_mb"),
        )
        return searcher, 0.0, time.perf_counter() - t0
    if index_path is not None:
        from repro.store import open_index

        store = _PROCESS_CACHE.get("store")
        if store is None:
            store = _PROCESS_CACHE["store"] = open_index(index_path)
        loaded = store.load_shard(shard_id)
        searcher = cache[shard_id] = ShardSearcher(
            loaded.shard, _TASK_CONTEXT["config"], index=loaded.index
        )
        return searcher, 0.0, loaded.seconds
    shard = ProteinDatabase.from_buffers(*_TASK_CONTEXT["shard_wires"][shard_id])
    searcher = cache[shard_id] = ShardSearcher(shard, _TASK_CONTEXT["config"])
    return searcher, searcher.index_build_time, 0.0


def _worker(
    task: _TaskWire,
) -> Tuple[int, Dict[int, List[Hit]], ShardStats, Optional[Dict[str, Any]]]:
    """Search one (shard, query block) pair; runs in a worker process.

    With telemetry on (``context["metrics"]``) the task runs under a
    fresh per-task registry, so nested spans (index builds, the shard
    search itself) ship back in the returned snapshot and the supervisor
    folds them into the run-wide registry — one timeline lane per worker
    process in the Chrome-trace export.
    """
    task_id, attempt, shard_id, block_id = task

    def execute() -> Tuple[Dict[int, List[Hit]], ShardStats]:
        injector = _TASK_CONTEXT.get("injector")
        if injector is not None:
            injector.fire(task_id, attempt)
        searcher, built, loaded = _cached_searcher(shard_id)
        queries = _cached_queries(block_id)
        hitlists: Dict[int, TopHitList] = {}
        stats = searcher.run(queries, hitlists)
        stats.index_build_time += built
        stats.index_load_time += loaded
        # Blocks travel mass-sorted (sweep locality); emit hits in the
        # caller's original query order so output is independent of the sort.
        order = _TASK_CONTEXT["block_qids"][block_id]
        return {qid: hitlists[qid].sorted_hits() for qid in order}, stats

    if not _TASK_CONTEXT.get("metrics"):
        hits, stats = execute()
        return task_id, hits, stats, None
    with use_registry(MetricsRegistry(enabled=True)) as registry:
        with registry.span(
            "multiproc.task",
            category="task",
            task=task_id,
            shard=shard_id,
            block=block_id,
            attempt=attempt,
        ):
            hits, stats = execute()
    return task_id, hits, stats, registry.snapshot()


class _Supervisor:
    """Drives tasks through a pool with retries, backoff and timeouts.

    The backlog is a min-heap keyed by ready time, so claiming the next
    runnable task is O(log n) instead of the O(n^2) list scan-and-remove
    a large task count would otherwise pay per poll.
    """

    def __init__(
        self,
        pool: Optional[Any],
        tasks: Dict[int, Tuple[int, int]],
        policy: RetryPolicy,
        task_timeout: Optional[float],
    ):
        self._pool = pool
        self._tasks = tasks  # task_id -> (shard_id, block_id)
        self._policy = policy
        self._timeout = task_timeout
        self._attempts: Dict[int, int] = {t: 0 for t in tasks}  # failed attempts so far
        self.retries = 0
        self.timeouts = 0
        self.failed_tasks: List[Dict[str, Any]] = []
        # task_id -> (hits, stats, metrics snapshot or None)
        self.results: Dict[
            int, Tuple[Dict[int, List[Hit]], ShardStats, Optional[Dict[str, Any]]]
        ] = {}

    def _payload(self, task_id: int) -> _TaskWire:
        shard_id, block_id = self._tasks[task_id]
        attempt = self._attempts[task_id]  # 0-based: prior failed tries
        return (task_id, attempt, shard_id, block_id)

    def _record_failure(self, task_id: int, error: str, backlog: List[Tuple[float, int]]) -> None:
        self._attempts[task_id] += 1
        failed = self._attempts[task_id]
        if self._policy.allows_retry(failed):
            self.retries += 1
            heapq.heappush(backlog, (time.monotonic() + self._policy.delay(failed), task_id))
        else:
            self.failed_tasks.append(
                {"task_id": task_id, "attempts": failed, "error": error}
            )

    def run_inline(self) -> None:
        """Single-process path: retries and quarantine, but no timeout
        enforcement (a hung task would hang the caller too)."""
        backlog: List[Tuple[float, int]] = [(0.0, t) for t in sorted(self._tasks)]
        heapq.heapify(backlog)
        while backlog:
            ready_at, task_id = heapq.heappop(backlog)
            delay = ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                tid, hits, stats, snap = _worker(self._payload(task_id))
            except Exception as exc:
                self._record_failure(task_id, repr(exc), backlog)
            else:
                self.results[tid] = (hits, stats, snap)

    def run_pooled(self) -> None:
        backlog: List[Tuple[float, int]] = [(0.0, t) for t in sorted(self._tasks)]
        heapq.heapify(backlog)
        in_flight: Dict[int, Tuple[Any, float]] = {}  # task_id -> (async, deadline)
        while backlog or in_flight:
            now = time.monotonic()
            while backlog and backlog[0][0] <= now:
                _ready_at, task_id = heapq.heappop(backlog)
                handle = self._pool.apply_async(_worker, (self._payload(task_id),))
                deadline = now + self._timeout if self._timeout else float("inf")
                in_flight[task_id] = (handle, deadline)
            now = time.monotonic()
            for task_id, (handle, deadline) in list(in_flight.items()):
                if handle.ready():
                    del in_flight[task_id]
                    try:
                        tid, hits, stats, snap = handle.get()
                    except Exception as exc:
                        self._record_failure(task_id, repr(exc), backlog)
                    else:
                        self.results[tid] = (hits, stats, snap)
                elif now > deadline:
                    # the worker is hung; abandon the handle (the pool
                    # process is reclaimed at pool teardown) and treat it
                    # as a failed attempt.
                    del in_flight[task_id]
                    self.timeouts += 1
                    self._record_failure(
                        task_id, f"timeout after {self._timeout}s", backlog
                    )
            if backlog or in_flight:
                time.sleep(_POLL_S)


def run_multiprocess_search(
    database: ProteinDatabase,
    queries: Sequence[Spectrum],
    num_workers: Optional[int] = None,
    config: Optional[SearchConfig] = None,
    shards_per_worker: int = 1,
    *,
    query_blocks: int = 1,
    start_method: Optional[str] = None,
    max_retries: int = 2,
    task_timeout: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_interval: int = 1,
    resume: bool = False,
    fault_injector: Optional[FaultInjector] = None,
    index_path: Optional[str] = None,
    memory_budget_mb: Optional[float] = None,
) -> SearchReport:
    """Search with real OS processes; returns wall-clock in virtual_time.

    The database is split into ``num_workers * shards_per_worker``
    shards and the query set into ``query_blocks`` contiguous blocks;
    every (shard, query block) pair is an independent task (candidate
    sets over shards partition the database's candidate set, so merging
    per-task top-tau lists reproduces the serial output exactly — the
    same argument Algorithms A/B rest on).  Shard buffers and packed
    queries travel to workers once, through the task context (see module
    docstring); task payloads are id tuples.

    ``start_method`` pins the multiprocessing context ("fork" or
    "spawn"); the default picks fork where available.  Supervision knobs
    (see module docstring): ``max_retries`` / ``retry_policy`` bound
    resubmissions of failing tasks, ``task_timeout`` (seconds) detects
    hung workers, ``checkpoint_path`` + ``resume`` persist and reuse
    completed-task state, and ``fault_injector`` deterministically
    injects failures for tests.

    ``index_path`` switches transport from ship-once to *mmap-once*: the
    path must name a ``repro.store`` directory (fingerprint-validated
    against ``database`` up front), the shard layout is the store's, and
    workers memory-map their shards and fragment indexes from disk —
    only the path string crosses the process boundary, so
    ``bytes_shipped`` drops to the packed queries plus task ids, and
    hits remain bitwise identical to the rebuild path.

    When ``index_path`` names a *partitioned* store
    (``repro.index_store_partitioned/1``) the decomposition changes
    from database shards to disjoint contiguous partition ranges: each
    worker streams its ``[lo, hi)`` slice of m/z partitions through a
    :class:`~repro.core.streaming.StreamingSearcher` (double-buffered
    prefetch, optional per-worker ``memory_budget_mb``), worker 0 also
    scores the out-of-envelope overflow blob, and merged hits stay
    bitwise identical to both the resident and serial streamed paths.
    """
    config = config or SearchConfig()
    if num_workers is None:
        num_workers = max(1, (os.cpu_count() or 2) - 1)
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if query_blocks < 1:
        raise ValueError(f"query_blocks must be >= 1, got {query_blocks}")
    policy = retry_policy or RetryPolicy(max_retries=max_retries)
    store = None
    partition_ranges: Optional[List[Tuple[int, int]]] = None
    if index_path is not None:
        from repro.errors import IndexCompatError
        from repro.store import open_any_index
        from repro.store.partitioned import PartitionedIndex

        store = open_any_index(index_path)
        if isinstance(store, PartitionedIndex):
            from repro.core.streaming import (
                split_partition_ranges,
                streaming_compat_problems,
            )

            problems = streaming_compat_problems(config)
            if problems:
                raise IndexCompatError(
                    "this search cannot be streamed from the partitioned "
                    "index: " + "; ".join(problems)
                )
            store.validate_against(database)
            partition_ranges = split_partition_ranges(
                store.num_partitions, num_workers * max(1, shards_per_worker)
            )
            num_shards = len(partition_ranges)
            shards = None
            # per-range compressed bytes: what each worker's stream reads
            shard_bytes = [
                sum(store.partitions[p].blob_bytes for p in range(lo, hi))
                for lo, hi in partition_ranges
            ]
        else:
            problems = index_compat_problems(config)
            if problems:
                raise IndexCompatError(
                    "this search cannot be served from the persisted index: "
                    + "; ".join(problems)
                )
            store.validate_against(database)
            num_shards = store.num_shards
            shards = None
            shard_bytes = [layout.shard_nbytes for layout in store.layouts]
    else:
        nshards = num_workers * max(1, shards_per_worker)
        shards = [s for s in partition_database(database, nshards) if len(s) > 0]
        num_shards = len(shards)
    nblocks = min(query_blocks, len(queries)) or 1
    blocks = partition_queries(list(queries), nblocks)
    # Pack each block sorted by precursor mass (stable): the sweep path
    # coalesces more cohorts from mass-adjacent queries, and the per-query
    # path is order-insensitive.  The original per-block query order is
    # kept alongside so workers emit hits in caller order.
    block_qids = [[q.query_id for q in block] for block in blocks]
    blocks = [sorted(block, key=lambda q: q.parent_mass) for block in blocks]
    block_wires = [[_pack_spectrum(q) for q in block] for block in blocks]
    obs = get_metrics()
    context: Dict[str, Any] = {
        "query_blocks": block_wires,
        "block_qids": block_qids,
        "config": config,
        "injector": fault_injector,
        "metrics": obs.enabled,
    }
    if store is not None:
        context["index_path"] = str(index_path)
        if partition_ranges is not None:
            context["partition_ranges"] = partition_ranges
            context["memory_budget_mb"] = memory_budget_mb
    else:
        shard_wires = [shard.to_buffers() for shard in shards]
        context["shard_wires"] = shard_wires
        shard_bytes = [_shard_wire_nbytes(w) for w in shard_wires]
    # task_id = shard_id * nblocks + block_id keeps task_id == shard_id
    # in the default single-block layout (checkpoint compatibility).
    tasks = {
        shard_id * nblocks + block_id: (shard_id, block_id)
        for shard_id in range(num_shards)
        for block_id in range(nblocks)
    }
    num_tasks = len(tasks)

    # Transport accounting: what actually crosses a process boundary
    # (context once + id tuples per task) vs. the replicated baseline
    # that re-ships each task's shard and the full query set.  With a
    # store, the shard contribution collapses to the path string; the
    # mapped bytes are reported separately as index_mmap_bytes (they
    # travel through the page cache, not a process boundary).
    block_bytes = [sum(_spectrum_wire_nbytes(w) for w in wires) for wires in block_wires]
    shard_ship_bytes = len(str(index_path).encode()) if store is not None else sum(shard_bytes)
    context_bytes = shard_ship_bytes + sum(block_bytes)
    bytes_tasks = _TASK_WIRE_BYTES * num_tasks
    bytes_replicated = sum(
        shard_bytes[sid] + block_bytes[bid] for sid, bid in tasks.values()
    )

    manager: Optional[CheckpointManager] = None
    tasks_resumed = 0
    if checkpoint_path is not None:
        fingerprint = {
            "num_shards": num_shards,
            "num_queries": len(queries),
            "tau": config.tau,
            "delta": config.delta,
            "scorer": config.scorer,
            "query_blocks": nblocks,
        }
        if resume and os.path.exists(checkpoint_path):
            manager = CheckpointManager.resume(
                checkpoint_path, fingerprint, config.tau, checkpoint_interval
            )
            tasks_resumed = len(manager.completed_tasks)
            for done in manager.completed_tasks:
                tasks.pop(done, None)
        else:
            manager = CheckpointManager(
                checkpoint_path, fingerprint, config.tau, checkpoint_interval
            )

    start = time.perf_counter()
    _install_context(context)
    try:
        with obs.span(
            "multiproc.supervise",
            category="supervise",
            workers=num_workers,
            tasks=num_tasks,
        ):
            if num_workers == 1:
                supervisor = _Supervisor(None, tasks, policy, task_timeout)
                supervisor.run_inline()
            else:
                method = start_method or ("spawn" if os.name == "nt" else "fork")
                ctx = mp.get_context(method)
                # fork inherits the context copy-on-write; spawn ships it once
                # per worker through the initializer.
                initargs = (None,) if method == "fork" else (context,)
                with ctx.Pool(
                    processes=num_workers, initializer=_worker_init, initargs=initargs
                ) as pool:
                    supervisor = _Supervisor(pool, tasks, policy, task_timeout)
                    supervisor.run_pooled()
    finally:
        _install_context(None)
    wall = time.perf_counter() - start
    obs.count("multiproc.dispatched", len(supervisor.results) + supervisor.retries)
    obs.count("multiproc.retries", supervisor.retries)
    obs.count("multiproc.timeouts", supervisor.timeouts)
    obs.count("multiproc.quarantined", len(supervisor.failed_tasks))

    stats = ShardStats()
    for task_id in sorted(supervisor.results):
        task_hits, worker_stats, worker_snap = supervisor.results[task_id]
        obs.merge_snapshot(worker_snap)
        stats.merge(worker_stats)
        if manager is not None:
            manager.record(
                task_id,
                task_hits,
                {
                    "candidates_evaluated": worker_stats.candidates_evaluated,
                    "batches": worker_stats.batches,
                    "rows_scored": worker_stats.rows_scored,
                    "index_rows": worker_stats.index_rows,
                },
            )
    if manager is not None:
        manager.flush()
        hits = manager.merged_hits()
        candidates = manager.counters.get("candidates_evaluated", 0)
        batches = manager.counters.get("batches", 0)
        rows_scored = manager.counters.get("rows_scored", 0)
        index_rows = manager.counters.get("index_rows", 0)
    else:
        hits = merge_rank_hits(
            [supervisor.results[t][0] for t in sorted(supervisor.results)], config.tau
        )
        candidates = stats.candidates_evaluated
        batches = stats.batches
        rows_scored = stats.rows_scored
        index_rows = stats.index_rows
    # make empty hit lists visible for queries with no candidates anywhere
    for q in queries:
        hits.setdefault(q.query_id, [])
    extras = {
        "num_shards": num_shards,
        "query_blocks": nblocks,
        "wall_time": wall,
        "batches": batches,
        "rows_scored": rows_scored,
        "index_rows": index_rows,
        "index_build_time": stats.index_build_time,
        "index_load_time": stats.index_load_time,
        "index_probe_fraction": index_rows / rows_scored if rows_scored else 0.0,
        "sweep_queries": stats.sweep_queries,
        "sweep_cohorts": stats.sweep_cohorts,
        "candidates_per_second": candidates / wall if wall > 0 else 0.0,
        "bytes_shipped": context_bytes + bytes_tasks,
        "bytes_shipped_setup": context_bytes,
        "bytes_shipped_tasks": bytes_tasks,
        "bytes_shipped_replicated": bytes_replicated,
        "tasks_total": num_tasks,
        "tasks_completed": len(supervisor.results),
        "tasks_resumed": tasks_resumed,
        "retries": supervisor.retries,
        "timeouts": supervisor.timeouts,
        "failed_tasks": supervisor.failed_tasks,
        "degraded": bool(supervisor.failed_tasks),
    }
    if partition_ranges is not None:
        extras["index_path"] = str(index_path)
        extras["num_partitions"] = int(store.num_partitions)
        extras["partition_ranges"] = [list(r) for r in partition_ranges]
        extras["index_stream_bytes"] = int(store.blob_bytes)
        extras["index_decoded_bytes"] = int(store.decoded_bytes)
        extras["index_provenance"] = store.provenance("streamed")
    elif store is not None:
        extras["index_path"] = str(index_path)
        extras["index_mmap_bytes"] = int(store.nbytes)
        extras["index_provenance"] = store.provenance("loaded")
    elif not index_compat_problems(config):
        from repro.store import build_config_from_search, rebuilt_provenance

        extras["index_provenance"] = rebuilt_provenance(
            database,
            build_config_from_search(
                num_shards=num_shards,
                fragment_tolerance=config.fragment_tolerance,
                index_max_length=config.index_max_length,
            ),
        )
    return SearchReport(
        algorithm="multiprocess",
        num_ranks=num_workers,
        hits=hits,
        candidates_evaluated=candidates,
        virtual_time=wall,
        extras=canonicalize_extras(extras),
    )
