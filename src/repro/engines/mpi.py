"""Real MPI backend (mpi4py) for Algorithm A on actual clusters.

The simulated machine answers scaling questions on one laptop; this
backend runs the same decomposition under real MPI for users with a
cluster.  Launch with::

    mpiexec -n 8 python -m repro.engines.mpi --database db.fasta --queries 500

Design notes (mpi4py idioms follow its tutorial):

* rank 0 reads the FASTA and scatters byte-balanced shards and query
  blocks (pickle-based lowercase API — shard setup is one-off; the hot
  loop below is what matters);
* the rotation loop mirrors Algorithm A: post a non-blocking ``isend``
  of the currently-held shard to the left neighbour and an ``irecv``
  from the right *before* scoring, score the held shard, then complete
  the requests — communication masked by computation, with point-to-point
  ring exchange standing in for the paper's one-sided ``MPI_Get``
  (equivalent traffic for a full rotation, and far more robust across
  MPI implementations than passive-target RMA over TCP);
* per-query top-tau lists are gathered to rank 0 and merged.

The module imports lazily so the library never requires mpi4py; it is
excluded from coverage expectations on hosts without it (tests skip).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.chem.protein import ProteinDatabase
from repro.core.config import SearchConfig
from repro.core.partition import partition_database, partition_queries
from repro.core.results import SearchReport, merge_rank_hits
from repro.core.search import ShardSearcher
from repro.obs.naming import canonicalize_extras
from repro.scoring.hits import TopHitList
from repro.spectra.spectrum import Spectrum


def _require_mpi():
    try:
        from mpi4py import MPI  # noqa: PLC0415
    except ImportError as exc:  # pragma: no cover - exercised on MPI hosts
        raise RuntimeError(
            "the MPI backend needs mpi4py (pip install mpi4py) and an MPI "
            "runtime; for single-machine use see repro.engines.multiproc "
            "or the simulated cluster (repro.simmpi)"
        ) from exc
    return MPI


def run_mpi_search(
    database: Optional[ProteinDatabase],
    queries: Optional[Sequence[Spectrum]],
    config: Optional[SearchConfig] = None,
) -> Optional[SearchReport]:
    """Run Algorithm A under real MPI.

    Call collectively on every rank; ``database``/``queries`` are only
    read on rank 0 (pass None elsewhere).  Returns the merged report on
    rank 0 and None on other ranks.
    """
    MPI = _require_mpi()
    comm = MPI.COMM_WORLD
    rank, size = comm.Get_rank(), comm.Get_size()
    config = comm.bcast(config or SearchConfig(), root=0)

    # -- scatter shards and query blocks (setup, pickle API) ------------
    if rank == 0:
        if database is None or queries is None:
            raise ValueError("rank 0 must provide database and queries")
        shard_wires = [s.to_buffers() for s in partition_database(database, size)]
        query_blocks = partition_queries(list(queries), size)
    else:
        shard_wires = None
        query_blocks = None
    my_shard_wire = comm.scatter(shard_wires, root=0)
    my_queries: List[Spectrum] = comm.scatter(query_blocks, root=0)

    held_wire = my_shard_wire
    hitlists: Dict[int, TopHitList] = {}
    candidates = 0
    left = (rank - 1) % size
    right = (rank + 1) % size
    wall_start = MPI.Wtime()

    for _step in range(size):
        requests = []
        if size > 1:
            # mask the ring exchange behind this step's scoring
            requests.append(comm.isend(held_wire, dest=left, tag=11))
            recv_req = comm.irecv(bytearray(1 << 24), source=right, tag=11)
        shard = ProteinDatabase.from_buffers(*held_wire)
        searcher = ShardSearcher(shard, config)
        stats = searcher.run(my_queries, hitlists)
        candidates += stats.candidates_evaluated
        if size > 1:
            held_wire = recv_req.wait()
            MPI.Request.waitall(requests)

    wall = MPI.Wtime() - wall_start
    local_hits = {qid: hl.sorted_hits() for qid, hl in hitlists.items()}
    gathered = comm.gather(local_hits, root=0)
    total_candidates = comm.reduce(candidates, op=MPI.SUM, root=0)
    max_wall = comm.reduce(wall, op=MPI.MAX, root=0)
    if rank != 0:
        return None
    return SearchReport(
        algorithm="algorithm_a_mpi",
        num_ranks=size,
        hits=merge_rank_hits(gathered, config.tau),
        candidates_evaluated=int(total_candidates),
        virtual_time=float(max_wall),
        extras=canonicalize_extras(
            {"backend": "mpi4py", "wall_time": float(max_wall)}
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - MPI entry
    """mpiexec entry point: synthetic workload or a FASTA database."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--database", help="FASTA path (default: synthetic)")
    parser.add_argument("--database-size", type=int, default=2_000)
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument("--seed", type=int, default=202)
    args = parser.parse_args(argv)

    MPI = _require_mpi()
    rank = MPI.COMM_WORLD.Get_rank()
    database = None
    queries = None
    if rank == 0:
        from repro.chem.fasta import read_fasta
        from repro.workloads.queries import generate_queries
        from repro.workloads.synthetic import generate_database

        database = (
            read_fasta(args.database)
            if args.database
            else generate_database(args.database_size, seed=args.seed)
        )
        queries = generate_queries(args.queries, seed=17)
    report = run_mpi_search(database, queries)
    if report is not None:
        print(
            f"algorithm_a over mpi4py: p={report.num_ranks}, "
            f"{report.candidates_evaluated} candidates in {report.virtual_time:.2f}s wall"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
