"""Execution engines beyond the simulated cluster."""

from repro.engines.multiproc import run_multiprocess_search

__all__ = ["run_multiprocess_search"]
