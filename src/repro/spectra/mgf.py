"""MGF (Mascot Generic Format) spectrum file I/O.

MGF is the plain-text interchange format every search engine of the
paper's era consumed (Mascot named it; SEQUEST/X!Tandem/MSPolygraph all
read it).  Supporting it means real instrument exports can be searched
with this library, and our simulated workloads can be fed to external
tools for cross-validation.

Format essentials handled here::

    BEGIN IONS
    TITLE=query 0
    PEPMASS=924.504107 12345.6     # precursor m/z [intensity]
    CHARGE=2+
    SCANS=17
    147.1128 102.4                 # fragment m/z, intensity
    ...
    END IONS

Unknown ``KEY=VALUE`` headers are preserved on read (returned in the
per-spectrum metadata) and blank lines/comments (#) are tolerated.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterator, List, Sequence, TextIO, Tuple, Union

import numpy as np

from repro.errors import SpectrumError
from repro.spectra.spectrum import Spectrum

_PathOrHandle = Union[str, os.PathLike, TextIO]
_CHARGE_RE = re.compile(r"^(\d+)([+-]?)$")


def write_mgf(path: _PathOrHandle, spectra: Sequence[Spectrum]) -> None:
    """Write spectra as MGF, one BEGIN/END IONS block each."""
    own = not hasattr(path, "write")
    fh: TextIO = open(path, "w", encoding="ascii") if own else path  # type: ignore[assignment]
    try:
        for spectrum in spectra:
            fh.write("BEGIN IONS\n")
            fh.write(f"TITLE=query {spectrum.query_id}\n")
            fh.write(f"PEPMASS={spectrum.precursor_mz:.8f}\n")
            fh.write(f"CHARGE={spectrum.charge}+\n")
            for mz, intensity in zip(spectrum.mz, spectrum.intensity):
                fh.write(f"{mz:.8f} {intensity:.6f}\n")
            fh.write("END IONS\n")
    finally:
        if own:
            fh.close()


def read_mgf(path: _PathOrHandle) -> List[Spectrum]:
    """Read every spectrum of an MGF file (metadata-tolerant)."""
    return [s for s, _meta in iter_mgf(path)]


def iter_mgf(path: _PathOrHandle) -> Iterator[Tuple[Spectrum, Dict[str, str]]]:
    """Yield ``(spectrum, metadata)`` pairs, streaming.

    ``metadata`` maps the block's raw header keys (upper-cased) to their
    string values, so callers can recover TITLE, SCANS, RTINSECONDS and
    anything else the producer wrote.
    """
    own = not hasattr(path, "read")
    fh: TextIO = open(path, "r", encoding="ascii") if own else path  # type: ignore[assignment]
    try:
        in_block = False
        headers: Dict[str, str] = {}
        peaks: List[Tuple[float, float]] = []
        index = 0
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line == "BEGIN IONS":
                if in_block:
                    raise SpectrumError(f"line {lineno}: nested BEGIN IONS")
                in_block, headers, peaks = True, {}, []
                continue
            if line == "END IONS":
                if not in_block:
                    raise SpectrumError(f"line {lineno}: END IONS outside a block")
                yield _build(headers, peaks, index, lineno), headers
                index += 1
                in_block = False
                continue
            if not in_block:
                continue  # inter-block junk some producers emit
            if "=" in line and not line[0].isdigit():
                key, _eq, value = line.partition("=")
                headers[key.strip().upper()] = value.strip()
            else:
                parts = line.split()
                try:
                    mz = float(parts[0])
                    intensity = float(parts[1]) if len(parts) > 1 else 1.0
                except (ValueError, IndexError):
                    raise SpectrumError(
                        f"line {lineno}: malformed peak line {line!r}"
                    ) from None
                peaks.append((mz, intensity))
        if in_block:
            raise SpectrumError("unterminated BEGIN IONS block at end of file")
    finally:
        if own:
            fh.close()


def _build(
    headers: Dict[str, str], peaks: List[Tuple[float, float]], index: int, lineno: int
) -> Spectrum:
    pepmass = headers.get("PEPMASS")
    if pepmass is None:
        raise SpectrumError(f"block ending at line {lineno}: missing PEPMASS")
    precursor_mz = float(pepmass.split()[0])  # may carry intensity after m/z
    charge = 1
    raw_charge = headers.get("CHARGE")
    if raw_charge:
        match = _CHARGE_RE.match(raw_charge.replace(" ", ""))
        if not match:
            raise SpectrumError(f"block ending at line {lineno}: bad CHARGE {raw_charge!r}")
        charge = int(match.group(1))
    query_id = index
    title = headers.get("TITLE", "")
    title_match = re.search(r"query\s+(\d+)", title)
    if title_match:
        query_id = int(title_match.group(1))
    if peaks:
        mz = np.array([p[0] for p in peaks])
        intensity = np.array([p[1] for p in peaks])
    else:
        mz = np.empty(0)
        intensity = np.empty(0)
    return Spectrum.from_peaks(mz, intensity, precursor_mz, charge, query_id)
