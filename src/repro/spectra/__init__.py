"""Mass-spectrometry substrate: spectra, ion models, simulation, binning."""

from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import theoretical_spectrum, fragment_mz, IonSeries
from repro.spectra.experimental import SpectrumSimulator, SimulatorConfig
from repro.spectra.binning import bin_spectrum, match_peaks, count_matches
from repro.spectra.isotopes import envelope_probabilities, expand_with_isotopes
from repro.spectra.library import SpectralLibrary
from repro.spectra.mgf import iter_mgf, read_mgf, write_mgf
from repro.spectra.preprocess import (
    DEFAULT_PIPELINE,
    deisotope,
    keep_top_k_per_window,
    preprocess,
    remove_low_intensity,
    remove_precursor_peaks,
    sqrt_transform,
)

__all__ = [
    "Spectrum",
    "theoretical_spectrum",
    "fragment_mz",
    "IonSeries",
    "SpectrumSimulator",
    "SimulatorConfig",
    "bin_spectrum",
    "match_peaks",
    "count_matches",
    "SpectralLibrary",
    "envelope_probabilities",
    "iter_mgf",
    "read_mgf",
    "write_mgf",
    "expand_with_isotopes",
    "DEFAULT_PIPELINE",
    "deisotope",
    "keep_top_k_per_window",
    "preprocess",
    "remove_low_intensity",
    "remove_precursor_peaks",
    "sqrt_transform",
]
