"""Isotope envelope modeling (averagine approximation).

Real fragment peaks are not single lines: carbon-13 (1.1% natural
abundance) and friends produce an envelope of peaks spaced ~1.00335 Da
apart whose shape depends on the fragment's elemental composition.  The
standard approximation models a peptide of mass M as containing
``M / 111.1254`` copies of *averagine* (the average amino-acid residue,
C4.94 H7.76 N1.36 O1.48 S0.042), giving a binomial/Poisson envelope over
heavy-isotope counts.

Used by the spectrum simulator (``SimulatorConfig.isotope_envelope``)
so simulated spectra exhibit the satellites that
:func:`repro.spectra.preprocess.deisotope` exists to remove — the
substrate loop closes: simulate -> preprocess -> search.
"""

from __future__ import annotations

import math

import numpy as np

#: average residue (averagine) mass in Da
AVERAGINE_MASS: float = 111.1254
#: isotope peak spacing (13C - 12C)
ISOTOPE_SPACING: float = 1.00335
#: expected heavy-isotope events per averagine unit (dominated by 13C:
#: 4.94 carbons x 1.07% + minor N/H/O/S contributions)
_HEAVY_RATE_PER_AVERAGINE: float = 0.0594


def envelope_probabilities(mass: float, max_isotopes: int = 3) -> np.ndarray:
    """Relative abundances of the +0 ... +max_isotopes isotope peaks.

    Poisson approximation with rate proportional to the fragment mass;
    accurate to a few percent against full isotope-pattern calculators
    for peptide-sized fragments, which is all the simulator needs.
    Normalized so the monoisotopic (+0) peak is 1.0.
    """
    if mass <= 0:
        raise ValueError(f"mass must be > 0, got {mass}")
    if max_isotopes < 0:
        raise ValueError(f"max_isotopes must be >= 0, got {max_isotopes}")
    lam = _HEAVY_RATE_PER_AVERAGINE * (mass / AVERAGINE_MASS)
    k = np.arange(max_isotopes + 1)
    # Poisson pmf normalized to the k=0 term: lam^k / k!
    with np.errstate(over="ignore"):
        rel = lam**k / np.array([math.factorial(int(i)) for i in k], dtype=np.float64)
    return rel


def expand_with_isotopes(
    mz: np.ndarray,
    intensity: np.ndarray,
    charge: int = 1,
    max_isotopes: int = 2,
    min_relative: float = 0.05,
) -> tuple:
    """Expand stick peaks into isotope envelopes.

    Returns new (mz, intensity) arrays (unsorted) where each input peak
    contributes its monoisotopic line plus up to ``max_isotopes``
    satellites at ``+k * 1.00335 / charge``; satellites below
    ``min_relative`` of their monoisotopic peak are dropped.
    """
    if charge < 1:
        raise ValueError(f"charge must be >= 1, got {charge}")
    out_mz = [np.asarray(mz, dtype=np.float64)]
    out_int = [np.asarray(intensity, dtype=np.float64)]
    for k in range(1, max_isotopes + 1):
        # envelope shape depends on each fragment's (approximate) mass
        masses = np.asarray(mz, dtype=np.float64) * charge
        lam = _HEAVY_RATE_PER_AVERAGINE * (masses / AVERAGINE_MASS)
        rel = lam**k / float(math.factorial(k))
        keep = rel >= min_relative
        if not np.any(keep):
            continue
        out_mz.append(np.asarray(mz)[keep] + k * ISOTOPE_SPACING / charge)
        out_int.append(np.asarray(intensity)[keep] * rel[keep])
    return np.concatenate(out_mz), np.concatenate(out_int)
