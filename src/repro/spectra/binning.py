"""Fixed-width m/z binning and vectorized peak matching.

Scorers need to answer, many thousands of times per query: *which peaks
of the experimental spectrum are explained by the candidate's fragment
ladder, within a fragment-mass tolerance?*  With both arrays sorted by
m/z this is a pair of vectorized ``searchsorted`` calls — no Python loop
per peak.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def bin_spectrum(
    mz: np.ndarray, intensity: np.ndarray, bin_width: float, mz_max: float
) -> np.ndarray:
    """Accumulate peaks into fixed-width m/z bins.

    Returns a dense vector of length ``ceil(mz_max / bin_width)`` whose
    entry ``k`` sums the intensity of peaks with
    ``k * bin_width <= mz < (k + 1) * bin_width``.  Peaks at or beyond
    ``mz_max`` are dropped.  Dense binned vectors feed the Xcorr scorer's
    correlation and are the representation X!Tandem-style tools use.
    """
    if bin_width <= 0 or mz_max <= 0:
        raise ValueError("bin_width and mz_max must be positive")
    nbins = int(np.ceil(mz_max / bin_width))
    out = np.zeros(nbins)
    idx = (mz / bin_width).astype(np.int64)
    keep = (idx >= 0) & (idx < nbins)
    np.add.at(out, idx[keep], intensity[keep])
    return out


def match_peaks(
    observed_mz: np.ndarray, ladder_mz: np.ndarray, tolerance: float
) -> np.ndarray:
    """Boolean mask over ``observed_mz``: which peaks lie within
    ``tolerance`` of *some* ladder fragment.

    Both inputs must be sorted ascending.  Complexity is
    ``O((P + F) log F)`` for P peaks and F fragments, fully vectorized.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if len(ladder_mz) == 0:
        return np.zeros(len(observed_mz), dtype=bool)
    lo = np.searchsorted(ladder_mz, observed_mz - tolerance, side="left")
    hi = np.searchsorted(ladder_mz, observed_mz + tolerance, side="right")
    return hi > lo


def count_matches(
    observed_mz: np.ndarray, ladder_mz: np.ndarray, tolerance: float
) -> int:
    """Number of observed peaks explained by the ladder (shared peak count)."""
    return int(match_peaks(observed_mz, ladder_mz, tolerance).sum())


def matched_intensity(
    observed_mz: np.ndarray,
    observed_intensity: np.ndarray,
    ladder_mz: np.ndarray,
    tolerance: float,
) -> Tuple[int, float]:
    """Shared peak count and the summed intensity of the matched peaks."""
    mask = match_peaks(observed_mz, ladder_mz, tolerance)
    return int(mask.sum()), float(observed_intensity[mask].sum())
