"""Fixed-width m/z binning and vectorized peak matching.

Scorers need to answer, many thousands of times per query: *which peaks
of the experimental spectrum are explained by the candidate's fragment
ladder, within a fragment-mass tolerance?*  With both arrays sorted by
m/z this is a pair of vectorized ``searchsorted`` calls — no Python loop
per peak.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def bin_spectrum(
    mz: np.ndarray, intensity: np.ndarray, bin_width: float, mz_max: float
) -> np.ndarray:
    """Accumulate peaks into fixed-width m/z bins.

    Returns a dense vector of length ``ceil(mz_max / bin_width)`` whose
    entry ``k`` sums the intensity of peaks with
    ``k * bin_width <= mz < (k + 1) * bin_width``.  Peaks at or beyond
    ``mz_max`` are dropped.  Dense binned vectors feed the Xcorr scorer's
    correlation and are the representation X!Tandem-style tools use.
    """
    if bin_width <= 0 or mz_max <= 0:
        raise ValueError("bin_width and mz_max must be positive")
    nbins = int(np.ceil(mz_max / bin_width))
    out = np.zeros(nbins)
    idx = (mz / bin_width).astype(np.int64)
    keep = (idx >= 0) & (idx < nbins)
    np.add.at(out, idx[keep], intensity[keep])
    return out


def match_peaks(
    observed_mz: np.ndarray, ladder_mz: np.ndarray, tolerance: float
) -> np.ndarray:
    """Boolean mask over ``observed_mz``: which peaks lie within
    ``tolerance`` of *some* ladder fragment.

    Both inputs must be sorted ascending.  Complexity is
    ``O((P + F) log F)`` for P peaks and F fragments, fully vectorized.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if len(ladder_mz) == 0:
        return np.zeros(len(observed_mz), dtype=bool)
    lo = np.searchsorted(ladder_mz, observed_mz - tolerance, side="left")
    hi = np.searchsorted(ladder_mz, observed_mz + tolerance, side="right")
    return hi > lo


def count_matches(
    observed_mz: np.ndarray, ladder_mz: np.ndarray, tolerance: float
) -> int:
    """Number of observed peaks explained by the ladder (shared peak count)."""
    return int(match_peaks(observed_mz, ladder_mz, tolerance).sum())


# -- batched matchers ------------------------------------------------------
#
# The batch scoring path asks the same questions for *matrices* of
# fragment ladders — one row per candidate — against a single observed
# spectrum.  All batched kernels below evaluate exactly the scalar
# ``match_peaks`` predicate (peak ``p`` matches fragment ``f`` iff
# ``p - tol <= f <= p + tol`` with the same rounded endpoint values), so
# their outputs agree with per-candidate loops bit for bit.


def _ragged_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + l)`` for each (start, length) pair."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    prev = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    ramp = np.arange(total, dtype=np.int64) - np.repeat(prev, lengths)
    return np.repeat(starts, lengths) + ramp


def match_peaks_many(
    query_rows: np.ndarray, ladder_mz: np.ndarray, tolerance: float
) -> np.ndarray:
    """Batched :func:`match_peaks`: boolean matrix over ``query_rows``.

    ``query_rows`` is ``(n, F)`` (rows need not be sorted); ``ladder_mz``
    is one sorted reference array.  Entry ``[r, j]`` equals the scalar
    ``match_peaks(query_rows[r], ladder_mz, tolerance)[j]``.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if len(ladder_mz) == 0:
        return np.zeros(query_rows.shape, dtype=bool)
    lo = np.searchsorted(ladder_mz, query_rows - tolerance, side="left")
    hi = np.searchsorted(ladder_mz, query_rows + tolerance, side="right")
    return hi > lo


def matched_peak_intervals(
    observed_mz: np.ndarray, frag_rows: np.ndarray, tolerance: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-fragment half-open intervals of matched observed-peak indices.

    For fragment ``frag_rows[r, j]`` the matched peaks are exactly
    ``observed_mz[lo[r, j]:hi[r, j]]`` — the peaks ``p`` satisfying the
    scalar predicate ``p - tol <= f <= p + tol``.  ``observed_mz`` must be
    sorted ascending.
    """
    pm = observed_mz - tolerance
    pp = observed_mz + tolerance
    lo = np.searchsorted(pp, frag_rows, side="left")
    hi = np.searchsorted(pm, frag_rows, side="right")
    return lo, hi


def count_matches_rows(
    observed_mz: np.ndarray, frag_rows: np.ndarray, tolerance: float
) -> np.ndarray:
    """Batched :func:`count_matches`: shared peak count per fragment row.

    Each row of ``frag_rows`` must be sorted ascending (fragment ladders
    are).  The count is the size of the *union* of the per-fragment
    matched-peak intervals, so peaks matched by several fragments count
    once — exactly the scalar boolean-mask semantics.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    n, f = frag_rows.shape
    if f == 0 or len(observed_mz) == 0:
        return np.zeros(n, dtype=np.int64)
    lo, hi = matched_peak_intervals(observed_mz, frag_rows, tolerance)
    # Rows sorted ascending => hi is non-decreasing along each row, so the
    # peaks newly covered by fragment j are [max(lo_j, hi_{j-1}), hi_j).
    prev = np.concatenate([np.zeros((n, 1), dtype=hi.dtype), hi[:, :-1]], axis=1)
    new = hi - np.maximum(lo, prev)
    return np.maximum(new, 0).sum(axis=1).astype(np.int64)


def matched_peak_segments(
    observed_mz: np.ndarray, frag_rows: np.ndarray, tolerance: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Matched observed-peak indices per fragment row, in ragged form.

    Returns ``(flat_idx, row_offsets)``: row ``r``'s matched peaks are
    ``flat_idx[row_offsets[r]:row_offsets[r + 1]]``, ascending — the same
    order a scalar boolean mask enumerates them.  Rows of ``frag_rows``
    must be sorted ascending.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    n, f = frag_rows.shape
    if f == 0 or len(observed_mz) == 0:
        return np.empty(0, dtype=np.int64), np.zeros(n + 1, dtype=np.int64)
    lo, hi = matched_peak_intervals(observed_mz, frag_rows, tolerance)
    prev = np.concatenate([np.zeros((n, 1), dtype=hi.dtype), hi[:, :-1]], axis=1)
    starts = np.maximum(lo, prev)
    lens = np.maximum(hi - starts, 0)
    flat_idx = _ragged_arange(
        starts.ravel().astype(np.int64), lens.ravel().astype(np.int64)
    )
    row_offsets = np.concatenate(([0], np.cumsum(lens.sum(axis=1)))).astype(np.int64)
    return flat_idx, row_offsets


def row_segment_sums(
    values: np.ndarray, flat_idx: np.ndarray, row_offsets: np.ndarray
) -> np.ndarray:
    """Per-row sums of ``values[flat_idx[segment]]``, bitwise-stable.

    Rows are grouped by segment length and each group is gathered into a
    fresh C-contiguous matrix before a row-wise ``sum``, so every row's
    result is bitwise identical to summing its gathered values as a 1-D
    array — the scalar kernels' operation order.  Empty segments sum to
    ``0.0``.
    """
    n = len(row_offsets) - 1
    out = np.zeros(n, dtype=np.float64)
    counts = np.diff(row_offsets)
    for k in np.unique(counts):
        k = int(k)
        if k == 0:
            continue
        rows = np.nonzero(counts == k)[0]
        seg = flat_idx[row_offsets[rows][:, None] + np.arange(k)]
        out[rows] = values[seg].sum(axis=1)
    return out


def matched_intensity_rows(
    observed_mz: np.ndarray,
    observed_intensity: np.ndarray,
    frag_rows: np.ndarray,
    tolerance: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`matched_intensity`: ``(counts, intensity_sums)``.

    Row ``r`` reproduces the scalar
    ``matched_intensity(observed_mz, observed_intensity, frag_rows[r], tol)``
    bit for bit (see :func:`row_segment_sums` for why the float sums are
    exact).  Rows of ``frag_rows`` must be sorted ascending.
    """
    flat_idx, row_offsets = matched_peak_segments(observed_mz, frag_rows, tolerance)
    counts = np.diff(row_offsets).astype(np.int64)
    return counts, row_segment_sums(observed_intensity, flat_idx, row_offsets)


def matched_intensity(
    observed_mz: np.ndarray,
    observed_intensity: np.ndarray,
    ladder_mz: np.ndarray,
    tolerance: float,
) -> Tuple[int, float]:
    """Shared peak count and the summed intensity of the matched peaks."""
    mask = match_peaks(observed_mz, ladder_mz, tolerance)
    return int(mask.sum()), float(observed_intensity[mask].sum())
