"""Experimental-spectrum simulator.

The paper's queries are 1,210 real human MS/MS spectra we cannot obtain
offline, so the workload generator fabricates experimental spectra with
the statistical defects real instruments produce — the same defects the
scoring models exist to absorb:

* *peak dropout* — only a fraction of the theoretical b/y ladder is
  observed ("de novo ... handicapped by the large number of peaks that
  can be missing", Section I.A);
* *m/z jitter* — measured fragment masses deviate from theory within the
  instrument tolerance;
* *noise peaks* — chemical/electronic noise adds peaks explained by no
  fragment;
* *intensity variation* — observed intensities are log-normally scattered
  around the model intensities;
* *precursor error* — the reported parent m/z deviates slightly, which is
  why candidate selection uses the ``m(q) +/- delta`` window.

All draws derive from an explicit seed (see :mod:`repro.utils.rng`), so a
workload is a pure function of its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.peptide import peptide_mz, peptide_mass
from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import theoretical_spectrum
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class SimulatorConfig:
    """Knobs of the experimental-spectrum simulator.

    Attributes:
        peak_dropout: probability each theoretical fragment peak is *not*
            observed.
        mz_jitter_sd: standard deviation (Da) of Gaussian fragment-mass
            error.
        noise_peaks: expected number of uniform noise peaks added.
        intensity_sd: sigma of the log-normal intensity scatter.
        precursor_jitter_sd: standard deviation (Da) of parent m/z error;
            must stay well below the search tolerance delta for the true
            peptide to remain inside its own candidate window.
        min_peaks: spectra that end up with fewer observed peaks are
            regenerated with reduced dropout, mirroring instrument
            quality filters that discard near-empty scans.
        isotope_envelope: add +1/+2 isotope satellites to observed
            fragment peaks (averagine model,
            :mod:`repro.spectra.isotopes`) — enable to exercise the
            deisotoping preprocessing path end to end.
    """

    peak_dropout: float = 0.3
    mz_jitter_sd: float = 0.01
    noise_peaks: float = 10.0
    intensity_sd: float = 0.5
    precursor_jitter_sd: float = 0.005
    min_peaks: int = 5
    isotope_envelope: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.peak_dropout < 1.0:
            raise ValueError(f"peak_dropout must be in [0, 1), got {self.peak_dropout}")
        for name in ("mz_jitter_sd", "noise_peaks", "intensity_sd", "precursor_jitter_sd"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


class SpectrumSimulator:
    """Generates experimental spectra from known target peptides."""

    def __init__(self, config: SimulatorConfig = SimulatorConfig(), seed: int = 0):
        self.config = config
        self.seed = seed

    def simulate(
        self,
        encoded_peptide: np.ndarray,
        query_id: int,
        charge: int = 1,
        mod_site: int = -1,
        mod_delta: float = 0.0,
    ) -> Spectrum:
        """Simulate one experimental spectrum for a target peptide.

        The result depends only on ``(seed, query_id)``, not on call
        order, so workloads are reproducible piecewise.
        ``mod_site``/``mod_delta`` simulate a peptide carrying a variable
        PTM: the fragment ladder and the precursor mass both shift.
        """
        cfg = self.config
        rng = make_rng(self.seed, "spectrum", query_id)
        mz, intensity = theoretical_spectrum(
            encoded_peptide, charges=(1,), mod_site=mod_site, mod_delta=mod_delta
        )
        dropout = cfg.peak_dropout
        for _attempt in range(8):
            observed = rng.random(len(mz)) >= dropout
            if int(observed.sum()) >= min(cfg.min_peaks, len(mz)):
                break
            dropout *= 0.5
        obs_mz = mz[observed] + rng.normal(0.0, cfg.mz_jitter_sd, int(observed.sum()))
        obs_int = intensity[observed] * rng.lognormal(0.0, cfg.intensity_sd, len(obs_mz))
        if cfg.isotope_envelope and len(obs_mz):
            from repro.spectra.isotopes import expand_with_isotopes

            obs_mz, obs_int = expand_with_isotopes(obs_mz, obs_int, charge=1)

        n_noise = int(rng.poisson(cfg.noise_peaks))
        if n_noise and len(mz):
            lo, hi = float(mz[0]) * 0.5, float(mz[-1]) * 1.1
            noise_mz = rng.uniform(lo, hi, n_noise)
            noise_int = rng.exponential(0.1 * max(float(obs_int.max(initial=1.0)), 1e-9), n_noise)
            obs_mz = np.concatenate((obs_mz, noise_mz))
            obs_int = np.concatenate((obs_int, noise_int))

        true_mass = peptide_mass(encoded_peptide)
        if mod_site >= 0:
            true_mass += mod_delta
        precursor = peptide_mz(true_mass, charge) + rng.normal(0.0, cfg.precursor_jitter_sd)
        # Guard against jitter producing non-positive fragment masses.
        keep = obs_mz > 0
        return Spectrum.from_peaks(obs_mz[keep], obs_int[keep], precursor, charge, query_id)
