"""Spectral library: curated reference spectra keyed by peptide sequence.

MSPolygraph "combines the use of highly accurate spectral libraries, when
available, with the use of on-the-fly generation of sequence averaged
model spectra when spectral libraries are not available" (paper Section
I.A).  :class:`SpectralLibrary` reproduces that two-tier lookup: scorers
ask the library for a candidate's model spectrum and fall back to the
theoretical b/y model on a miss.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.chem.amino_acids import decode_sequence
from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import theoretical_spectrum


class SpectralLibrary:
    """In-memory reference spectrum store with theoretical fallback."""

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sequence: str) -> bool:
        return sequence in self._entries

    def add(self, sequence: str, mz: np.ndarray, intensity: np.ndarray) -> None:
        """Register a reference spectrum for a peptide sequence.

        Peaks are sorted and stored read-only; re-adding a sequence
        replaces its entry (libraries are periodically re-curated).
        """
        mz = np.asarray(mz, dtype=np.float64)
        intensity = np.asarray(intensity, dtype=np.float64)
        if len(mz) != len(intensity):
            raise ValueError("mz and intensity must have equal length")
        order = np.argsort(mz, kind="stable")
        mz, intensity = mz[order].copy(), intensity[order].copy()
        mz.flags.writeable = False
        intensity.flags.writeable = False
        self._entries[sequence] = (mz, intensity)

    def add_spectrum(self, sequence: str, spectrum: Spectrum) -> None:
        self.add(sequence, spectrum.mz, spectrum.intensity)

    @classmethod
    def from_peptides(cls, encoded_peptides: Iterable[np.ndarray]) -> "SpectralLibrary":
        """Build a library of ideal theoretical spectra (useful in tests)."""
        lib = cls()
        for enc in encoded_peptides:
            mz, intensity = theoretical_spectrum(enc)
            lib.add(decode_sequence(enc), mz, intensity)
        return lib

    def lookup(self, sequence: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Reference ``(mz, intensity)`` for a sequence, or None on miss."""
        entry = self._entries.get(sequence)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def model_spectrum(self, encoded: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Library spectrum if present, else the on-the-fly theoretical model.

        This is MSPolygraph's two-tier model-spectrum path.
        """
        entry = self.lookup(decode_sequence(encoded))
        if entry is not None:
            return entry
        return theoretical_spectrum(encoded)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
