"""The Spectrum value type.

An *experimental spectrum* (paper Section I) is "a plot of peak
intensities (y-axis) to m/z values (x-axis)" recorded for fragments of an
unknown target peptide, together with the m/z of the whole parent
peptide, ``m(q)``.  We store peaks as two parallel float arrays sorted by
m/z, which every scorer and matcher relies on for binary-search matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.peptide import mz_to_mass
from repro.errors import SpectrumError


@dataclass(frozen=True)
class Spectrum:
    """An MS/MS spectrum: sorted peak m/z values, intensities, parent info.

    Attributes:
        mz: peak m/z values, strictly increasing, > 0 (``float64``).
        intensity: peak intensities, >= 0, same length as ``mz``.
        precursor_mz: observed m/z of the intact parent peptide, m(q).
        charge: assumed parent charge state (>= 1).
        query_id: stable identifier of this query within a workload; the
            parallel algorithms carry it through redistribution so results
            can be merged and compared against the serial engine.
    """

    mz: np.ndarray
    intensity: np.ndarray
    precursor_mz: float
    charge: int = 1
    query_id: int = -1

    def __post_init__(self) -> None:
        mz = np.ascontiguousarray(self.mz, dtype=np.float64)
        intensity = np.ascontiguousarray(self.intensity, dtype=np.float64)
        if mz.ndim != 1 or intensity.ndim != 1 or len(mz) != len(intensity):
            raise SpectrumError("mz and intensity must be 1-D arrays of equal length")
        if len(mz) and (np.any(mz <= 0) or np.any(np.diff(mz) <= 0)):
            raise SpectrumError("peak m/z values must be positive and strictly increasing")
        if np.any(intensity < 0):
            raise SpectrumError("peak intensities must be non-negative")
        if self.precursor_mz <= 0:
            raise SpectrumError(f"precursor m/z must be positive, got {self.precursor_mz}")
        if self.charge < 1:
            raise SpectrumError(f"charge must be >= 1, got {self.charge}")
        mz.flags.writeable = False
        intensity.flags.writeable = False
        object.__setattr__(self, "mz", mz)
        object.__setattr__(self, "intensity", intensity)

    @property
    def num_peaks(self) -> int:
        return len(self.mz)

    @property
    def parent_mass(self) -> float:
        """Neutral mass of the parent peptide implied by precursor m/z and charge."""
        return mz_to_mass(self.precursor_mz, self.charge)

    @property
    def total_intensity(self) -> float:
        return float(self.intensity.sum())

    @property
    def nbytes(self) -> int:
        """Transportable size, used by the simulated machine's accounting."""
        return int(self.mz.nbytes + self.intensity.nbytes) + 24  # + scalars

    @classmethod
    def from_peaks(
        cls,
        mz: np.ndarray,
        intensity: np.ndarray,
        precursor_mz: float,
        charge: int = 1,
        query_id: int = -1,
    ) -> "Spectrum":
        """Build a spectrum from unsorted peaks, merging duplicate m/z values.

        Duplicate m/z values have their intensities summed (two unresolved
        fragments landing in the same measurement), which restores the
        strict-ordering invariant.
        """
        mz = np.asarray(mz, dtype=np.float64)
        intensity = np.asarray(intensity, dtype=np.float64)
        order = np.argsort(mz, kind="stable")
        mz, intensity = mz[order], intensity[order]
        if len(mz):
            keep = np.concatenate(([True], np.diff(mz) > 0))
            group = np.cumsum(keep) - 1
            summed = np.zeros(int(group[-1]) + 1)
            np.add.at(summed, group, intensity)
            mz, intensity = mz[keep], summed
        return cls(mz, intensity, precursor_mz, charge, query_id)

    def normalized(self) -> "Spectrum":
        """Spectrum with intensities scaled so the maximum is 1 (no-op if empty)."""
        peak = self.intensity.max() if len(self.intensity) else 0.0
        if peak <= 0:
            return self
        return Spectrum(
            self.mz, self.intensity / peak, self.precursor_mz, self.charge, self.query_id
        )

    def top_peaks(self, k: int) -> "Spectrum":
        """Spectrum retaining only the ``k`` most intense peaks (still m/z-sorted)."""
        if k >= self.num_peaks:
            return self
        idx = np.sort(np.argpartition(self.intensity, -k)[-k:])
        return Spectrum(
            self.mz[idx], self.intensity[idx], self.precursor_mz, self.charge, self.query_id
        )
