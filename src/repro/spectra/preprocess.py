"""Spectrum preprocessing: the cleanup real pipelines run before search.

Instrument spectra carry noise peaks, isotope satellites, and large
dynamic range; production engines (SEQUEST, X!Tandem, MSPolygraph alike)
normalize before scoring.  These transforms are pure functions
Spectrum -> Spectrum, composable via :func:`preprocess`:

* :func:`remove_low_intensity` — drop peaks below a fraction of the base
  peak (electronic noise floor);
* :func:`keep_top_k_per_window` — local intensity filtering, the
  standard "top N peaks per 100 m/z" rule that equalizes dense and
  sparse regions;
* :func:`deisotope` — collapse +1 Da isotope satellites into their
  monoisotopic peak;
* :func:`remove_precursor_peaks` — excise the unfragmented precursor
  (it carries no sequence information and can dominate scores);
* :func:`sqrt_transform` — compress dynamic range (SEQUEST-style).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.constants import PROTON_MASS
from repro.spectra.spectrum import Spectrum

Transform = Callable[[Spectrum], Spectrum]

#: spacing of isotope peaks for a singly-charged fragment (Da)
_ISOTOPE_SPACING = 1.00335


def _rebuild(spectrum: Spectrum, keep: np.ndarray) -> Spectrum:
    return Spectrum(
        spectrum.mz[keep],
        spectrum.intensity[keep],
        spectrum.precursor_mz,
        spectrum.charge,
        spectrum.query_id,
    )


def remove_low_intensity(threshold_fraction: float = 0.01) -> Transform:
    """Drop peaks below ``threshold_fraction`` of the most intense peak."""
    if not 0.0 <= threshold_fraction < 1.0:
        raise ValueError(f"threshold_fraction must be in [0, 1), got {threshold_fraction}")

    def transform(spectrum: Spectrum) -> Spectrum:
        if spectrum.num_peaks == 0:
            return spectrum
        floor = spectrum.intensity.max() * threshold_fraction
        return _rebuild(spectrum, spectrum.intensity >= floor)

    return transform


def keep_top_k_per_window(k: int = 6, window: float = 100.0) -> Transform:
    """Keep only the ``k`` most intense peaks per ``window`` Da of m/z."""
    if k < 1 or window <= 0:
        raise ValueError("need k >= 1 and window > 0")

    def transform(spectrum: Spectrum) -> Spectrum:
        if spectrum.num_peaks <= k:
            return spectrum
        bins = (spectrum.mz / window).astype(np.int64)
        keep = np.zeros(spectrum.num_peaks, dtype=bool)
        for b in np.unique(bins):
            idx = np.nonzero(bins == b)[0]
            if len(idx) <= k:
                keep[idx] = True
            else:
                top = idx[np.argpartition(spectrum.intensity[idx], -k)[-k:]]
                keep[top] = True
        return _rebuild(spectrum, keep)

    return transform


def deisotope(tolerance: float = 0.01) -> Transform:
    """Remove +1 Da isotope satellites.

    A peak is a satellite when a peak ~1.00335 Da lighter exists with
    *greater* intensity (true for the isotope envelopes of peptide-sized
    fragments); its intensity is folded into the monoisotopic peak.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")

    def transform(spectrum: Spectrum) -> Spectrum:
        n = spectrum.num_peaks
        if n < 2:
            return spectrum
        mz = spectrum.mz
        intensity = spectrum.intensity.copy()
        satellite = np.zeros(n, dtype=bool)
        # For each peak, look for its parent one isotope spacing below.
        # Scanning from high m/z down lets satellite *chains* (the +2, +3
        # isotopes) fold stepwise into the monoisotopic peak.
        targets = mz - _ISOTOPE_SPACING
        lo = np.searchsorted(mz, targets - tolerance, side="left")
        hi = np.searchsorted(mz, targets + tolerance, side="right")
        for i in range(n - 1, -1, -1):
            for j in range(int(lo[i]), int(hi[i])):
                if intensity[j] > intensity[i] and not satellite[j]:
                    satellite[i] = True
                    intensity[j] += intensity[i]
                    break
        keep = ~satellite
        return Spectrum(
            mz[keep], intensity[keep], spectrum.precursor_mz, spectrum.charge, spectrum.query_id
        )

    return transform


def remove_precursor_peaks(tolerance: float = 2.0) -> Transform:
    """Remove peaks within ``tolerance`` of the precursor's m/z (any of
    the charge-reduced positions for the spectrum's charge)."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")

    def transform(spectrum: Spectrum) -> Spectrum:
        if spectrum.num_peaks == 0:
            return spectrum
        keep = np.ones(spectrum.num_peaks, dtype=bool)
        neutral = spectrum.parent_mass
        for z in range(1, spectrum.charge + 1):
            pos = (neutral + z * PROTON_MASS) / z
            keep &= np.abs(spectrum.mz - pos) > tolerance
        return _rebuild(spectrum, keep)

    return transform


def sqrt_transform() -> Transform:
    """Square-root the intensities (dynamic-range compression)."""

    def transform(spectrum: Spectrum) -> Spectrum:
        return Spectrum(
            spectrum.mz,
            np.sqrt(spectrum.intensity),
            spectrum.precursor_mz,
            spectrum.charge,
            spectrum.query_id,
        )

    return transform


def preprocess(spectrum: Spectrum, transforms: Sequence[Transform]) -> Spectrum:
    """Apply transforms left to right."""
    for transform in transforms:
        spectrum = transform(spectrum)
    return spectrum


#: a sensible default pipeline for simulated instrument spectra
DEFAULT_PIPELINE: Sequence[Transform] = (
    remove_precursor_peaks(),
    deisotope(),
    remove_low_intensity(0.01),
    keep_top_k_per_window(8, 100.0),
)
