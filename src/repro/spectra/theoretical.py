"""Theoretical (model) fragment spectra for candidate peptides.

MSPolygraph scores a query against "a model spectrum for the candidate"
(paper Section II.A).  Collision-induced dissociation predominantly
breaks the peptide backbone, producing *b ions* (N-terminal prefixes)
and *y ions* (C-terminal suffixes); we model those two series plus the
optional *a* series (b minus CO) that X!Tandem also considers.

The hot path — generating fragment m/z arrays for hundreds of thousands
of candidates per query — is fully vectorized over the candidate's
residues via prefix-mass cumulative sums.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.chem.amino_acids import mass_table
from repro.constants import PROTON_MASS, WATER_MASS

#: Mass of carbon monoxide, subtracted from b ions to form a ions (Da).
_CO_MASS: float = 27.994915


class IonSeries(str, Enum):
    """Backbone fragment ion series."""

    A = "a"
    B = "b"
    Y = "y"


def _residue_masses_with_mod(
    encoded: np.ndarray,
    monoisotopic: bool,
    site: int = -1,
    delta_mass: float = 0.0,
) -> np.ndarray:
    """Per-residue masses, optionally with a PTM delta at one site."""
    residue = mass_table(monoisotopic)[encoded].astype(np.float64)
    if site >= 0:
        if site >= len(residue):
            raise IndexError(f"site {site} out of range for length {len(residue)}")
        residue = residue.copy()
        residue[site] += delta_mass
    return residue


def fragment_mz(
    encoded: np.ndarray,
    series: IonSeries,
    charge: int = 1,
    monoisotopic: bool = True,
    mod_site: int = -1,
    mod_delta: float = 0.0,
) -> np.ndarray:
    """m/z values of all fragments of one ion series for a peptide.

    For a peptide of length ``L`` there are ``L - 1`` fragments per series
    (the full-length "fragment" is the precursor, not a product ion).

    * b_i = (sum of first i residue masses) + proton  (singly charged)
    * a_i = b_i - CO
    * y_i = (sum of last i residue masses) + water + proton
    """
    if charge < 1:
        raise ValueError(f"charge must be >= 1, got {charge}")
    residue = _residue_masses_with_mod(encoded, monoisotopic, mod_site, mod_delta)
    if len(residue) < 2:
        return np.empty(0, dtype=np.float64)
    if series is IonSeries.Y:
        neutral = residue[::-1][:-1].cumsum() + WATER_MASS
    else:
        neutral = residue[:-1].cumsum()
        if series is IonSeries.A:
            neutral = neutral - _CO_MASS
    return (neutral + charge * PROTON_MASS) / charge


#: Relative intensity assigned to each series in the model spectrum.  The
#: y series dominates observed CID spectra; b is strong; a is weak.
_SERIES_WEIGHT = {IonSeries.B: 0.8, IonSeries.Y: 1.0, IonSeries.A: 0.25}


def series_weight(series: IonSeries, charge: int = 1) -> float:
    """Model-spectrum intensity of one ion series at one charge state.

    Exposed so index-served scoring can rebuild model intensities with the
    exact weights (and the exact ``w / z`` division) the batched kernel
    uses — any drift here would break the bitwise-equality contract.
    """
    return _SERIES_WEIGHT[series] / charge


def theoretical_spectrum(
    encoded: np.ndarray,
    series: Sequence[IonSeries] = (IonSeries.B, IonSeries.Y),
    charges: Iterable[int] = (1,),
    monoisotopic: bool = True,
    mod_site: int = -1,
    mod_delta: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Model spectrum of a candidate: ``(mz, intensity)`` sorted by m/z.

    Intensities follow the fixed per-series weights — a deliberate,
    simple sequence-averaged model in the spirit of MSPolygraph's
    "on-the-fly generation of sequence averaged model spectra" when no
    spectral library entry exists.  ``mod_site``/``mod_delta`` shift the
    fragments containing a variable PTM (see
    :func:`modified_by_ion_ladder`).
    """
    mz_parts = []
    int_parts = []
    for s in series:
        w = _SERIES_WEIGHT[s]
        for z in charges:
            frag = fragment_mz(encoded, s, z, monoisotopic, mod_site, mod_delta)
            mz_parts.append(frag)
            int_parts.append(np.full(len(frag), w / z))
    if not mz_parts:
        return np.empty(0), np.empty(0)
    mz = np.concatenate(mz_parts)
    intensity = np.concatenate(int_parts)
    order = np.argsort(mz, kind="stable")
    return mz[order], intensity[order]


def fragment_mz_rows(
    mass_rows: np.ndarray,
    series: IonSeries,
    charge: int = 1,
) -> np.ndarray:
    """Batched :func:`fragment_mz` over per-candidate residue-mass rows.

    ``mass_rows`` is ``(n, L)`` — one row of residue masses per candidate,
    with any PTM delta already applied (see
    :meth:`repro.candidates.batch.LengthGroup.mass_rows`).  Returns the
    ``(n, L - 1)`` fragment m/z matrix.  Row ``r`` is bitwise identical to
    the scalar ``fragment_mz`` of the same candidate: the per-row
    ``cumsum`` is the same sequential fold the 1-D kernel performs.
    """
    if charge < 1:
        raise ValueError(f"charge must be >= 1, got {charge}")
    n, length = mass_rows.shape
    if length < 2:
        return np.empty((n, 0), dtype=np.float64)
    if series is IonSeries.Y:
        neutral = mass_rows[:, ::-1][:, :-1].cumsum(axis=1) + WATER_MASS
    else:
        neutral = mass_rows[:, :-1].cumsum(axis=1)
        if series is IonSeries.A:
            neutral = neutral - _CO_MASS
    return (neutral + charge * PROTON_MASS) / charge


def combine_fragment_rows(
    parts: Sequence[Tuple[np.ndarray, float]], n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge weighted fragment matrices into sorted model-spectrum rows.

    ``parts`` is a sequence of ``(frag_rows, weight)`` pairs — one per ion
    series/charge — in the same order :func:`theoretical_spectrum_rows`
    generates them.  This is the shared tail of the batched model-spectrum
    kernel; the fragment index reuses it on cached fragment matrices so
    index-served likelihood models are bitwise identical to regenerated
    ones.
    """
    if not parts:
        return np.empty((n, 0)), np.empty((n, 0))
    mz = np.concatenate([frag for frag, _w in parts], axis=1)
    intensity = np.concatenate([np.full(frag.shape, w) for frag, w in parts], axis=1)
    order = np.argsort(mz, axis=1, kind="stable")
    return (
        np.take_along_axis(mz, order, axis=1),
        np.take_along_axis(intensity, order, axis=1),
    )


def theoretical_spectrum_rows(
    mass_rows: np.ndarray,
    series: Sequence[IonSeries] = (IonSeries.B, IonSeries.Y),
    charges: Iterable[int] = (1,),
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`theoretical_spectrum`: ``(mz_rows, intensity_rows)``.

    Both outputs are ``(n, F)`` with each row sorted by m/z via the same
    stable key the scalar kernel uses, so row ``r`` reproduces the scalar
    model spectrum of candidate ``r`` bit for bit.
    """
    n = mass_rows.shape[0]
    parts = []
    for s in series:
        w = _SERIES_WEIGHT[s]
        for z in charges:
            parts.append((fragment_mz_rows(mass_rows, s, z), w / z))
    return combine_fragment_rows(parts, n)


def modified_by_ion_ladder(
    encoded: np.ndarray,
    site: int,
    delta_mass: float,
    monoisotopic: bool = True,
) -> np.ndarray:
    """Sorted singly-charged b+y ladder with a mass shift at one residue.

    A variable PTM of ``delta_mass`` at position ``site`` shifts every b
    ion that *contains* the site (b_i for i > site) and every y ion that
    contains it (y_j for j >= L - site), leaving the rest untouched —
    exactly how a modified peptide's spectrum differs from the
    unmodified one.  Used by PTM-aware scoring to evaluate each possible
    modification site.
    """
    if site < 0:
        raise IndexError(f"site must be >= 0, got {site}")
    residue = _residue_masses_with_mod(encoded, monoisotopic, site, delta_mass)
    if len(residue) < 2:
        return np.empty(0, dtype=np.float64)
    csum = residue.cumsum()
    total = csum[-1]
    b = csum[:-1] + PROTON_MASS
    y = (total - csum[:-1]) + WATER_MASS + PROTON_MASS
    ladder = np.concatenate((b, y))
    ladder.sort()
    return ladder


def by_ion_ladder_rows(mass_rows: np.ndarray) -> np.ndarray:
    """Batched :func:`by_ion_ladder` over per-candidate residue-mass rows.

    ``mass_rows`` is ``(n, L)`` with PTM deltas already applied, so this
    also covers :func:`modified_by_ion_ladder` (both scalar kernels share
    the same arithmetic once the site delta is folded into the residue
    masses).  Returns the ``(n, 2 * (L - 1))`` sorted ladder matrix; row
    ``r`` is bitwise identical to the scalar ladder of candidate ``r``.
    """
    n, length = mass_rows.shape
    if length < 2:
        return np.empty((n, 0), dtype=np.float64)
    csum = mass_rows.cumsum(axis=1)
    total = csum[:, -1:]
    b = csum[:, :-1] + PROTON_MASS
    y = (total - csum[:, :-1]) + WATER_MASS + PROTON_MASS
    ladder = np.concatenate((b, y), axis=1)
    ladder.sort(axis=1)
    return ladder


def by_ion_ladder(encoded: np.ndarray, monoisotopic: bool = True) -> np.ndarray:
    """Sorted m/z of the singly-charged b+y ladder (the default model).

    This is the scorer hot path: one cumulative sum, two adds, one sort.
    Returns an array of length ``2 * (L - 1)``.
    """
    residue = mass_table(monoisotopic)[encoded]
    if len(residue) < 2:
        return np.empty(0, dtype=np.float64)
    csum = residue.cumsum()
    total = csum[-1]
    b = csum[:-1] + PROTON_MASS
    # y_i = total - prefix_{L-i} + water + proton; computing from the same
    # cumulative sum avoids a second pass over the residues.
    y = (total - csum[:-1]) + WATER_MASS + PROTON_MASS
    ladder = np.concatenate((b, y))
    ladder.sort()
    return ladder
