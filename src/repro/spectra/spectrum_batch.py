"""Packed multi-spectrum batch for cohort (candidate-major) scoring.

A cohort of queries whose precursor windows overlap shares one candidate
block; the block's fragment-index probe then wants all member peaks in a
single pair of flat arrays so binning, posting-list lookup, and segment
sums run once per cohort instead of once per query.  ``SpectrumBatch``
concatenates the members' peak arrays with a CSR-style offsets vector.

The flat arrays are plain concatenations — every value is bit-for-bit
the same float64 the per-spectrum arrays hold — so any kernel that
gathers a member's slice (or addresses peaks by global flat index)
produces results bitwise identical to the per-query path.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.spectra.spectrum import Spectrum


class SpectrumBatch:
    """Peaks of several spectra packed into flat CSR arrays.

    Attributes:
        spectra: the member spectra, in cohort order.
        mz: all members' peak m/z values, concatenated (``float64``).
        intensity: matching concatenated intensities.
        offsets: ``(len + 1,)`` int64; member ``k`` owns the flat slice
            ``[offsets[k], offsets[k + 1])``.
    """

    __slots__ = ("spectra", "mz", "intensity", "offsets")

    def __init__(self, spectra: Sequence[Spectrum]):
        self.spectra: List[Spectrum] = list(spectra)
        counts = np.fromiter(
            (s.num_peaks for s in self.spectra), dtype=np.int64, count=len(self.spectra)
        )
        self.offsets = np.concatenate(([0], np.cumsum(counts)))
        if self.spectra:
            self.mz = np.ascontiguousarray(np.concatenate([s.mz for s in self.spectra]))
            self.intensity = np.ascontiguousarray(
                np.concatenate([s.intensity for s in self.spectra])
            )
        else:
            self.mz = np.empty(0, dtype=np.float64)
            self.intensity = np.empty(0, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.spectra)

    @property
    def num_peaks(self) -> int:
        """Total peak count across all members."""
        return len(self.mz)
