"""repro: scalable parallel peptide identification from MS/MS data.

A full reproduction of Kulkarni, Kalyanaraman, Cannon & Baxter,
"A Scalable Parallel Approach for Peptide Identification from
Large-Scale Mass Spectrometry Data" (ICPP Workshops 2009), as a
self-contained Python library: the space-optimal database-transport
algorithms (A and B), the MSPolygraph master-worker and X!!Tandem-like
baselines, the biochemistry and mass-spectrometry substrates they search
over, and a deterministic simulated distributed-memory machine that
stands in for the paper's 128-process MPI cluster.

Quickstart::

    from repro import generate_database, generate_queries, run_search

    database = generate_database(2_000, seed=0)
    queries = generate_queries(100, seed=17)
    report = run_search(database, queries, algorithm="algorithm_a", num_ranks=8)
    print(report.virtual_time, report.top_hit(0))

See README.md for the architecture overview, DESIGN.md for the paper ->
module map, and EXPERIMENTS.md for the reproduced tables and figures.
"""

from repro.chem import Peptide, ProteinDatabase, ProteinRecord, read_fasta, write_fasta
from repro.core import (
    ALGORITHMS,
    PeptideIdentifier,
    CostModel,
    ExecutionMode,
    SearchConfig,
    SearchReport,
    reports_equal,
    run_algorithm_a,
    run_algorithm_b,
    run_candidate_transport,
    run_master_worker,
    run_query_transport,
    run_search,
    run_subgroups,
    run_xbang,
    search_serial,
)
from repro.engines import run_multiprocess_search
from repro.obs import MetricsRegistry, RunReport, enable_metrics, get_metrics
from repro.scoring import Hit, TopHitList
from repro.simmpi import ClusterConfig, NetworkModel, SimCluster
from repro.spectra import Spectrum, SpectrumSimulator
from repro.workloads import (
    HUMAN,
    MICROBIAL,
    QueryWorkload,
    generate_database,
    generate_queries,
    load_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "Peptide",
    "ProteinDatabase",
    "ProteinRecord",
    "read_fasta",
    "write_fasta",
    "ALGORITHMS",
    "PeptideIdentifier",
    "CostModel",
    "ExecutionMode",
    "SearchConfig",
    "SearchReport",
    "reports_equal",
    "run_algorithm_a",
    "run_algorithm_b",
    "run_candidate_transport",
    "run_master_worker",
    "run_query_transport",
    "run_search",
    "run_subgroups",
    "run_xbang",
    "search_serial",
    "run_multiprocess_search",
    "MetricsRegistry",
    "RunReport",
    "enable_metrics",
    "get_metrics",
    "Hit",
    "TopHitList",
    "ClusterConfig",
    "NetworkModel",
    "SimCluster",
    "Spectrum",
    "SpectrumSimulator",
    "HUMAN",
    "MICROBIAL",
    "QueryWorkload",
    "generate_database",
    "generate_queries",
    "load_dataset",
    "__version__",
]
