"""Schema-versioned descriptor of the fragment index's flat-array state.

A built :class:`~repro.index.fragment_index.FragmentIndex` is nothing
but a set of named, contiguous numpy arrays (posting lists, bin-start
tables, per-length fragment matrices flattened to 1-D buffers, row
metadata, and the shard's own flat buffers).  :class:`IndexLayout` is
the single source of truth for that set: which arrays exist, their
dtypes and shapes, plus the scalar build parameters needed to interpret
them (``bin_width``, ``max_length``, ...).

The layout is what makes persistence possible: ``repro.store`` writes
one buffer per manifest entry next to a JSON copy of the layout, and
reloading is a dtype/shape-checked ``np.load`` per entry — the
:class:`~repro.index.fragment_index.FragmentIndex` view is agnostic to
whether the arrays it wires up are heap-allocated or ``np.memmap``
backed.  ``SCHEMA`` is bumped on breaking shape changes; readers reject
unknown versions rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import IndexStoreError

#: schema identifier for one shard's flat-array layout; bump the
#: trailing integer on breaking changes to the array set or semantics
SCHEMA = "repro.fragment_index/1"

#: schema identifier for one m/z *partition* of the out-of-core store
#: (``repro.store.partitioned``): a mass-contiguous slice of the
#: precursor-major span set, with hit-emission columns instead of the
#: flat-position span->row maps (``rows_for`` is never called on a
#: partition — candidate selection is a searchsorted on ``row_mass``).
PARTITION_SCHEMA = "repro.fragment_index_partition/1"

#: arrays holding the shard's own ProteinDatabase buffers — saved with
#: the index so a loaded shard needs nothing beyond the store directory
SHARD_ARRAYS = ("shard_residues", "shard_offsets", "shard_ids")

#: every array a full-shard layout must describe, in canonical order
ARRAY_NAMES = SHARD_ARRAYS + (
    # precursor-major row metadata
    "row_length",
    "prefix_row",
    "suffix_row",
    "group_pos",
    # per-length fragment matrices, flattened (see fragment_index._wire)
    "group_lengths",
    "group_row_splits",
    "group_rows",
    "group_ladder",
    "group_b",
    "group_y",
    # b+y ladder posting list (shared-peaks counting)
    "ladder_key",
    "ladder_mz",
    "ladder_row",
    "ladder_bin_start",
    # series-tagged posting list (per-series matched intensity)
    "series_key",
    "series_mz",
    "series_row",
    "series_tag",
    "series_bin_start",
)

#: every array a partition layout describes once decoded.  ``row_*``
#: columns carry what hit emission needs (protein id, span bounds, the
#: exact float64 span mass candidate windows select on); the shard
#: buffers and prefix/suffix maps are absent by design.
PARTITION_ARRAY_NAMES = (
    "row_length",
    "row_protein",
    "row_start",
    "row_stop",
    "row_mass",
    "group_pos",
    "group_lengths",
    "group_row_splits",
    "group_rows",
    "group_ladder",
    "group_b",
    "group_y",
    "ladder_key",
    "ladder_mz",
    "ladder_row",
    "ladder_bin_start",
    "series_key",
    "series_mz",
    "series_row",
    "series_tag",
    "series_bin_start",
)

#: the subset of partition arrays that is actually persisted in the
#: compressed blob.  Posting rows and bin-start tables are derived at
#: decode time from the keys alone (``row = key % (num_rows + 1)``,
#: ``bin_start`` by one searchsorted over the key's bin component), so
#: storing them would only inflate the blob.
PARTITION_STORED_ARRAYS = tuple(
    name
    for name in PARTITION_ARRAY_NAMES
    if name
    not in ("ladder_row", "ladder_bin_start", "series_row", "series_bin_start")
)

#: layout schema -> required decoded-array set
SCHEMA_ARRAYS = {
    SCHEMA: ARRAY_NAMES,
    PARTITION_SCHEMA: PARTITION_ARRAY_NAMES,
}


@dataclass(frozen=True)
class ArraySpec:
    """Manifest entry for one named flat buffer."""

    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        import numpy as np

        count = 1
        for dim in self.shape:
            count *= int(dim)
        return int(count * np.dtype(self.dtype).itemsize)

    def to_dict(self) -> Dict[str, Any]:
        return {"dtype": self.dtype, "shape": list(self.shape)}

    @classmethod
    def from_dict(cls, payload: Any, name: str = "?") -> "ArraySpec":
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("dtype"), str)
            or not isinstance(payload.get("shape"), list)
        ):
            raise IndexStoreError(f"malformed array spec for {name!r}: {payload!r}")
        return cls(payload["dtype"], tuple(int(d) for d in payload["shape"]))


@dataclass(frozen=True)
class IndexLayout:
    """One shard's complete flat-array schema + build parameters.

    Everything a reader needs to rebuild a working
    :class:`~repro.index.fragment_index.FragmentIndex` view from raw
    buffers, and everything a writer needs to validate that a directory
    of buffers is complete and untruncated.
    """

    num_rows: int
    max_length: int
    bin_width: float
    num_fragments: int
    fragment_tolerance: float
    monoisotopic: bool
    arrays: Dict[str, ArraySpec] = field(default_factory=dict)
    schema: str = SCHEMA

    @property
    def nbytes(self) -> int:
        """Total bytes of every manifest array (what a full load maps)."""
        return sum(spec.nbytes for spec in self.arrays.values())

    @property
    def index_nbytes(self) -> int:
        """Bytes of the index proper (manifest minus the shard buffers)."""
        return sum(
            spec.nbytes
            for name, spec in self.arrays.items()
            if name not in SHARD_ARRAYS
        )

    @property
    def shard_nbytes(self) -> int:
        """Bytes of the shard's own transportable buffers (residues,
        offsets, ids) — what the replicated-transport baseline would ship
        per task."""
        return sum(
            spec.nbytes for name, spec in self.arrays.items() if name in SHARD_ARRAYS
        )

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "num_rows": self.num_rows,
            "max_length": self.max_length,
            "bin_width": self.bin_width,
            "num_fragments": self.num_fragments,
            "fragment_tolerance": self.fragment_tolerance,
            "monoisotopic": self.monoisotopic,
            "arrays": {name: spec.to_dict() for name, spec in self.arrays.items()},
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "IndexLayout":
        """Parse + validate a layout; raises IndexStoreError on problems."""
        if not isinstance(payload, dict):
            raise IndexStoreError("index layout is not a JSON object")
        schema = payload.get("schema")
        if not isinstance(schema, str) or not schema.startswith(
            ("repro.fragment_index/", "repro.fragment_index_partition/")
        ):
            raise IndexStoreError(f"unrecognized index layout schema {schema!r}")
        if schema not in SCHEMA_ARRAYS:
            raise IndexStoreError(
                f"unsupported index layout schema {schema!r} "
                f"(this build reads {sorted(SCHEMA_ARRAYS)})"
            )
        try:
            arrays = {
                name: ArraySpec.from_dict(spec, name)
                for name, spec in payload["arrays"].items()
            }
            layout = cls(
                num_rows=int(payload["num_rows"]),
                max_length=int(payload["max_length"]),
                bin_width=float(payload["bin_width"]),
                num_fragments=int(payload["num_fragments"]),
                fragment_tolerance=float(payload["fragment_tolerance"]),
                monoisotopic=bool(payload["monoisotopic"]),
                arrays=arrays,
                schema=schema,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexStoreError(f"malformed index layout: {exc!r}") from None
        missing = [
            name for name in SCHEMA_ARRAYS[schema] if name not in arrays
        ]
        if missing:
            raise IndexStoreError(f"index layout is missing arrays {missing}")
        return layout

    # -- validation ------------------------------------------------------

    def check_arrays(self, arrays: Mapping[str, Any]) -> List[str]:
        """Dtype/shape-check loaded ``arrays`` against the manifest.

        Returns a list of problems (empty == valid); used by the store
        to reject truncated or swapped buffers instead of serving
        silently wrong postings.
        """
        problems = []
        for name in SCHEMA_ARRAYS.get(self.schema, ARRAY_NAMES):
            if name not in arrays:
                problems.append(f"missing array {name!r}")
                continue
            arr = arrays[name]
            spec = self.arrays[name]
            if str(arr.dtype) != spec.dtype:
                problems.append(
                    f"array {name!r} has dtype {arr.dtype}, manifest says {spec.dtype}"
                )
            if tuple(arr.shape) != spec.shape:
                problems.append(
                    f"array {name!r} has shape {tuple(arr.shape)}, "
                    f"manifest says {spec.shape}"
                )
        return problems
