"""Shard-resident fragment-ion index (HiCOPS-style precomputation)."""

from repro.index.fragment_index import BuiltIndex, FragmentIndex, IndexBuilder
from repro.index.layout import ArraySpec, IndexLayout

__all__ = ["ArraySpec", "BuiltIndex", "FragmentIndex", "IndexBuilder", "IndexLayout"]
