"""Shard-resident fragment-ion index (HiCOPS-style precomputation)."""

from repro.index.fragment_index import FragmentIndex

__all__ = ["FragmentIndex"]
