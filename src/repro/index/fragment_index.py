"""Shard-resident fragment-ion index.

The scoring hot path regenerates theoretical fragment arrays for every
(query, candidate) pair, even though a shard's candidate spans — and
therefore their fragment m/z values — never change.  Following the
HiCOPS observation that a precomputed fragment-ion index amortized over
all queries is the decisive optimization for large-scale MS search, this
module enumerates a shard's candidate spans *once*, generates every
fragment m/z with the existing batched kernels, and stores two
structures:

* **per-length fragment matrices** — the sorted b+y ladder and the
  separate b / y fragment matrices for every indexed span, cached so
  scorers that need whole rows (xcorr binning, likelihood models) gather
  instead of recomputing; and
* **CSR-style posting lists** — all fragments sorted by
  ``(m/z bin, candidate row)`` with a combined integer key, so "which
  candidates explain this observed peak" is a pair of vectorized binary
  searches restricted to the query's candidate-row range.

Rows are *precursor-major*: spans are sorted by unmodified span mass, so
a query's candidate set occupies one contiguous row range and posting
probes never touch candidates outside the query's mass window.

Builder/view split
------------------
Construction and consumption are separate types:

* :class:`IndexBuilder` is pure construction: it turns a shard into a
  :class:`BuiltIndex` — a schema-versioned
  :class:`~repro.index.layout.IndexLayout` descriptor plus a dict of
  named, contiguous flat arrays (every matrix flattened to a 1-D
  buffer).  Nothing in the built state is an object graph, which is
  what makes zero-copy persistence possible (see :mod:`repro.store`).
* :class:`FragmentIndex` is a *read-only view* wired over such arrays.
  It is agnostic to their backing: the heap arrays a fresh build
  produces and the ``np.memmap`` arrays ``repro.store.open_index``
  returns serve bit-for-bit identical scores.  The legacy constructor
  signature (``FragmentIndex(shard, ...)``) still builds in-process by
  delegating to :class:`IndexBuilder`.

Exactness contract
------------------
Every value served from the index is produced by the same batched
kernels the direct :class:`~repro.candidates.batch.CandidateBatch` path
runs per query, and every probe evaluates the same match predicate
(``p - tol <= f <= p + tol`` on identically-computed floats), so
index-served scores are bitwise identical to ``batch_scores`` — the
property tests in ``tests/property/test_prop_index.py`` and
``tests/property/test_prop_persist.py`` enforce it for heap- and
memmap-backed views alike.

Coverage is bounded: only unmodified spans with
``2 <= length <= max_length`` are indexed (indexing *all* prefixes and
suffixes is O(sum of squared sequence lengths) memory).  Spans outside
that envelope — PTM tiers, very long spans — report row ``-1`` from
:meth:`FragmentIndex.rows_for` and flow through the direct batch path;
the searcher merges the two score streams in span order, so hits are
identical with the index on or off by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.candidates.mass_index import CandidateSpans, MassIndex
from repro.chem.amino_acids import mass_table
from repro.chem.protein import ProteinDatabase
from repro.errors import IndexStoreError
from repro.index.layout import PARTITION_SCHEMA, ArraySpec, IndexLayout
from repro.spectra.binning import row_segment_sums
from repro.spectra.theoretical import IonSeries, by_ion_ladder_rows, fragment_mz_rows

#: series codes stored in the b/y posting list
_SERIES_CODE = {"b": 0, "y": 1}


def _ragged_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + l)`` for each (start, length) pair."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    prev = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    ramp = np.arange(total, dtype=np.int64) - np.repeat(prev, lengths)
    return np.repeat(starts, lengths) + ramp


def _bisect_segments(
    values: np.ndarray, lo: np.ndarray, hi: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Vectorized left-bisection of ``targets[i]`` within ``values[lo[i]:hi[i]]``.

    Equivalent to ``lo[i] + np.searchsorted(values[lo[i]:hi[i]], targets[i],
    side="left")`` for each ``i``, but all bisections advance in lockstep —
    ``O(log(max segment))`` numpy passes instead of one Python-level
    ``searchsorted`` per segment, and each pass touches a short segment
    rather than the full ``values`` array.
    """
    lo = lo.copy()
    hi = hi.copy()
    if not len(lo):
        return lo
    # branchless lockstep for exactly ceil(log2(max segment + 1)) rounds:
    # finished lanes keep lo == hi (their mid gather is clamped and the
    # update masked out), which benchmarks ~2x faster than compacting
    # the active set each round.
    for _ in range(int(int((hi - lo).max()).bit_length())):
        active = lo < hi
        mid = (lo + hi) >> 1
        less = active & (values.take(mid, mode="clip") < targets)
        lo = np.where(less, mid + 1, lo)
        hi = np.where(active & ~less, mid, hi)
    return lo


@dataclass(frozen=True)
class _PostingList:
    """Fragments sorted by the combined ``bin * (num_rows + 1) + row`` key.

    Sorting by the combined key keeps each bin's postings ordered by
    candidate row, so restricting a probe to the query's row range
    ``[r0, r1)`` is one extra pair of binary searches instead of a
    post-hoc filter over every posting near the peak.
    """

    key: np.ndarray  # int64, sorted ascending
    mz: np.ndarray  # float64 fragment m/z, aligned to key
    row: np.ndarray  # int64 candidate row, aligned to key
    series: Optional[np.ndarray]  # uint8 series code, or None (ladder list)
    #: direct bin → posting-offset table: postings of bin ``b`` occupy
    #: ``key[bin_start[b]:bin_start[b + 1]]``.  Lets cohort-scale probes
    #: skip the key binary search entirely and bisect only each bin's own
    #: row run (:func:`_bisect_segments`).
    bin_start: np.ndarray = None  # type: ignore[assignment]

    @property
    def nbytes(self) -> int:
        total = self.key.nbytes + self.mz.nbytes + self.row.nbytes
        if self.series is not None:
            total += self.series.nbytes
        if self.bin_start is not None:
            total += self.bin_start.nbytes
        return int(total)


@dataclass(frozen=True)
class _LengthGroup:
    """Cached fragment matrices for all indexed spans of one length.

    The matrices are 2-D *views* into the flat ``group_ladder`` /
    ``group_b`` / ``group_y`` buffers — zero copy whether those buffers
    live on the heap or in a memory map.
    """

    length: int
    rows: np.ndarray  # global row ids, ascending
    ladder: np.ndarray  # (n, 2 * (L - 1)) sorted b+y ladder
    b: np.ndarray  # (n, L - 1) b-series fragment m/z
    y: np.ndarray  # (n, L - 1) y-series fragment m/z

    @property
    def nbytes(self) -> int:
        return int(
            self.rows.nbytes + self.ladder.nbytes + self.b.nbytes + self.y.nbytes
        )


def _build_postings(
    parts, bin_width: float, num_rows: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray], np.ndarray]:
    """Flatten (matrix, rows, series) parts into sorted posting arrays.

    Returns ``(key, mz, row, series, bin_start)``; ``series`` is None
    for the untagged ladder list.
    """
    parts = [(m, r, s) for m, r, s in parts if m.size]
    if not parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0), empty, None, np.zeros(1, dtype=np.int64)
    mz = np.concatenate([m.ravel() for m, _r, _s in parts])
    row = np.concatenate([np.repeat(r, m.shape[1]) for m, r, _s in parts])
    tagged = parts[0][2] is not None
    series = (
        np.concatenate([np.full(m.size, s, dtype=np.uint8) for m, _r, s in parts])
        if tagged
        else None
    )
    bins = (mz / bin_width).astype(np.int64)
    key = bins * (num_rows + 1) + row
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    bins_sorted = sorted_key // (num_rows + 1)
    num_bins = int(bins_sorted[-1]) + 1
    bin_start = np.searchsorted(bins_sorted, np.arange(num_bins + 1))
    return (
        sorted_key,
        mz[order],
        row[order],
        series[order] if series is not None else None,
        bin_start,
    )


@dataclass
class BuiltIndex:
    """One shard's freshly built index state: layout + named flat arrays.

    ``arrays`` includes the shard's own buffers (``shard_residues`` /
    ``shard_offsets`` / ``shard_ids``) so a persisted index directory is
    self-contained: a loader needs nothing beyond the directory to serve
    searches.  ``view()`` wires a read-only :class:`FragmentIndex` over
    the arrays.
    """

    layout: IndexLayout
    arrays: Dict[str, np.ndarray]
    shard: ProteinDatabase
    build_time: float

    def view(self) -> "FragmentIndex":
        index = FragmentIndex.from_arrays(self.layout, self.arrays, shard=self.shard)
        index.build_time = self.build_time
        return index


class IndexBuilder:
    """Pure construction: a shard in, schema-versioned flat arrays out.

    Holds only build parameters; :meth:`build` has no side effects on
    the builder, so one builder can be reused across shards (the store
    builds every shard of a partition through a single instance).
    """

    def __init__(
        self,
        *,
        fragment_tolerance: float = 0.5,
        max_length: int = 48,
        monoisotopic: bool = True,
    ):
        if fragment_tolerance <= 0:
            raise ValueError(
                f"fragment_tolerance must be > 0, got {fragment_tolerance}"
            )
        if max_length < 2:
            raise ValueError(f"max_length must be >= 2, got {max_length}")
        self.fragment_tolerance = float(fragment_tolerance)
        self.max_length = int(max_length)
        self.monoisotopic = bool(monoisotopic)
        # Bin width covers a full tolerance window so a probe at build
        # tolerance spans at most two bins; probes at other tolerances
        # remain exact (they scan however many bins the window covers).
        self.bin_width = max(2.0 * self.fragment_tolerance, 0.25)

    def build(
        self, shard: ProteinDatabase, mass_index: Optional[MassIndex] = None
    ) -> BuiltIndex:
        """Enumerate, fragment, and sort one shard into flat arrays."""
        build_start = time.perf_counter()
        index = mass_index if mass_index is not None else MassIndex(shard)

        spans = index.candidates_in_window(0.0, np.inf)
        lengths = spans.lengths
        keep = (lengths >= 2) & (lengths <= self.max_length)
        if not np.all(keep):
            spans = spans.take(keep)
        # Precursor-major row order: a query window maps to one contiguous
        # row range, which the posting-probe row restriction relies on.
        spans = spans.take(np.argsort(spans.mass, kind="stable"))
        num_rows = len(spans)
        row_length = np.ascontiguousarray(spans.lengths, dtype=np.int64)

        # Span -> row maps keyed on flat residue position: a prefix span
        # is identified by the position it ends at, a suffix span by the
        # position it starts at (full-length spans are enumerated once,
        # as prefixes, matching CandidateGenerator's span sets).
        n_flat = len(shard.residues)
        prefix_row = np.full(n_flat, -1, dtype=np.int64)
        suffix_row = np.full(n_flat, -1, dtype=np.int64)
        off = shard.offsets[spans.seq_index]
        rows = np.arange(num_rows, dtype=np.int64)
        is_prefix = spans.start == 0
        pre = np.nonzero(is_prefix)[0]
        suf = np.nonzero(~is_prefix)[0]
        prefix_row[off[pre] + spans.stop[pre] - 1] = rows[pre]
        suffix_row[off[suf] + spans.start[suf]] = rows[suf]

        arrays, num_fragments = self._fragment_arrays(shard, spans)
        arrays.update(
            {
                "shard_residues": shard.residues,
                "shard_offsets": shard.offsets,
                "shard_ids": shard.ids,
                "prefix_row": prefix_row,
                "suffix_row": suffix_row,
            }
        )
        layout = IndexLayout(
            num_rows=num_rows,
            max_length=self.max_length,
            bin_width=self.bin_width,
            num_fragments=num_fragments,
            fragment_tolerance=self.fragment_tolerance,
            monoisotopic=self.monoisotopic,
            arrays={
                name: ArraySpec(str(a.dtype), tuple(a.shape))
                for name, a in arrays.items()
            },
        )
        return BuiltIndex(
            layout=layout,
            arrays=arrays,
            shard=shard,
            build_time=time.perf_counter() - build_start,
        )

    def build_partition(
        self, shard: ProteinDatabase, spans: CandidateSpans
    ) -> Tuple[IndexLayout, Dict[str, np.ndarray]]:
        """Build one m/z partition from a mass-sorted span slice.

        ``spans`` must be a contiguous slice of the full precursor-major
        (mass-sorted, length-filtered) span set — exactly what
        :func:`repro.store.partitioned.save_partitioned_index` cuts.
        Row ids are partition-local; the fragment m/z values, posting
        predicates, and per-row scores are byte-for-byte what the same
        rows produce inside a whole-shard build, because both run the
        identical kernels on the identical residue windows.

        Instead of the flat-position span->row maps (which need O(shard)
        memory and are only used by :meth:`FragmentIndex.rows_for`), a
        partition stores hit-emission columns: ``row_protein`` /
        ``row_start`` / ``row_stop`` / ``row_mass``.
        """
        arrays, num_fragments = self._fragment_arrays(shard, spans)
        arrays.update(
            {
                "row_protein": np.ascontiguousarray(
                    shard.ids[spans.seq_index], dtype=np.int64
                ),
                "row_start": np.ascontiguousarray(spans.start, dtype=np.int64),
                "row_stop": np.ascontiguousarray(spans.stop, dtype=np.int64),
                "row_mass": np.ascontiguousarray(spans.mass, dtype=np.float64),
            }
        )
        layout = IndexLayout(
            num_rows=len(spans),
            max_length=self.max_length,
            bin_width=self.bin_width,
            num_fragments=num_fragments,
            fragment_tolerance=self.fragment_tolerance,
            monoisotopic=self.monoisotopic,
            arrays={
                name: ArraySpec(str(a.dtype), tuple(a.shape))
                for name, a in arrays.items()
            },
            schema=PARTITION_SCHEMA,
        )
        return layout, arrays

    def _fragment_arrays(
        self, shard: ProteinDatabase, spans: CandidateSpans
    ) -> Tuple[Dict[str, np.ndarray], int]:
        """Fragment matrices + posting lists for a row-ordered span set.

        The shared core of :meth:`build` (whole shard) and
        :meth:`build_partition` (one mass slice): per-length dense
        matrices generated with the same batched kernels the direct
        scoring path runs per query, flattened into contiguous buffers,
        plus both posting lists keyed on local row ids.
        """
        num_rows = len(spans)
        row_length = np.ascontiguousarray(spans.lengths, dtype=np.int64)
        group_pos = np.empty(num_rows, dtype=np.int64)
        table = mass_table(self.monoisotopic)
        abs_start = shard.offsets[spans.seq_index] + spans.start
        unique_lengths = np.unique(row_length) if num_rows else np.empty(0, np.int64)
        group_rows: List[np.ndarray] = []
        ladders: List[np.ndarray] = []
        b_mats: List[np.ndarray] = []
        y_mats: List[np.ndarray] = []
        for length in unique_lengths:
            length = int(length)
            grp_rows = np.nonzero(row_length == length)[0]
            mat = shard.residues[abs_start[grp_rows][:, None] + np.arange(length)]
            mass_rows = table[mat]
            group_rows.append(grp_rows)
            ladders.append(by_ion_ladder_rows(mass_rows))
            b_mats.append(fragment_mz_rows(mass_rows, IonSeries.B))
            y_mats.append(fragment_mz_rows(mass_rows, IonSeries.Y))
            group_pos[grp_rows] = np.arange(len(grp_rows), dtype=np.int64)

        lad_key, lad_mz, lad_row, _lad_series, lad_bin_start = _build_postings(
            [(m, r, None) for m, r in zip(ladders, group_rows)],
            self.bin_width,
            num_rows,
        )
        ser_key, ser_mz, ser_row, ser_tag, ser_bin_start = _build_postings(
            [(m, r, _SERIES_CODE["b"]) for m, r in zip(b_mats, group_rows)]
            + [(m, r, _SERIES_CODE["y"]) for m, r in zip(y_mats, group_rows)],
            self.bin_width,
            num_rows,
        )
        if ser_tag is None:  # empty shard: keep the tag column materialized
            ser_tag = np.empty(0, dtype=np.uint8)

        def _cat(mats: List[np.ndarray], dtype) -> np.ndarray:
            if not mats:
                return np.empty(0, dtype=dtype)
            return np.concatenate([np.ascontiguousarray(m).ravel() for m in mats])

        counts = np.array([len(r) for r in group_rows], dtype=np.int64)
        arrays: Dict[str, np.ndarray] = {
            "row_length": row_length,
            "group_pos": group_pos,
            "group_lengths": np.ascontiguousarray(unique_lengths, dtype=np.int64),
            "group_row_splits": np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64),
            "group_rows": _cat(group_rows, np.int64),
            "group_ladder": _cat(ladders, np.float64),
            "group_b": _cat(b_mats, np.float64),
            "group_y": _cat(y_mats, np.float64),
            "ladder_key": lad_key,
            "ladder_mz": lad_mz,
            "ladder_row": lad_row,
            "ladder_bin_start": lad_bin_start,
            "series_key": ser_key,
            "series_mz": ser_mz,
            "series_row": ser_row,
            "series_tag": ser_tag,
            "series_bin_start": ser_bin_start,
        }
        return arrays, len(lad_mz) + len(ser_mz)


class FragmentIndex:
    """Read-only view over one shard's flat index arrays.

    ``FragmentIndex(shard, ...)`` builds in-process (delegating to
    :class:`IndexBuilder`); :meth:`from_arrays` wires a view over
    existing arrays — heap or memmap — without building anything.
    """

    def __init__(
        self,
        shard: ProteinDatabase,
        mass_index: Optional[MassIndex] = None,
        *,
        fragment_tolerance: float = 0.5,
        max_length: int = 48,
        monoisotopic: bool = True,
    ):
        built = IndexBuilder(
            fragment_tolerance=fragment_tolerance,
            max_length=max_length,
            monoisotopic=monoisotopic,
        ).build(shard, mass_index)
        self._wire(shard, built.layout, built.arrays)
        self.build_time = built.build_time

    @classmethod
    def from_arrays(
        cls,
        layout: IndexLayout,
        arrays: Dict[str, np.ndarray],
        shard: Optional[ProteinDatabase] = None,
    ) -> "FragmentIndex":
        """Wire a view over existing arrays; no construction happens.

        ``shard`` defaults to a ProteinDatabase rebuilt zero-copy from
        the layout's own ``shard_*`` buffers, so a persisted directory
        is self-contained.  Partition views (``PARTITION_SCHEMA``) carry
        no shard buffers; callers may pass the database explicitly, but
        scoring never touches it — every kernel reads only the decoded
        arrays.  ``build_time`` is 0: a loaded view never paid a build.
        """
        if shard is None and "shard_residues" in arrays:
            shard = ProteinDatabase.from_buffers(
                arrays["shard_residues"], arrays["shard_offsets"], arrays["shard_ids"]
            )
        self = cls.__new__(cls)
        self._wire(shard, layout, arrays)
        self.build_time = 0.0
        return self

    def _wire(
        self,
        shard: ProteinDatabase,
        layout: IndexLayout,
        arrays: Dict[str, np.ndarray],
    ) -> None:
        """Attach views over ``arrays``; shared by build and load paths."""
        self.shard = shard
        self.layout = layout
        self.arrays = arrays
        self.num_rows = layout.num_rows
        self.max_length = layout.max_length
        self.bin_width = layout.bin_width
        self.num_fragments = layout.num_fragments
        self.row_length = arrays["row_length"]
        # Partition views carry hit-emission columns instead of the
        # flat-position span->row maps; ``rows_for`` guards on their
        # absence (streamed scoring selects rows by searchsorted on
        # ``row_mass``, never via rows_for).
        self._prefix_row = arrays.get("prefix_row")
        self._suffix_row = arrays.get("suffix_row")
        self._group_pos = arrays["group_pos"]
        self._groups: Dict[int, _LengthGroup] = {}
        g_len = arrays["group_lengths"]
        splits = arrays["group_row_splits"]
        flat_rows = arrays["group_rows"]
        lad, b_flat, y_flat = (
            arrays["group_ladder"],
            arrays["group_b"],
            arrays["group_y"],
        )
        lad_off = ser_off = 0
        for g in range(len(g_len)):
            length = int(g_len[g])
            lo, hi = int(splits[g]), int(splits[g + 1])
            n, w = hi - lo, length - 1
            self._groups[length] = _LengthGroup(
                length=length,
                rows=flat_rows[lo:hi],
                ladder=lad[lad_off : lad_off + n * 2 * w].reshape(n, 2 * w),
                b=b_flat[ser_off : ser_off + n * w].reshape(n, w),
                y=y_flat[ser_off : ser_off + n * w].reshape(n, w),
            )
            lad_off += n * 2 * w
            ser_off += n * w
        self._ladder_postings = _PostingList(
            arrays["ladder_key"],
            arrays["ladder_mz"],
            arrays["ladder_row"],
            None,
            arrays["ladder_bin_start"],
        )
        self._series_postings = _PostingList(
            arrays["series_key"],
            arrays["series_mz"],
            arrays["series_row"],
            arrays["series_tag"],
            arrays["series_bin_start"],
        )
        self.build_time = 0.0

    @property
    def nbytes(self) -> int:
        """Index memory footprint (maps + matrices + posting lists).

        Excludes the shard's own buffers, matching the historical
        accounting (the shard is charged separately by whoever holds it).
        """
        return int(self.layout.index_nbytes)

    # -- span -> row mapping ---------------------------------------------

    def rows_for(self, spans: CandidateSpans) -> np.ndarray:
        """Index row of each span, or ``-1`` where the index holds no row.

        PTM-tier spans (``mod_delta != 0``) and spans with length outside
        ``[2, max_length]`` are not indexed; callers route them through
        the direct batch path.
        """
        n = len(spans)
        if self._prefix_row is None:
            raise IndexStoreError(
                "rows_for is not available on a partition view "
                f"(schema {self.layout.schema!r})"
            )
        if n == 0 or self.num_rows == 0:
            return np.full(n, -1, dtype=np.int64)
        off = self.shard.offsets[spans.seq_index]
        is_prefix = spans.start == 0
        pos = np.where(is_prefix, off + spans.stop - 1, off + spans.start)
        found = np.where(is_prefix, self._prefix_row[pos], self._suffix_row[pos])
        return np.where(spans.mod_delta == 0.0, found, -1)

    # -- cached-matrix access (xcorr / likelihood) -----------------------

    def iter_row_groups(
        self, rows: np.ndarray
    ) -> Iterator[Tuple[np.ndarray, _LengthGroup, np.ndarray]]:
        """Group ``rows`` by candidate length for dense-matrix gathers.

        Yields ``(positions, group, local)`` where ``positions`` indexes
        into ``rows`` and ``group.ladder[local]`` (etc.) gathers the
        cached matrices for exactly those rows, in ``rows`` order.
        """
        lengths = self.row_length[rows]
        for length in np.unique(lengths):
            length = int(length)
            positions = np.nonzero(lengths == length)[0]
            group = self._groups[length]
            yield positions, group, self._group_pos[rows[positions]]

    # -- posting probes (shared_peaks / hyperscore) ----------------------

    def _probe(
        self,
        postings: _PostingList,
        peaks_mz: np.ndarray,
        tolerance: float,
        rows: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """All exact (candidate, peak) fragment matches restricted to ``rows``.

        Returns ``(out_pos, peak_idx, series)`` triples — one entry per
        matching *posting* (a candidate appears once per matching
        fragment), with ``out_pos`` indexing into the ``rows`` argument.
        The match predicate is the scalar one:
        ``peak - tol <= fragment <= peak + tol``.
        """
        none_series = postings.series is not None
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint8) if none_series else None,
        )
        if len(rows) == 0 or len(peaks_mz) == 0 or len(postings.key) == 0:
            return empty
        r0 = int(rows.min())
        r1 = int(rows.max()) + 1
        sel = np.full(r1 - r0, -1, dtype=np.int64)
        sel[rows - r0] = np.arange(len(rows), dtype=np.int64)

        row_g, owner, series = self._probe_range(postings, peaks_mz, tolerance, r0, r1)
        out_pos = sel[row_g - r0]
        hit = out_pos >= 0
        return (
            out_pos[hit],
            owner[hit],
            series[hit] if none_series else None,
        )

    def _probe_range(
        self,
        postings: _PostingList,
        peaks_mz: np.ndarray,
        tolerance: float,
        r0: int,
        r1: int,
        row_lo: Optional[np.ndarray] = None,
        row_hi: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Exact fragment matches with rows restricted to ``[r0, r1)``.

        The binning/searchsorted core shared by the per-query probe
        (which remaps rows through its selection table) and the flat
        cohort probe.  Returns ``(row, peak_idx, series)`` with *global*
        index rows; the match predicate is the scalar one.

        ``row_lo``/``row_hi`` optionally narrow the row range *per peak*
        (half-open, same binned-key trick as the scalar bounds): the
        cohort probe passes each peak's own member row range so a wide
        cohort union does not multiply the raw match volume by the
        cohort size.  Matches outside a member's row *set* but inside
        its range are still produced, exactly as in the scalar case, and
        are removed by the callers' selection tables.
        """
        none_series = postings.series is not None
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint8) if none_series else None,
        )
        num_rows = self.num_rows
        pmin = peaks_mz - tolerance
        pmax = peaks_mz + tolerance
        b0 = np.maximum(np.floor(pmin / self.bin_width).astype(np.int64), 0)
        b1 = np.floor(pmax / self.bin_width).astype(np.int64)
        span = b1 - b0
        peak_ids = np.arange(len(peaks_mz), dtype=np.int64)
        if row_lo is not None and postings.bin_start is not None and len(span):
            # Cohort-scale probe: go through the direct bin → offset table
            # instead of the per-delta key searches.  Positions are
            # identical: within bin b the keys are
            # ``b * (num_rows + 1) + row`` with row ascending, so the key
            # search for ``b * (num_rows + 1) + t`` is ``bin_start[b]``
            # plus the left-bisection of ``t`` in that bin's row run;
            # bins past the table's end hold no postings and contribute
            # nothing, exactly like both key searches landing at
            # ``len(key)``.
            bin_start = postings.bin_start
            num_bins = len(bin_start) - 1
            counts = span + 1  # b1 >= b0 always: pmax > 0 and b0 clipped at 0
            all_bins = _ragged_arange(b0, counts)
            owners = np.repeat(peak_ids, counts)
            valid = all_bins < num_bins
            if not valid.all():
                all_bins = all_bins[valid]
                owners = owners[valid]
            if len(all_bins) == 0:
                return empty
            seg_lo = bin_start[all_bins]
            seg_hi = bin_start[all_bins + 1]
            m = len(all_bins)
            pos = _bisect_segments(
                postings.row,
                np.concatenate((seg_lo, seg_lo)),
                np.concatenate((seg_hi, seg_hi)),
                np.concatenate((row_lo[owners], row_hi[owners])),
            )
            lens = pos[m:] - pos[:m]
            flat = _ragged_arange(pos[:m], lens)
            if len(flat) == 0:
                return empty
            owner = np.repeat(owners, lens)
            mz = postings.mz[flat]
            keep = (mz >= pmin[owner]) & (mz <= pmax[owner])
            flat = flat[keep]
            owner = owner[keep]
            return (
                postings.row[flat],
                owner,
                postings.series[flat] if none_series else None,
            )
        flat_parts = []
        owner_parts = []
        max_span = int(span.max()) if len(span) else -1
        for delta in range(max_span + 1):
            covered = span >= delta
            if not covered.any():
                break
            bins = b0[covered] + delta
            lo_key = bins * (num_rows + 1) + (r0 if row_lo is None else row_lo[covered])
            hi_key = bins * (num_rows + 1) + (r1 if row_hi is None else row_hi[covered])
            lo = np.searchsorted(postings.key, lo_key, side="left")
            hi = np.searchsorted(postings.key, hi_key, side="left")
            lens = hi - lo
            flat_parts.append(_ragged_arange(lo, lens))
            owner_parts.append(np.repeat(peak_ids[covered], lens))
        if not flat_parts:
            return empty
        flat = np.concatenate(flat_parts)
        if len(flat) == 0:
            return empty
        owner = np.concatenate(owner_parts)
        mz = postings.mz[flat]
        keep = (mz >= pmin[owner]) & (mz <= pmax[owner])
        flat = flat[keep]
        owner = owner[keep]
        return (
            postings.row[flat],
            owner,
            postings.series[flat] if none_series else None,
        )

    def shared_peak_counts(
        self, observed_mz: np.ndarray, tolerance: float, rows: np.ndarray
    ) -> np.ndarray:
        """Distinct observed peaks matched by each row's b+y ladder.

        Equals ``count_matches_rows(observed_mz, ladder_rows, tolerance)``
        for the same candidates: both count the union of per-fragment
        matched-peak sets under the same predicate.
        """
        pos, peak, _series = self._probe(
            self._ladder_postings, observed_mz, tolerance, rows
        )
        if len(pos) == 0:
            return np.zeros(len(rows), dtype=np.int64)
        num_peaks = len(observed_mz)
        pairs = np.unique(pos * num_peaks + peak)
        return np.bincount(pairs // num_peaks, minlength=len(rows)).astype(np.int64)

    def matched_segments(
        self, observed_mz: np.ndarray, tolerance: float, rows: np.ndarray, series: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Ascending distinct matched-peak indices per row for one series.

        Same ragged ``(flat_idx, row_offsets)`` contract as
        :func:`repro.spectra.binning.matched_peak_segments`, so downstream
        per-row intensity sums reuse ``row_segment_sums`` and stay bitwise
        identical to the direct path.
        """
        n = len(rows)
        pos, peak, tags = self._probe(
            self._series_postings, observed_mz, tolerance, rows
        )
        if len(pos) == 0:
            return np.empty(0, dtype=np.int64), np.zeros(n + 1, dtype=np.int64)
        wanted = tags == _SERIES_CODE[series]
        num_peaks = len(observed_mz)
        # np.unique both dedups (row, peak) pairs hit by several fragments
        # and sorts them (row-major, then peak ascending) — exactly the
        # per-row ascending order the direct segment kernel produces.
        pairs = np.unique(pos[wanted] * num_peaks + peak[wanted])
        counts = np.bincount(pairs // num_peaks, minlength=n)
        row_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return (pairs % num_peaks).astype(np.int64), row_offsets

    def matched_intensity(
        self,
        observed_mz: np.ndarray,
        observed_intensity: np.ndarray,
        tolerance: float,
        rows: np.ndarray,
        series: str,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row matched-peak counts and intensity sums for one series."""
        flat_idx, row_offsets = self.matched_segments(
            observed_mz, tolerance, rows, series
        )
        counts = np.diff(row_offsets).astype(np.int64)
        return counts, row_segment_sums(observed_intensity, flat_idx, row_offsets)

    # -- cohort (block) probes -------------------------------------------
    #
    # The candidate-major sweep probes the posting lists once per query
    # cohort: all member peaks in one flat pass over the union row range,
    # results then split per member.  Each member's (row, peak) match set
    # is identical to its own per-query probe — the probe predicate is
    # per-(peak, fragment) and the per-member selection tables are the
    # same — so the counts and (via row-wise segment sums over bitwise-
    # equal gathered values) intensity sums are bitwise identical.

    def _probe_flat(
        self,
        postings: _PostingList,
        batch,
        tolerance: float,
        row_sets,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """All exact matches of a cohort's peaks against its row sets.

        ``batch`` is a :class:`~repro.spectra.spectrum_batch.SpectrumBatch`
        and ``row_sets[k]`` the index rows member ``k`` may match.
        Returns ``(member, out_pos, peak_flat, series)`` per matching
        posting: ``out_pos`` indexes into ``row_sets[member]`` and
        ``peak_flat`` into the batch's flat peak arrays.
        """
        none_series = postings.series is not None
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint8) if none_series else None,
        )
        sizes = np.fromiter((len(r) for r in row_sets), dtype=np.int64, count=len(row_sets))
        if sizes.sum() == 0 or batch.num_peaks == 0 or len(postings.key) == 0:
            return empty
        r0 = int(min(int(r.min()) for r in row_sets if len(r)))
        r1 = int(max(int(r.max()) for r in row_sets if len(r))) + 1
        sel = np.full((len(row_sets), r1 - r0), -1, dtype=np.int64)
        member_lo = np.zeros(len(row_sets), dtype=np.int64)
        member_hi = np.zeros(len(row_sets), dtype=np.int64)
        for k, rows in enumerate(row_sets):
            if len(rows):
                sel[k, rows - r0] = np.arange(len(rows), dtype=np.int64)
                member_lo[k] = int(rows.min())
                member_hi[k] = int(rows.max()) + 1

        # each peak probes only its own member's row range: the cohort
        # union would multiply raw matches by the cohort size, all of
        # them discarded by the sel filter below
        npk = np.diff(batch.offsets)
        row_g, peak_flat, series = self._probe_range(
            postings,
            batch.mz,
            tolerance,
            r0,
            r1,
            row_lo=np.repeat(member_lo, npk),
            row_hi=np.repeat(member_hi, npk),
        )
        if len(row_g) == 0:
            return empty
        member = np.searchsorted(batch.offsets, peak_flat, side="right") - 1
        out_pos = sel[member, row_g - r0]
        hit = out_pos >= 0
        return (
            member[hit],
            out_pos[hit],
            peak_flat[hit],
            series[hit] if none_series else None,
        )

    def _split_pairs(
        self, member, out_pos, peak_flat, batch, sizes
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dedup (member, row, peak) matches into sorted distinct pairs.

        Encodes each match as ``pair_base[member] + out_pos * npk[member]
        + local_peak`` — spectrum-major, then row, then peak — so one
        ``np.unique`` reproduces, member by member, exactly the sorted
        distinct pairs the per-query probes produce.  Returns
        ``(pair_member, pair_row, pair_peak, pair_base, npk)`` with
        ``pair_peak`` member-local.
        """
        npk = np.diff(batch.offsets)
        pair_base = np.concatenate(([0], np.cumsum(sizes * npk)))
        local_peak = peak_flat - batch.offsets[member]
        key = np.unique(pair_base[member] + out_pos * npk[member] + local_peak)
        pair_member = np.searchsorted(pair_base, key, side="right") - 1
        rem = key - pair_base[pair_member]
        return (
            pair_member,
            rem // npk[pair_member],
            rem % npk[pair_member],
            pair_base,
            npk,
        )

    def shared_peak_counts_block(self, batch, tolerance: float, row_sets):
        """Per-member :meth:`shared_peak_counts` from one flat probe."""
        sizes = [len(r) for r in row_sets]
        member, out_pos, peak_flat, _series = self._probe_flat(
            self._ladder_postings, batch, tolerance, row_sets
        )
        if len(member) == 0:
            return [np.zeros(n, dtype=np.int64) for n in sizes]
        pair_member, pair_row, _pk, _base, _npk = self._split_pairs(
            member, out_pos, peak_flat, batch, np.asarray(sizes, dtype=np.int64)
        )
        bounds = np.searchsorted(pair_member, np.arange(len(row_sets) + 1))
        return [
            np.bincount(pair_row[bounds[k] : bounds[k + 1]], minlength=n).astype(np.int64)
            for k, n in enumerate(sizes)
        ]

    def matched_intensity_block(self, batch, tolerance: float, row_sets):
        """Per-member b/y :meth:`matched_intensity` from one flat probe.

        Returns one ``(nb, b_int, ny, y_int)`` tuple per member.  Both
        series come out of a single posting probe; each series' intensity
        sums run through one cohort-wide :func:`row_segment_sums` whose
        per-row gathered values equal the member's own peaks bit for bit.
        """
        sizes = np.fromiter((len(r) for r in row_sets), dtype=np.int64, count=len(row_sets))
        row_base = np.concatenate(([0], np.cumsum(sizes)))
        total_rows = int(row_base[-1])
        member, out_pos, peak_flat, tags = self._probe_flat(
            self._series_postings, batch, tolerance, row_sets
        )
        per_series = {}
        for name, code in _SERIES_CODE.items():
            wanted = tags == code if len(member) else np.empty(0, dtype=bool)
            if not np.any(wanted):
                counts = np.zeros(total_rows, dtype=np.int64)
                sums = np.zeros(total_rows, dtype=np.float64)
            else:
                pair_member, pair_row, pair_peak, _base, _npk = self._split_pairs(
                    member[wanted], out_pos[wanted], peak_flat[wanted], batch, sizes
                )
                grow = row_base[pair_member] + pair_row
                counts = np.bincount(grow, minlength=total_rows).astype(np.int64)
                row_offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
                flat_peak = (batch.offsets[pair_member] + pair_peak).astype(np.int64)
                sums = row_segment_sums(batch.intensity, flat_peak, row_offsets)
            per_series[name] = (counts, sums)
        out = []
        for k in range(len(row_sets)):
            lo, hi = int(row_base[k]), int(row_base[k + 1])
            nb, b_int = per_series["b"]
            ny, y_int = per_series["y"]
            out.append((nb[lo:hi], b_int[lo:hi], ny[lo:hi], y_int[lo:hi]))
        return out

    def score_block(self, scorer, spectra, row_sets):
        """Index-served cohort scoring: dispatch to the scorer's block kernel.

        Scorers with a ``score_index_block`` (posting-served models) get
        the one-probe path; others run their per-query ``score_index``
        member by member — still amortizing the cohort's candidate
        enumeration, and bitwise identical either way.
        """
        impl = getattr(scorer, "score_index_block", None)
        if impl is not None:
            return impl(spectra, self, row_sets)
        return [
            scorer.score_index(spectra.spectra[k], self, np.asarray(rows, dtype=np.int64))
            for k, rows in enumerate(row_sets)
        ]
