"""Per-shard prefix/suffix mass index.

The paper defines candidates as prefixes or suffixes of database
sequences whose mass lies within ``m(q) +/- delta`` (Section II.A).  A
naive enumeration touches every residue of the shard per query; instead
we precompute, once per shard, the masses of *all* prefixes and suffixes
(2N values for N residues) and keep them sorted, so each query's
candidate set is two binary searches plus a gather.

This trades memory for time exactly once per shard: the index occupies a
constant multiple of the shard's size and therefore preserves the
paper's O(N/p) per-rank space bound.  The simulated machine accounts the
index's true ``nbytes`` against the rank's RAM cap, so the accounting is
honest rather than flattering.

Layout
------
Flat position ``k`` (0 <= k < N) of the shard's residue buffer identifies
both:

* the prefix of its sequence ending at ``k`` (inclusive), and
* the suffix of its sequence starting at ``k``.

``seq_of_pos[k]`` maps a flat position back to its sequence index; spans
are then recovered from the shard's offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.chem.amino_acids import mass_table
from repro.chem.protein import ProteinDatabase
from repro.constants import WATER_MASS


@dataclass(frozen=True)
class CandidateSpans:
    """Candidates from one window query, in structure-of-arrays form.

    ``seq_index`` indexes into the *shard* the index was built over;
    ``start``/``stop`` are residue spans within that sequence; ``mass``
    is the unmodified neutral span mass; ``mod_delta`` is the variable
    modification mass applied (0 for unmodified candidates).
    """

    seq_index: np.ndarray  # int64
    start: np.ndarray  # int64
    stop: np.ndarray  # int64
    mass: np.ndarray  # float64
    mod_delta: np.ndarray  # float64

    def __len__(self) -> int:
        return len(self.seq_index)

    def take(self, mask_or_indices: np.ndarray) -> "CandidateSpans":
        """Subset of the spans selected by a boolean mask or index array.

        The single sanctioned way to filter spans — replaces hand-rolled
        five-field boolean gathers.  Order is preserved, which the
        deterministic (mod tier, mass rank) candidate order relies on.
        """
        sel = np.asarray(mask_or_indices)
        return CandidateSpans(
            self.seq_index[sel],
            self.start[sel],
            self.stop[sel],
            self.mass[sel],
            self.mod_delta[sel],
        )

    @property
    def lengths(self) -> np.ndarray:
        """Residue count of each span."""
        return self.stop - self.start

    @staticmethod
    def empty() -> "CandidateSpans":
        z = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return CandidateSpans(z, z, z, f, f)

    @staticmethod
    def concat(parts: list) -> "CandidateSpans":
        parts = [p for p in parts if len(p)]
        if not parts:
            return CandidateSpans.empty()
        return CandidateSpans(
            np.concatenate([p.seq_index for p in parts]),
            np.concatenate([p.start for p in parts]),
            np.concatenate([p.stop for p in parts]),
            np.concatenate([p.mass for p in parts]),
            np.concatenate([p.mod_delta for p in parts]),
        )


class MassIndex:
    """Sorted prefix/suffix mass arrays over one database shard."""

    def __init__(self, shard: ProteinDatabase):
        self.shard = shard
        n = len(shard)
        lengths = shard.lengths
        offsets = shard.offsets
        residue_mass = mass_table()[shard.residues]
        csum = np.concatenate(([0.0], np.cumsum(residue_mass)))

        #: sequence index owning each flat residue position.
        self.seq_of_pos = np.repeat(np.arange(n, dtype=np.int64), lengths)
        pos_offsets = offsets[self.seq_of_pos]  # start offset of owning sequence

        # prefix ending at k (inclusive): residues [off, k] -> csum[k+1] - csum[off]
        prefix_mass = csum[1:] - csum[pos_offsets] + WATER_MASS
        # suffix starting at k: residues [k, off_next) -> csum[off_next] - csum[k]
        next_offsets = offsets[self.seq_of_pos + 1]
        suffix_mass = csum[next_offsets] - csum[:-1] + WATER_MASS

        self._prefix_order = np.argsort(prefix_mass, kind="stable")
        self._prefix_sorted = prefix_mass[self._prefix_order]
        self._suffix_order = np.argsort(suffix_mass, kind="stable")
        self._suffix_sorted = suffix_mass[self._suffix_order]
        self._offsets = offsets
        # Deduplicated suffix arrays: a full-length span (start == 0, i.e.
        # a suffix starting at its sequence's first residue) is reported
        # as a prefix, so enumeration drops it from the suffix side.  The
        # start > 0 filter used to run per window query; hoisting it here
        # makes window enumeration a pure slice of pre-filtered arrays.
        # Stable filtering of a sorted array preserves sorted order and
        # tie order, so slices are bitwise identical to the old per-call
        # filter.  The full arrays above remain for counting, where the
        # duplicate is subtracted via the parent-mass array instead.
        proper = self._suffix_order != offsets[self.seq_of_pos[self._suffix_order]]
        self._suffix_dedup_order = self._suffix_order[proper]
        self._suffix_dedup_sorted = self._suffix_sorted[proper]
        # Sorted whole-sequence masses: a full-length span appears in both
        # the prefix and the suffix arrays; enumeration reports it once
        # (as a prefix), and counting subtracts this array's window count
        # so counts and enumeration sizes agree exactly.
        self._parent_order = np.argsort(shard.parent_masses(), kind="stable")
        self._parent_sorted = shard.parent_masses()[self._parent_order]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the index arrays (excluding the shard itself)."""
        return int(
            self.seq_of_pos.nbytes
            + self._prefix_order.nbytes
            + self._prefix_sorted.nbytes
            + self._suffix_order.nbytes
            + self._suffix_sorted.nbytes
            + self._suffix_dedup_order.nbytes
            + self._suffix_dedup_sorted.nbytes
        )

    # -- window counting (O(log N), used by modeled execution) ----------

    def count_in_window(self, lo: float, hi: float) -> int:
        """Distinct prefix/suffix candidates with mass in ``[lo, hi]``.

        Matches ``len(self.candidates_in_window(lo, hi))`` exactly, in
        O(log N): full-length spans, present in both sorted arrays, are
        subtracted once.
        """
        return int(self.count_many(np.array([lo]), np.array([hi]))[0])

    def count_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`count_in_window` over query arrays."""
        pc = np.searchsorted(self._prefix_sorted, highs, side="right") - np.searchsorted(
            self._prefix_sorted, lows, side="left"
        )
        sc = np.searchsorted(self._suffix_sorted, highs, side="right") - np.searchsorted(
            self._suffix_sorted, lows, side="left"
        )
        fc = np.searchsorted(self._parent_sorted, highs, side="right") - np.searchsorted(
            self._parent_sorted, lows, side="left"
        )
        return (pc + sc - fc).astype(np.int64)

    def presence_counter(self, unit_csum: np.ndarray) -> "PresenceCounter":
        """O(log N) counter of window spans containing >= 1 flagged residue.

        ``unit_csum`` is a length ``N + 1`` cumulative count of a per-residue
        indicator over the shard's flat buffer (e.g. "is a PTM target
        residue").  The returned counter answers, for any mass window, how
        many *distinct* prefix/suffix candidates contain at least one flagged
        residue — exactly ``len(filter(candidates_in_window(lo, hi)))``
        without enumerating any spans.
        """
        pos_offsets = self._offsets[self.seq_of_pos]
        next_offsets = self._offsets[self.seq_of_pos + 1]
        # prefix ending at k covers [off, k]; suffix starting at k covers
        # [k, off_next); a full sequence covers [off, off_next).
        prefix_has = (unit_csum[1:] - unit_csum[pos_offsets]) > 0
        suffix_has = (unit_csum[next_offsets] - unit_csum[:-1]) > 0
        parent_has = (unit_csum[self._offsets[1:]] - unit_csum[self._offsets[:-1]]) > 0
        return PresenceCounter(
            self,
            np.concatenate(([0], np.cumsum(prefix_has[self._prefix_order]))),
            np.concatenate(([0], np.cumsum(suffix_has[self._suffix_order]))),
            np.concatenate(([0], np.cumsum(parent_has[self._parent_order]))),
        )

    # -- window enumeration (used by real execution) ---------------------

    def prefixes_in_window(self, lo: float, hi: float) -> CandidateSpans:
        i0 = np.searchsorted(self._prefix_sorted, lo, side="left")
        i1 = np.searchsorted(self._prefix_sorted, hi, side="right")
        pos = self._prefix_order[i0:i1]
        seq = self.seq_of_pos[pos]
        start = np.zeros(len(pos), dtype=np.int64)
        stop = pos - self._offsets[seq] + 1
        return CandidateSpans(
            seq, start, stop, self._prefix_sorted[i0:i1].copy(), np.zeros(len(pos))
        )

    def suffixes_in_window(self, lo: float, hi: float) -> CandidateSpans:
        i0 = np.searchsorted(self._suffix_sorted, lo, side="left")
        i1 = np.searchsorted(self._suffix_sorted, hi, side="right")
        pos = self._suffix_order[i0:i1]
        seq = self.seq_of_pos[pos]
        start = pos - self._offsets[seq]
        stop = self._offsets[seq + 1] - self._offsets[seq]
        return CandidateSpans(
            seq, start, stop, self._suffix_sorted[i0:i1].copy(), np.zeros(len(pos))
        )

    def candidates_in_window(self, lo: float, hi: float) -> CandidateSpans:
        """All candidates (prefixes then suffixes) with mass in ``[lo, hi]``.

        A full-length span qualifies both as a prefix and as a suffix; it
        is reported once, as a prefix (the pre-deduplicated suffix arrays
        hold only spans with ``start > 0``), so candidate sets contain no
        duplicates.  Empty windows return without touching (or copying)
        any of the index arrays.
        """
        p0 = int(np.searchsorted(self._prefix_sorted, lo, side="left"))
        p1 = int(np.searchsorted(self._prefix_sorted, hi, side="right"))
        s0 = int(np.searchsorted(self._suffix_dedup_sorted, lo, side="left"))
        s1 = int(np.searchsorted(self._suffix_dedup_sorted, hi, side="right"))
        if p1 <= p0 and s1 <= s0:
            return CandidateSpans.empty()
        spans, _num_prefixes = self.sweep_spans(p0, p1, s0, s1)
        return spans

    # -- sweep enumeration (candidate-major search) ----------------------

    def windows_many(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized window boundaries for many queries at once.

        Returns ``(p0, p1, s0, s1)``: per query, the half-open slice
        ``[p0, p1)`` of the sorted prefix array and ``[s0, s1)`` of the
        deduplicated sorted suffix array whose masses lie in
        ``[low, high]`` — the batched replacement for per-query
        ``candidates_in_window`` binary searches.  For query ``q``,
        ``sweep_spans(p0[q], p1[q], s0[q], s1[q])`` enumerates exactly
        ``candidates_in_window(lows[q], highs[q])``.
        """
        p0 = np.searchsorted(self._prefix_sorted, lows, side="left")
        p1 = np.searchsorted(self._prefix_sorted, highs, side="right")
        s0 = np.searchsorted(self._suffix_dedup_sorted, lows, side="left")
        s1 = np.searchsorted(self._suffix_dedup_sorted, highs, side="right")
        return p0, p1, s0, s1

    def sweep_spans(
        self, p0: int, p1: int, s0: int, s1: int
    ) -> Tuple[CandidateSpans, int]:
        """Materialize one candidate block from sorted-array slice bounds.

        Returns ``(spans, num_prefixes)`` where ``spans`` lists the
        prefixes ``[p0, p1)`` followed by the deduplicated suffixes
        ``[s0, s1)``, each in ascending-mass (slice) order.  A cohort of
        queries with overlapping windows enumerates its union block once
        through this method; each member's candidate set is then the pair
        of contiguous sub-slices its own ``windows_many`` bounds select,
        in exactly ``candidates_in_window`` order.
        """
        p0, p1 = int(p0), int(max(p0, p1))
        s0, s1 = int(s0), int(max(s0, s1))
        pos = self._prefix_order[p0:p1]
        seq = self.seq_of_pos[pos]
        prefixes = CandidateSpans(
            seq,
            np.zeros(len(pos), dtype=np.int64),
            pos - self._offsets[seq] + 1,
            self._prefix_sorted[p0:p1].copy(),
            np.zeros(len(pos)),
        )
        pos = self._suffix_dedup_order[s0:s1]
        seq = self.seq_of_pos[pos]
        suffixes = CandidateSpans(
            seq,
            pos - self._offsets[seq],
            self._offsets[seq + 1] - self._offsets[seq],
            self._suffix_dedup_sorted[s0:s1].copy(),
            np.zeros(len(pos)),
        )
        return CandidateSpans.concat([prefixes, suffixes]), len(prefixes)

    def sweep_windows(
        self, lows: np.ndarray, highs: np.ndarray, max_cohort: int
    ) -> Tuple[
        Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        List[Tuple[int, int]],
    ]:
        """One-sweep replacement for per-query window binary searches.

        For queries sorted by window low edge, returns the vectorized
        per-query slice bounds (:meth:`windows_many`) together with the
        cohort partition (:func:`coalesce_windows`): queries whose mass
        windows overlap share one union candidate block, enumerated once
        per cohort via :meth:`sweep_spans`.
        """
        bounds = self.windows_many(lows, highs)
        return bounds, coalesce_windows(lows, highs, max_cohort)


def coalesce_windows(
    lows: np.ndarray, highs: np.ndarray, max_cohort: int
) -> List[Tuple[int, int]]:
    """Partition sorted query windows into overlapping cohorts.

    ``lows`` must be non-decreasing (queries sorted by window low edge).
    Returns half-open index ranges ``[a, b)``; consecutive windows join a
    cohort while the next low edge falls inside the running union of the
    cohort's windows, capped at ``max_cohort`` members so one outlier-wide
    window cannot chain an entire rank's queries into a single block.
    """
    cohorts: List[Tuple[int, int]] = []
    n = len(lows)
    i = 0
    while i < n:
        hi = highs[i]
        j = i + 1
        while j < n and j - i < max_cohort and lows[j] <= hi:
            if highs[j] > hi:
                hi = highs[j]
            j += 1
        cohorts.append((i, j))
        i = j
    return cohorts


class PresenceCounter:
    """Counts flagged candidates per mass window without enumeration.

    Built by :meth:`MassIndex.presence_counter`.  Holds, aligned to the
    index's sorted prefix/suffix/parent mass arrays, cumulative counts of
    spans containing >= 1 flagged residue; a window count is then four
    binary searches and three subtractions.  Full-length spans (present
    in both the prefix and suffix arrays) are subtracted once via the
    parent counts, mirroring :meth:`MassIndex.count_many`.
    """

    __slots__ = ("_index", "_prefix_cnt", "_suffix_cnt", "_parent_cnt")

    def __init__(
        self,
        index: MassIndex,
        prefix_cnt: np.ndarray,
        suffix_cnt: np.ndarray,
        parent_cnt: np.ndarray,
    ):
        self._index = index
        self._prefix_cnt = prefix_cnt
        self._suffix_cnt = suffix_cnt
        self._parent_cnt = parent_cnt

    @property
    def nbytes(self) -> int:
        return int(
            self._prefix_cnt.nbytes + self._suffix_cnt.nbytes + self._parent_cnt.nbytes
        )

    def count_in_window(self, lo: float, hi: float) -> int:
        """Flagged candidates with mass in ``[lo, hi]``, exactly."""
        idx = self._index
        p0 = np.searchsorted(idx._prefix_sorted, lo, side="left")
        p1 = np.searchsorted(idx._prefix_sorted, hi, side="right")
        s0 = np.searchsorted(idx._suffix_sorted, lo, side="left")
        s1 = np.searchsorted(idx._suffix_sorted, hi, side="right")
        f0 = np.searchsorted(idx._parent_sorted, lo, side="left")
        f1 = np.searchsorted(idx._parent_sorted, hi, side="right")
        return int(
            (self._prefix_cnt[p1] - self._prefix_cnt[p0])
            + (self._suffix_cnt[s1] - self._suffix_cnt[s0])
            - (self._parent_cnt[f1] - self._parent_cnt[f0])
        )
