"""Per-shard prefix/suffix mass index.

The paper defines candidates as prefixes or suffixes of database
sequences whose mass lies within ``m(q) +/- delta`` (Section II.A).  A
naive enumeration touches every residue of the shard per query; instead
we precompute, once per shard, the masses of *all* prefixes and suffixes
(2N values for N residues) and keep them sorted, so each query's
candidate set is two binary searches plus a gather.

This trades memory for time exactly once per shard: the index occupies a
constant multiple of the shard's size and therefore preserves the
paper's O(N/p) per-rank space bound.  The simulated machine accounts the
index's true ``nbytes`` against the rank's RAM cap, so the accounting is
honest rather than flattering.

Layout
------
Flat position ``k`` (0 <= k < N) of the shard's residue buffer identifies
both:

* the prefix of its sequence ending at ``k`` (inclusive), and
* the suffix of its sequence starting at ``k``.

``seq_of_pos[k]`` maps a flat position back to its sequence index; spans
are then recovered from the shard's offsets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.amino_acids import mass_table
from repro.chem.protein import ProteinDatabase
from repro.constants import WATER_MASS


@dataclass(frozen=True)
class CandidateSpans:
    """Candidates from one window query, in structure-of-arrays form.

    ``seq_index`` indexes into the *shard* the index was built over;
    ``start``/``stop`` are residue spans within that sequence; ``mass``
    is the unmodified neutral span mass; ``mod_delta`` is the variable
    modification mass applied (0 for unmodified candidates).
    """

    seq_index: np.ndarray  # int64
    start: np.ndarray  # int64
    stop: np.ndarray  # int64
    mass: np.ndarray  # float64
    mod_delta: np.ndarray  # float64

    def __len__(self) -> int:
        return len(self.seq_index)

    @staticmethod
    def empty() -> "CandidateSpans":
        z = np.empty(0, dtype=np.int64)
        f = np.empty(0, dtype=np.float64)
        return CandidateSpans(z, z, z, f, f)

    @staticmethod
    def concat(parts: list) -> "CandidateSpans":
        parts = [p for p in parts if len(p)]
        if not parts:
            return CandidateSpans.empty()
        return CandidateSpans(
            np.concatenate([p.seq_index for p in parts]),
            np.concatenate([p.start for p in parts]),
            np.concatenate([p.stop for p in parts]),
            np.concatenate([p.mass for p in parts]),
            np.concatenate([p.mod_delta for p in parts]),
        )


class MassIndex:
    """Sorted prefix/suffix mass arrays over one database shard."""

    def __init__(self, shard: ProteinDatabase):
        self.shard = shard
        n = len(shard)
        lengths = shard.lengths
        offsets = shard.offsets
        residue_mass = mass_table()[shard.residues]
        csum = np.concatenate(([0.0], np.cumsum(residue_mass)))

        #: sequence index owning each flat residue position.
        self.seq_of_pos = np.repeat(np.arange(n, dtype=np.int64), lengths)
        pos_offsets = offsets[self.seq_of_pos]  # start offset of owning sequence

        # prefix ending at k (inclusive): residues [off, k] -> csum[k+1] - csum[off]
        prefix_mass = csum[1:] - csum[pos_offsets] + WATER_MASS
        # suffix starting at k: residues [k, off_next) -> csum[off_next] - csum[k]
        next_offsets = offsets[self.seq_of_pos + 1]
        suffix_mass = csum[next_offsets] - csum[:-1] + WATER_MASS

        self._prefix_order = np.argsort(prefix_mass, kind="stable")
        self._prefix_sorted = prefix_mass[self._prefix_order]
        self._suffix_order = np.argsort(suffix_mass, kind="stable")
        self._suffix_sorted = suffix_mass[self._suffix_order]
        self._offsets = offsets
        # Sorted whole-sequence masses: a full-length span appears in both
        # the prefix and the suffix arrays; enumeration reports it once
        # (as a prefix), and counting subtracts this array's window count
        # so counts and enumeration sizes agree exactly.
        self._parent_sorted = np.sort(shard.parent_masses())

    @property
    def nbytes(self) -> int:
        """Memory footprint of the index arrays (excluding the shard itself)."""
        return int(
            self.seq_of_pos.nbytes
            + self._prefix_order.nbytes
            + self._prefix_sorted.nbytes
            + self._suffix_order.nbytes
            + self._suffix_sorted.nbytes
        )

    # -- window counting (O(log N), used by modeled execution) ----------

    def count_in_window(self, lo: float, hi: float) -> int:
        """Distinct prefix/suffix candidates with mass in ``[lo, hi]``.

        Matches ``len(self.candidates_in_window(lo, hi))`` exactly, in
        O(log N): full-length spans, present in both sorted arrays, are
        subtracted once.
        """
        return int(self.count_many(np.array([lo]), np.array([hi]))[0])

    def count_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`count_in_window` over query arrays."""
        pc = np.searchsorted(self._prefix_sorted, highs, side="right") - np.searchsorted(
            self._prefix_sorted, lows, side="left"
        )
        sc = np.searchsorted(self._suffix_sorted, highs, side="right") - np.searchsorted(
            self._suffix_sorted, lows, side="left"
        )
        fc = np.searchsorted(self._parent_sorted, highs, side="right") - np.searchsorted(
            self._parent_sorted, lows, side="left"
        )
        return (pc + sc - fc).astype(np.int64)

    # -- window enumeration (used by real execution) ---------------------

    def prefixes_in_window(self, lo: float, hi: float) -> CandidateSpans:
        i0 = np.searchsorted(self._prefix_sorted, lo, side="left")
        i1 = np.searchsorted(self._prefix_sorted, hi, side="right")
        pos = self._prefix_order[i0:i1]
        seq = self.seq_of_pos[pos]
        start = np.zeros(len(pos), dtype=np.int64)
        stop = pos - self._offsets[seq] + 1
        return CandidateSpans(
            seq, start, stop, self._prefix_sorted[i0:i1].copy(), np.zeros(len(pos))
        )

    def suffixes_in_window(self, lo: float, hi: float) -> CandidateSpans:
        i0 = np.searchsorted(self._suffix_sorted, lo, side="left")
        i1 = np.searchsorted(self._suffix_sorted, hi, side="right")
        pos = self._suffix_order[i0:i1]
        seq = self.seq_of_pos[pos]
        start = pos - self._offsets[seq]
        stop = self._offsets[seq + 1] - self._offsets[seq]
        return CandidateSpans(
            seq, start, stop, self._suffix_sorted[i0:i1].copy(), np.zeros(len(pos))
        )

    def candidates_in_window(self, lo: float, hi: float) -> CandidateSpans:
        """All candidates (prefixes then suffixes) with mass in ``[lo, hi]``.

        A full-length span qualifies both as a prefix and as a suffix; it
        is reported once, as a prefix (the suffix enumeration drops spans
        with ``start == 0``), so candidate sets contain no duplicates.
        """
        prefixes = self.prefixes_in_window(lo, hi)
        suffixes = self.suffixes_in_window(lo, hi)
        keep = suffixes.start > 0
        if not np.all(keep):
            suffixes = CandidateSpans(
                suffixes.seq_index[keep],
                suffixes.start[keep],
                suffixes.stop[keep],
                suffixes.mass[keep],
                suffixes.mod_delta[keep],
            )
        return CandidateSpans.concat([prefixes, suffixes])
