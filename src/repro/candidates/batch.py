"""Batch-at-a-time candidate representation for vectorized scoring.

The object-at-a-time hot path — one ``theoretical_spectrum`` call, one
``match_peaks`` call, one heap push per candidate — leaves almost all of
numpy's throughput on the table.  :class:`CandidateBatch` restructures a
query's :class:`~repro.candidates.mass_index.CandidateSpans` so scorers
can process *arrays of candidates*:

* all candidate residues are gathered from the shard into one flat
  buffer with per-candidate offsets (structure-of-arrays, no Python
  objects);
* variable-PTM candidates are expanded into one *evaluation row* per
  admissible modification site (the scalar kernel's "score every site,
  keep the best" rule), so scoring is a flat row problem;
* rows are grouped by candidate length, because rows of equal length
  pack into dense 2-D matrices on which numpy's row-wise kernels
  (``cumsum``, ``sort``, ``sum`` along the last axis) are *bitwise
  identical* to the per-candidate 1-D operations — the property that
  keeps batched output exactly equal to the scalar oracle, which the
  paper's validation experiment demands.

Scorers consume the batch through :meth:`length_groups` (dense per-length
row matrices) and fold per-row scores back to per-candidate scores with
:meth:`reduce_rows` (max over modification sites, exactly the scalar
``max`` over the same site order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.candidates.mass_index import CandidateSpans
from repro.chem.amino_acids import mass_table
from repro.chem.protein import ProteinDatabase


def _ragged_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + l)`` for each (start, length) pair."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    prev = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    ramp = np.arange(total, dtype=np.int64) - np.repeat(prev, lengths)
    return np.repeat(starts, lengths) + ramp


@dataclass(frozen=True)
class LengthGroup:
    """All evaluation rows of one candidate length, as dense matrices.

    Attributes:
        length: candidate length L shared by every row in the group.
        rows: indices into the batch's row arrays (ascending).
        residue_rows: ``(len(rows), L)`` uint8 residue-code matrix.
        sites: per-row modification site (-1 = unmodified model).
        deltas: per-row modification delta mass (0.0 where site is -1).
    """

    length: int
    rows: np.ndarray
    residue_rows: np.ndarray
    sites: np.ndarray
    deltas: np.ndarray

    def mass_rows(self, monoisotopic: bool = True) -> np.ndarray:
        """Per-row residue masses with each row's PTM delta applied.

        Row ``r``'s values are bitwise identical to the scalar
        ``_residue_masses_with_mod(residues, monoisotopic, site, delta)``.
        """
        masses = mass_table(monoisotopic)[self.residue_rows]
        sited = np.nonzero(self.sites >= 0)[0]
        if len(sited):
            masses[sited, self.sites[sited]] += self.deltas[sited]
        return masses


class CandidateBatch:
    """A query's candidate set in batch (structure-of-arrays) form.

    Attributes:
        spans: the source spans (one entry per candidate).
        residues: flat uint8 buffer of all candidate residues.
        offsets: ``(n + 1,)`` candidate ``i`` occupies
            ``residues[offsets[i]:offsets[i + 1]]``.
        row_candidate: owning candidate index of each evaluation row.
        row_site: modification site per row (-1 = score unmodified).
        row_delta: modification delta per row (0.0 where site is -1).
        row_offsets: ``(n + 1,)`` rows of candidate ``i`` are
            ``row_offsets[i]:row_offsets[i + 1]`` (every candidate has
            at least one row).
    """

    __slots__ = (
        "spans",
        "residues",
        "offsets",
        "row_candidate",
        "row_site",
        "row_delta",
        "row_offsets",
        "_expanded",
        "_groups",
        "_gpos",
    )

    def __init__(
        self,
        spans: CandidateSpans,
        residues: np.ndarray,
        offsets: np.ndarray,
        row_candidate: np.ndarray,
        row_site: np.ndarray,
        row_delta: np.ndarray,
        row_offsets: np.ndarray,
    ):
        self.spans = spans
        self.residues = residues
        self.offsets = offsets
        self.row_candidate = row_candidate
        self.row_site = row_site
        self.row_delta = row_delta
        self.row_offsets = row_offsets
        self._expanded = len(row_candidate) != len(spans)
        self._groups: Optional[List[LengthGroup]] = None
        self._gpos: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        """Number of candidates (not evaluation rows)."""
        return len(self.spans)

    @property
    def num_rows(self) -> int:
        return len(self.row_candidate)

    @classmethod
    def from_spans(
        cls,
        shard: ProteinDatabase,
        spans: CandidateSpans,
        mod_targets: Optional[Dict[float, int]] = None,
    ) -> "CandidateBatch":
        """Gather residues and expand PTM sites for a span set.

        ``mod_targets`` maps each variable modification's delta mass to
        its target residue code (as in ``ShardSearcher``).  A modified
        candidate produces one row per occurrence of the target residue;
        candidates whose delta is unknown or whose residues contain no
        target fall back to a single unmodified-model row, exactly like
        the scalar kernel.
        """
        n = len(spans)
        lengths = spans.lengths
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        src = _ragged_arange(shard.offsets[spans.seq_index] + spans.start, lengths)
        residues = shard.residues[src]

        # Which candidates expand into per-site rows?
        target_code = np.full(n, -1, dtype=np.int64)
        if mod_targets:
            for delta, code in mod_targets.items():
                target_code[spans.mod_delta == delta] = code
        modified = (spans.mod_delta != 0.0) & (target_code >= 0)
        if not modified.any():
            row_offsets = np.arange(n + 1, dtype=np.int64)
            return cls(
                spans,
                residues,
                offsets,
                np.arange(n, dtype=np.int64),
                np.full(n, -1, dtype=np.int64),
                np.zeros(n, dtype=np.float64),
                row_offsets,
            )

        # Site positions: flat residue positions equal to the owning
        # candidate's target code.
        cand_of_pos = np.repeat(np.arange(n, dtype=np.int64), lengths)
        is_site = residues == target_code[cand_of_pos]
        is_site &= modified[cand_of_pos]
        site_counts = np.add.reduceat(is_site.astype(np.int64), offsets[:-1]) if n else np.empty(0, np.int64)
        rows_per_cand = np.where(site_counts > 0, site_counts, 1)
        row_offsets = np.concatenate(([0], np.cumsum(rows_per_cand)))
        row_candidate = np.repeat(np.arange(n, dtype=np.int64), rows_per_cand)
        row_site = np.full(int(row_offsets[-1]), -1, dtype=np.int64)
        row_delta = np.zeros(int(row_offsets[-1]), dtype=np.float64)
        expanded = site_counts > 0
        if expanded.any():
            site_pos = np.nonzero(is_site)[0]
            site_cand = cand_of_pos[site_pos]
            # rows of an expanded candidate are exactly its sites, in
            # ascending position order (np.nonzero order — the scalar
            # site order).
            dest = np.nonzero(expanded[row_candidate])[0]
            row_site[dest] = site_pos - offsets[site_cand]
            row_delta[dest] = spans.mod_delta[site_cand]
        return cls(spans, residues, offsets, row_candidate, row_site, row_delta, row_offsets)

    # -- row access ------------------------------------------------------

    def row_residues(self, row: int) -> np.ndarray:
        """Encoded residues of one evaluation row (zero-copy view)."""
        cand = int(self.row_candidate[row])
        return self.residues[int(self.offsets[cand]) : int(self.offsets[cand + 1])]

    def length_groups(self) -> List[LengthGroup]:
        """Evaluation rows bucketed by candidate length (cached).

        Each group's matrices are freshly-gathered C-contiguous arrays,
        so row-wise numpy reductions over them match the scalar
        per-candidate operations bit for bit.
        """
        if self._groups is not None:
            return self._groups
        groups: List[LengthGroup] = []
        if self.num_rows:
            lengths = self.spans.lengths
            row_length = lengths[self.row_candidate]
            row_start = self.offsets[self.row_candidate]
            for length in np.unique(row_length):
                length = int(length)
                rows = np.nonzero(row_length == length)[0]
                mat = self.residues[row_start[rows][:, None] + np.arange(length)]
                groups.append(
                    LengthGroup(
                        length, rows, mat, self.row_site[rows], self.row_delta[rows]
                    )
                )
        self._groups = groups
        return groups

    def reduce_rows(self, row_scores: np.ndarray) -> np.ndarray:
        """Fold per-row scores into per-candidate scores.

        The best modification-site interpretation wins, exactly as the
        scalar kernel's ``max`` over the same (ascending) site order.
        """
        if not self._expanded:
            return row_scores
        if len(self.spans) == 0:
            return np.empty(0, dtype=np.float64)
        return np.maximum.reduceat(row_scores, self.row_offsets[:-1])

    # -- per-query selections (cohort / block scoring) -------------------

    def rows_of(self, candidates: np.ndarray) -> np.ndarray:
        """Evaluation rows of the selected candidates, in candidate order.

        Within a candidate its rows stay in batch (ascending site) order,
        so the selected row stream is exactly the row stream a batch
        built from ``spans.take(candidates)`` would produce.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        if not self._expanded:
            return candidates
        starts = self.row_offsets[candidates]
        return _ragged_arange(starts, self.row_offsets[candidates + 1] - starts)

    def selected_row_count(self, candidates: np.ndarray) -> int:
        """Number of evaluation rows the selected candidates own."""
        candidates = np.asarray(candidates, dtype=np.int64)
        if not self._expanded:
            return len(candidates)
        return int((self.row_offsets[candidates + 1] - self.row_offsets[candidates]).sum())

    def reduce_selected(self, row_scores: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """:meth:`reduce_rows` over the ``rows_of(candidates)`` stream.

        ``row_scores`` is aligned to :meth:`rows_of` output; the fold is
        the same ``max`` over the same ascending site order, so the
        result is bitwise equal to ``reduce_rows`` on a per-query batch.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        if not self._expanded:
            return row_scores
        if len(candidates) == 0:
            return np.empty(0, dtype=np.float64)
        counts = self.row_offsets[candidates + 1] - self.row_offsets[candidates]
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        return np.maximum.reduceat(row_scores, starts)

    def group_positions(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row (length-group index, position within group), cached.

        Lets block scorers route an arbitrary row selection to the cached
        per-group matrices: row ``r`` lives at
        ``length_groups()[row_group[r]]`` row ``row_local[r]``.
        """
        if self._gpos is not None:
            return self._gpos
        row_group = np.full(self.num_rows, -1, dtype=np.int64)
        row_local = np.full(self.num_rows, -1, dtype=np.int64)
        for g, group in enumerate(self.length_groups()):
            row_group[group.rows] = g
            row_local[group.rows] = np.arange(len(group.rows), dtype=np.int64)
        self._gpos = (row_group, row_local)
        return self._gpos

    def take(self, candidates: np.ndarray) -> "CandidateBatch":
        """Sub-batch of the selected candidates (per-query extraction).

        Every per-candidate array is gathered in selection order, so the
        result is structurally identical to ``from_spans`` on
        ``spans.take(candidates)`` — the basis for the block fallback
        path scoring per-query slices of a cohort batch.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        spans = self.spans.take(candidates)
        res_starts = self.offsets[candidates]
        res_lengths = self.offsets[candidates + 1] - res_starts
        residues = self.residues[_ragged_arange(res_starts, res_lengths)]
        offsets = np.concatenate(([0], np.cumsum(res_lengths)))
        row_starts = self.row_offsets[candidates]
        row_counts = self.row_offsets[candidates + 1] - row_starts
        rows = _ragged_arange(row_starts, row_counts)
        row_offsets = np.concatenate(([0], np.cumsum(row_counts)))
        return CandidateBatch(
            spans,
            residues,
            offsets,
            np.repeat(np.arange(len(candidates), dtype=np.int64), row_counts),
            self.row_site[rows],
            self.row_delta[rows],
            row_offsets,
        )
