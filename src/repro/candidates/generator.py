"""Candidate enumeration for queries against a database shard.

Wraps :class:`~repro.candidates.mass_index.MassIndex` with the paper's
candidate rule — spans whose m/z lies within ``m(q) +/- delta`` — plus
optional variable-PTM expansion, which the paper singles out as the
factor that "further exacerbates" candidate explosion (Section I).

PTM model: for each configured variable modification, a span containing
at least one target residue may additionally be matched at
``mass + delta_mass`` (single occurrence).  That adds one extra window
search per modification and multiplies candidate counts accordingly —
the qualitative behaviour Figure 1b's discussion relies on — without the
full combinatorial enumeration real engines implement.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Tuple

import numpy as np

from repro.candidates.mass_index import CandidateSpans, MassIndex
from repro.chem.amino_acids import Modification
from repro.chem.protein import ProteinDatabase
from repro.spectra.spectrum import Spectrum


def mass_window(spectrum: Spectrum, delta: float) -> Tuple[float, float]:
    """Neutral-mass window ``[m(q) - delta, m(q) + delta]`` for a query.

    The paper phrases the tolerance on m/z; at charge 1 (our canonical
    key space) the two are offset by one proton, so applying delta to the
    neutral parent mass is equivalent.
    """
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    m = spectrum.parent_mass
    return m - delta, m + delta


class CandidateGenerator:
    """Enumerates (and counts) candidates for queries against one shard."""

    def __init__(
        self,
        shard: ProteinDatabase,
        delta: float = 3.0,
        modifications: Sequence[Modification] = (),
    ):
        self.shard = shard
        self.delta = delta
        self.modifications = tuple(m for m in modifications if not m.fixed)
        self.index = MassIndex(shard)
        # Per-sequence presence cumsums for each variable-mod target, so
        # "span contains >= 1 target residue" is O(1) per candidate, plus
        # a window counter per mod so PTM tiers are counted in O(log N)
        # without enumerating spans.
        self._target_csums = {}
        self._mod_counters = {}
        for mod in self.modifications:
            is_target = (shard.residues == ord(mod.target)).astype(np.int64)
            csum = np.concatenate(([0], np.cumsum(is_target)))
            self._target_csums[mod.name] = csum
            self._mod_counters[mod.name] = self.index.presence_counter(csum)

    @property
    def nbytes(self) -> int:
        """Index memory, charged to the owning rank by the simulator."""
        total = self.index.nbytes
        for csum in self._target_csums.values():
            total += csum.nbytes
        for counter in self._mod_counters.values():
            total += counter.nbytes
        return total

    def presence_mask(self, spans: CandidateSpans, mod: Modification) -> np.ndarray:
        """Boolean mask: spans containing >= 1 of ``mod``'s target residue."""
        offsets = self.shard.offsets
        abs_start = offsets[spans.seq_index] + spans.start
        abs_stop = offsets[spans.seq_index] + spans.stop
        csum = self._target_csums[mod.name]
        return (csum[abs_stop] - csum[abs_start]) > 0

    def _filter_modified(self, spans: CandidateSpans, mod: Modification) -> CandidateSpans:
        """Keep spans containing >= 1 target residue; stamp the mod delta."""
        if len(spans) == 0:
            return spans
        kept = spans.take(self.presence_mask(spans, mod))
        return replace(kept, mod_delta=np.full(len(kept), mod.delta_mass))

    def candidates(self, spectrum: Spectrum) -> CandidateSpans:
        """All candidates for one query, unmodified first, then per-PTM.

        Order is deterministic: (mod tier, mass rank within tier), which
        keeps parallel runs bitwise-reproducible.
        """
        lo, hi = mass_window(spectrum, self.delta)
        parts = [self.index.candidates_in_window(lo, hi)]
        for mod in self.modifications:
            shifted = self.index.candidates_in_window(lo - mod.delta_mass, hi - mod.delta_mass)
            parts.append(self._filter_modified(shifted, mod))
        return CandidateSpans.concat(parts)

    def count(self, spectrum: Spectrum) -> int:
        """Candidate count for one query without materialising spans.

        Exact for every tier: the unmodified tier is two binary searches,
        and each PTM tier is counted through its per-mod target-presence
        cumsums (:class:`~repro.candidates.mass_index.PresenceCounter`),
        so no spans are ever enumerated.
        """
        lo, hi = mass_window(spectrum, self.delta)
        total = self.index.count_in_window(lo, hi)
        for mod in self.modifications:
            total += self._mod_counters[mod.name].count_in_window(
                lo - mod.delta_mass, hi - mod.delta_mass
            )
        return total

    def count_unmodified_many(self, parent_masses: np.ndarray) -> np.ndarray:
        """Vectorized unmodified candidate counts for many parent masses."""
        parent_masses = np.asarray(parent_masses, dtype=np.float64)
        return self.index.count_many(parent_masses - self.delta, parent_masses + self.delta)

    def extract(self, spans: CandidateSpans, i: int) -> np.ndarray:
        """Encoded residues of candidate ``i`` (zero-copy view into the shard)."""
        seq = self.shard.sequence(int(spans.seq_index[i]))
        return seq[int(spans.start[i]) : int(spans.stop[i])]


def count_candidates(
    database: ProteinDatabase,
    spectra: Sequence[Spectrum],
    delta: float = 3.0,
    modifications: Sequence[Modification] = (),
) -> np.ndarray:
    """Candidate counts per query against a whole database (convenience).

    With no variable modifications configured the counts are computed in
    one vectorized :meth:`CandidateGenerator.count_unmodified_many` call
    (two batched binary searches) instead of a per-spectrum Python loop.
    """
    gen = CandidateGenerator(database, delta, modifications)
    if not gen.modifications:
        if not spectra:
            return np.empty(0, dtype=np.int64)
        masses = np.array([s.parent_mass for s in spectra], dtype=np.float64)
        return gen.count_unmodified_many(masses).astype(np.int64)
    return np.array([gen.count(s) for s in spectra], dtype=np.int64)
