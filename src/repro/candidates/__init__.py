"""Candidate generation: prefix/suffix mass indexing and enumeration."""

from repro.candidates.mass_index import MassIndex, CandidateSpans
from repro.candidates.batch import CandidateBatch, LengthGroup
from repro.candidates.generator import (
    CandidateGenerator,
    count_candidates,
    mass_window,
)
from repro.candidates.tryptic import TrypticIndex

__all__ = [
    "MassIndex",
    "CandidateSpans",
    "CandidateBatch",
    "LengthGroup",
    "CandidateGenerator",
    "count_candidates",
    "mass_window",
    "TrypticIndex",
]
