"""Tryptic-peptide candidate index (the X!Tandem-family candidate rule).

X!Tandem-style engines do not enumerate every prefix/suffix: they
consider only peptides produced by the digestion rules, an *aggressive
prefilter* that makes them fast and is exactly why the paper warns they
"could miss true predictions" (Section I.A) — a target peptide that is
not perfectly tryptic (mutation, unusual cleavage, PTM moving its mass)
never becomes a candidate.

This index supports the X!!Tandem-like baseline: digest once, keep
peptide masses sorted, answer mass-window queries with binary search.
"""

from __future__ import annotations

import numpy as np

from typing import Optional

from repro.candidates.mass_index import CandidateSpans
from repro.chem.enzymes import Protease, get_protease
from repro.chem.peptide import peptide_mass
from repro.chem.protein import ProteinDatabase


class TrypticIndex:
    """Sorted mass index over the proteolytic peptides of a database.

    Trypsin by default (hence the name), but any
    :class:`~repro.chem.enzymes.Protease` may drive the digestion —
    multi-enzyme pipelines just build one index per enzyme.
    """

    def __init__(
        self,
        database: ProteinDatabase,
        missed_cleavages: int = 1,
        min_length: int = 6,
        max_length: int = 50,
        protease: Optional[Protease] = None,
    ):
        self.database = database
        self.protease = protease if protease is not None else get_protease("trypsin")
        spans = []
        for i in range(len(database)):
            seq = database.sequence(i)
            for start, stop in self.protease.peptides(
                seq, missed_cleavages, min_length, max_length
            ):
                spans.append((i, start, stop))
        n = len(spans)
        self.seq_index = np.fromiter((s[0] for s in spans), np.int64, n)
        self.start = np.fromiter((s[1] for s in spans), np.int64, n)
        self.stop = np.fromiter((s[2] for s in spans), np.int64, n)
        masses = np.empty(n)
        for k, (i, start, stop) in enumerate(spans):
            masses[k] = peptide_mass(database.sequence(i)[start:stop])
        order = np.argsort(masses, kind="stable")
        self.masses = masses[order]
        self.seq_index = self.seq_index[order]
        self.start = self.start[order]
        self.stop = self.stop[order]

    def __len__(self) -> int:
        return len(self.masses)

    @property
    def nbytes(self) -> int:
        return int(
            self.masses.nbytes + self.seq_index.nbytes + self.start.nbytes + self.stop.nbytes
        )

    def candidates_in_window(self, lo: float, hi: float) -> CandidateSpans:
        i0 = int(np.searchsorted(self.masses, lo, side="left"))
        i1 = int(np.searchsorted(self.masses, hi, side="right"))
        count = i1 - i0
        return CandidateSpans(
            self.seq_index[i0:i1],
            self.start[i0:i1],
            self.stop[i0:i1],
            self.masses[i0:i1].copy(),
            np.zeros(count),
        )

    def count_in_window(self, lo: float, hi: float) -> int:
        return int(
            np.searchsorted(self.masses, hi, side="right")
            - np.searchsorted(self.masses, lo, side="left")
        )
