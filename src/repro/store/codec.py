"""Compression codecs for partitioned index blobs.

The partitioned store (``repro.store.partitioned``) keeps each m/z
partition as one compressed blob of named sections.  Three codecs cover
every array the partition schema stores:

* ``dvint`` — delta + varint for *sorted non-decreasing* int64 arrays
  (posting-list keys, group row splits).  The first value is stored
  absolutely, every later value as its non-negative difference from the
  previous one; each number is LEB128-style varint bytes (7 payload bits
  per byte, high bit = continuation).  Sorted posting keys delta down to
  tiny integers, so this is where the compression ratio comes from.
* ``vint`` — plain varint for non-negative int64 arrays that are not
  sorted (group row ids, span metadata columns).
* ``zraw`` — ``zlib`` over the raw little-endian bytes, for float64
  m/z / mass buffers and uint8 tags.  zlib is lossless, so decoded
  floats are bit-for-bit the encoded ones — the property tests in
  ``tests/property/test_prop_codec.py`` enforce the round-trip for all
  three codecs.

Decoding is vectorized: varint streams are decoded with one pass of
numpy array ops (continuation-bit cumsum to find value boundaries, then
per-byte shifted contributions summed with ``np.add.reduceat``), not a
Python loop per value — a partition decodes in milliseconds, which is
what lets the prefetch thread stay ahead of scoring.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from repro.errors import IndexStoreError

#: codec identifiers, recorded per section in the partition manifest
CODECS = ("dvint", "vint", "zraw")


def encode_varint(values: np.ndarray) -> bytes:
    """Varint-encode a non-negative int64 array (vectorized).

    Each value is emitted little-endian in 7-bit groups; every byte but
    the last of a value has its high bit set.  Zero encodes as one
    ``0x00`` byte.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return b""
    if values.min() < 0:
        raise IndexStoreError("varint codec requires non-negative values")
    u = values.astype(np.uint64)
    # bytes needed per value: ceil(bit_length / 7), at least 1
    nbytes = np.ones(len(u), dtype=np.int64)
    probe = u >> np.uint64(7)
    while probe.any():
        nbytes += (probe > 0).astype(np.int64)
        probe >>= np.uint64(7)
    total = int(nbytes.sum())
    out = np.empty(total, dtype=np.uint8)
    ends = np.cumsum(nbytes)
    starts = ends - nbytes
    # position of each output byte within its value (0-based, LSB first)
    pos = np.arange(total, dtype=np.int64) - np.repeat(starts, nbytes)
    owner = np.repeat(np.arange(len(u), dtype=np.int64), nbytes)
    chunk = (u[owner] >> (np.uint64(7) * pos.astype(np.uint64))) & np.uint64(0x7F)
    out[:] = chunk.astype(np.uint8)
    is_last = pos == (nbytes[owner] - 1)
    out[~is_last] |= 0x80
    return out.tobytes()


def decode_varint(buf: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_varint`; returns ``count`` int64 values.

    Raises :class:`~repro.errors.IndexStoreError` on a truncated or
    malformed stream (wrong value count, dangling continuation bit).
    """
    if count == 0:
        if buf:
            raise IndexStoreError("varint stream has trailing bytes")
        return np.empty(0, dtype=np.int64)
    b = np.frombuffer(buf, dtype=np.uint8)
    if b.size == 0:
        raise IndexStoreError("varint stream is truncated (empty buffer)")
    terminal = (b & 0x80) == 0  # last byte of each value
    n_values = int(terminal.sum())
    if n_values != count or not terminal[-1]:
        raise IndexStoreError(
            f"varint stream is corrupt or truncated: expected {count} "
            f"values, found {n_values}"
        )
    # value id of each byte: 0-based index of the value it belongs to
    owner = np.concatenate(([0], np.cumsum(terminal[:-1]))).astype(np.int64)
    starts = np.nonzero(np.diff(owner, prepend=-1))[0]
    pos = np.arange(b.size, dtype=np.int64) - starts[owner]
    if int(pos.max()) > 9:
        raise IndexStoreError("varint value exceeds 64 bits")
    contrib = (b.astype(np.uint64) & np.uint64(0x7F)) << (
        np.uint64(7) * pos.astype(np.uint64)
    )
    values = np.add.reduceat(contrib, starts)
    return values.astype(np.int64)


def encode_deltas(values: np.ndarray) -> bytes:
    """Delta + varint encode a sorted (non-decreasing) int64 array."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return b""
    deltas = np.diff(values)
    if values[0] < 0 or (deltas.size and deltas.min() < 0):
        raise IndexStoreError(
            "delta codec requires a sorted, non-negative int64 array"
        )
    return encode_varint(np.concatenate((values[:1], deltas)))


def decode_deltas(buf: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`encode_deltas`."""
    deltas = decode_varint(buf, count)
    return np.cumsum(deltas, dtype=np.int64) if count else deltas


def encode_array(arr: np.ndarray, codec: str) -> bytes:
    """Encode one flat array with the named codec."""
    if codec == "dvint":
        return zlib.compress(encode_deltas(arr), level=1)
    if codec == "vint":
        return zlib.compress(encode_varint(arr), level=1)
    if codec == "zraw":
        return zlib.compress(np.ascontiguousarray(arr).tobytes(), level=1)
    raise IndexStoreError(f"unknown partition codec {codec!r}")


def decode_array(buf: bytes, codec: str, dtype: str, shape: Tuple[int, ...]) -> np.ndarray:
    """Decode one section back to its manifest dtype/shape.

    Any decompression or framing failure — a truncated blob, flipped
    bits, a wrong section boundary — surfaces as a typed
    :class:`~repro.errors.IndexStoreError`, never a raw zlib/numpy error.
    """
    if codec not in CODECS:
        raise IndexStoreError(f"unknown partition codec {codec!r}")
    count = 1
    for dim in shape:
        count *= int(dim)
    try:
        raw = zlib.decompress(buf)
    except zlib.error as exc:
        raise IndexStoreError(
            f"partition section is corrupt or truncated: {exc}"
        ) from None
    if codec == "dvint":
        return decode_deltas(raw, count).astype(np.int64).reshape(shape)
    if codec == "vint":
        return decode_varint(raw, count).astype(np.int64).reshape(shape)
    if codec == "zraw":
        expect = count * np.dtype(dtype).itemsize
        if len(raw) != expect:
            raise IndexStoreError(
                f"partition section decoded to {len(raw)} bytes, "
                f"manifest says {expect}"
            )
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    raise IndexStoreError(f"unknown partition codec {codec!r}")


def codec_for(name: str, arr: np.ndarray) -> str:
    """Pick the codec for one partition array by name/dtype."""
    if arr.dtype == np.float64 or arr.dtype == np.uint8:
        return "zraw"
    if name in ("ladder_key", "series_key", "group_row_splits"):
        return "dvint"
    return "vint"
