"""Out-of-core partitioned index store with streamed, prefetched reads.

The resident store (:mod:`repro.store.index_store`) maps every shard's
full manifest, so peak memory grows with database size N.  This module
makes N memory-bound no longer: the precursor-major span set — already
the product of Algorithm B's counting sort — is promoted to the on-disk
layout itself, cut into *mass-contiguous partitions* small enough to
decode one (plus one prefetched) at a time.

On-disk format (schema ``repro.index_store_partitioned/1``)::

    <store_dir>/
        header.json           # schema, fingerprint, build config,
                              # database manifest, partition directory
        database/
            residues.npy      # the source database's flat buffers,
            offsets.npy       # mmap-able (overflow scoring + hit
            ids.npy           # emission need them; partitions do not)
        partitions/
            p_00000.bin       # one compressed blob per partition
            p_00001.bin
            ...
            overflow.bin      # out-of-envelope spans (see below)

``header.json`` carries the always-resident *partition directory*: per
partition its span-mass range ``[mass_lo, mass_hi]``, compressed and
decoded byte sizes, a SHA-256 of the blob, the section table (name,
codec, offset, nbytes per stored array), and the full
:class:`~repro.index.layout.IndexLayout` manifest of the decoded
arrays.  The directory is a few KB per partition — the only part of the
index a streaming search keeps resident for the whole pass.

Each blob is the concatenation of independently compressed *sections*,
one per stored array of the partition schema
(:data:`~repro.index.layout.PARTITION_STORED_ARRAYS`), encoded with the
codecs in :mod:`repro.store.codec` (sorted posting keys delta+varint,
floats zlib-raw).  Posting ``row`` columns and bin-start tables are
*derived* at decode time (``row = key % (num_rows + 1)``, bin starts by
one searchsorted), exactly reproducing the builder's arrays, so they
are never stored.

Spans outside the index envelope (length < 2 or > ``max_length``) go to
``overflow.bin`` — their (seq_index, start, stop, mass) columns, mass
sorted — and are scored through the direct
:class:`~repro.candidates.batch.CandidateBatch` path against the
mmapped database, exactly as the resident index routes its ``row == -1``
spans.  Union over partitions + overflow is the complete candidate set,
so streamed hits are bitwise identical to the resident path.

Durability and validation follow the resident store: atomic tmp-sibling
assembly with per-file fsync, fingerprint validation against the
caller's database, and typed :class:`~repro.errors.IndexStoreError` on
any truncated, corrupt, or mismatched artifact — including a blob whose
SHA-256 no longer matches its directory entry *mid-stream*.

:class:`StreamingIndexReader` drives the pass: a background prefetch
thread reads (and checksums) blob k+1 while the main thread decodes and
scores blob k — a double buffer of two partitions, optionally gated by
a memory-budget knob — and records ``stream.*`` metrics plus
prefetch-hit/stall spans in the obs layer.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.candidates.mass_index import CandidateSpans, MassIndex
from repro.chem.protein import ProteinDatabase
from repro.errors import IndexStoreError
from repro.index.fragment_index import FragmentIndex, IndexBuilder
from repro.index.layout import PARTITION_STORED_ARRAYS, IndexLayout
from repro.obs.metrics import get_metrics
from repro.store.codec import codec_for, decode_array, encode_array
from repro.store.index_store import (
    HEADER_NAME,
    StoredIndex,
    _fsync_dir,
    compute_fingerprint,
    open_index,
)

#: schema identifier for the partitioned store directory format
PARTITIONED_SCHEMA = "repro.index_store_partitioned/1"

DATABASE_DIR = "database"
PARTITIONS_DIR = "partitions"
OVERFLOW_NAME = "overflow.bin"

#: database buffer name -> attribute, in canonical write order
_DB_BUFFERS = ("residues", "offsets", "ids")

#: overflow section name -> codec, in blob order
_OVERFLOW_SECTIONS = (
    ("seq_index", "vint"),
    ("start", "vint"),
    ("stop", "vint"),
    ("mass", "zraw"),
)
_OVERFLOW_DTYPES = {
    "seq_index": "int64",
    "start": "int64",
    "stop": "int64",
    "mass": "float64",
}


def _partition_filename(i: int) -> str:
    return f"p_{i:05d}.bin"


@dataclass(frozen=True)
class Section:
    """One stored array's slice of a partition blob."""

    name: str
    codec: str
    offset: int
    nbytes: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "codec": self.codec,
            "offset": self.offset,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "Section":
        try:
            return cls(
                name=str(payload["name"]),
                codec=str(payload["codec"]),
                offset=int(payload["offset"]),
                nbytes=int(payload["nbytes"]),
            )
        except (KeyError, TypeError, ValueError):
            raise IndexStoreError(
                f"malformed partition section entry: {payload!r}"
            ) from None


@dataclass(frozen=True)
class PartitionEntry:
    """Always-resident directory entry for one m/z partition."""

    name: str
    mass_lo: float
    mass_hi: float
    num_rows: int
    num_fragments: int
    blob_bytes: int
    decoded_bytes: int
    sha256: str
    layout: IndexLayout
    sections: Tuple[Section, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "mass_lo": self.mass_lo,
            "mass_hi": self.mass_hi,
            "num_rows": self.num_rows,
            "num_fragments": self.num_fragments,
            "blob_bytes": self.blob_bytes,
            "decoded_bytes": self.decoded_bytes,
            "sha256": self.sha256,
            "layout": self.layout.to_dict(),
            "sections": [s.to_dict() for s in self.sections],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "PartitionEntry":
        try:
            return cls(
                name=str(payload["name"]),
                mass_lo=float(payload["mass_lo"]),
                mass_hi=float(payload["mass_hi"]),
                num_rows=int(payload["num_rows"]),
                num_fragments=int(payload["num_fragments"]),
                blob_bytes=int(payload["blob_bytes"]),
                decoded_bytes=int(payload["decoded_bytes"]),
                sha256=str(payload["sha256"]),
                layout=IndexLayout.from_dict(payload["layout"]),
                sections=tuple(
                    Section.from_dict(s) for s in payload["sections"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, IndexStoreError):
                raise
            raise IndexStoreError(
                f"malformed partition directory entry: {exc!r}"
            ) from None


@dataclass(frozen=True)
class OverflowEntry:
    """Directory entry for the out-of-envelope span blob."""

    count: int
    blob_bytes: int
    sha256: str
    sections: Tuple[Section, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "blob_bytes": self.blob_bytes,
            "sha256": self.sha256,
            "sections": [s.to_dict() for s in self.sections],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "OverflowEntry":
        try:
            return cls(
                count=int(payload["count"]),
                blob_bytes=int(payload["blob_bytes"]),
                sha256=str(payload["sha256"]),
                sections=tuple(
                    Section.from_dict(s) for s in payload["sections"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, IndexStoreError):
                raise
            raise IndexStoreError(
                f"malformed overflow directory entry: {exc!r}"
            ) from None


def _encode_blob(
    arrays: Dict[str, np.ndarray], names: Sequence[str]
) -> Tuple[bytes, Tuple[Section, ...]]:
    """Concatenate per-array compressed sections; returns (blob, table)."""
    parts: List[bytes] = []
    sections: List[Section] = []
    offset = 0
    for name in names:
        arr = arrays[name]
        codec = codec_for(name, arr)
        buf = encode_array(arr, codec)
        sections.append(Section(name, codec, offset, len(buf)))
        parts.append(buf)
        offset += len(buf)
    return b"".join(parts), tuple(sections)


def _derive_posting_arrays(
    arrays: Dict[str, np.ndarray], num_rows: int
) -> None:
    """Recompute the derived posting columns a blob does not store.

    ``row = key % (num_rows + 1)`` inverts the combined posting key, and
    the bin-start table is the same searchsorted the builder runs —
    both bitwise identical to the built arrays, which
    ``layout.check_arrays`` then re-verifies shape/dtype for.
    """
    base = num_rows + 1
    for prefix in ("ladder", "series"):
        key = arrays[f"{prefix}_key"]
        arrays[f"{prefix}_row"] = (key % base).astype(np.int64)
        if len(key) == 0:
            arrays[f"{prefix}_bin_start"] = np.zeros(1, dtype=np.int64)
            continue
        bins = key // base
        num_bins = int(bins[-1]) + 1
        arrays[f"{prefix}_bin_start"] = np.searchsorted(
            bins, np.arange(num_bins + 1)
        ).astype(np.int64)


def _decoded_row_bytes(lengths: np.ndarray) -> np.ndarray:
    """Estimated decoded bytes each span contributes to its partition.

    Per row: seven int64/float64 metadata columns, the three fragment
    matrices (4·(L-1) float64), and both posting lists (ladder
    2·(L-1)·24 B, series 2·(L-1)·25 B).  Used only to cut partition
    boundaries; the directory records exact sizes after the build.
    """
    return 56 + 130 * (lengths - 1)


def enumerate_spans(
    db: ProteinDatabase, max_length: int
) -> Tuple[CandidateSpans, CandidateSpans]:
    """Mass-sorted (indexable, overflow) span split for ``db``.

    ``indexable`` carries spans with ``2 <= length <= max_length`` —
    the index envelope, identical to :meth:`IndexBuilder.build`'s filter
    — and ``overflow`` everything else.  Both are sorted by unmodified
    mass with the same stable argsort the resident build uses, so a
    partition is a contiguous slice of exactly the resident row order.
    """
    spans = MassIndex(db).candidates_in_window(0.0, np.inf)
    lengths = spans.lengths
    keep = (lengths >= 2) & (lengths <= max_length)
    indexable = spans.take(keep)
    overflow = spans.take(~keep)
    indexable = indexable.take(np.argsort(indexable.mass, kind="stable"))
    overflow = overflow.take(np.argsort(overflow.mass, kind="stable"))
    return indexable, overflow


def partition_boundaries(
    lengths: np.ndarray, partition_bytes: int
) -> List[Tuple[int, int]]:
    """Cut mass-sorted spans into contiguous decoded-size-bounded slices."""
    n = len(lengths)
    if n == 0:
        return []
    cum = np.cumsum(_decoded_row_bytes(lengths))
    bounds = [0]
    while bounds[-1] < n:
        lo = bounds[-1]
        base = cum[lo - 1] if lo else 0
        hi = int(np.searchsorted(cum, base + partition_bytes, side="left")) + 1
        bounds.append(min(max(hi, lo + 1), n))
    return list(zip(bounds[:-1], bounds[1:]))


@dataclass
class PartitionedIndex:
    """Handle to an opened partitioned store: resident directory only.

    Opening reads ``header.json`` alone; no blob is touched until
    :meth:`read_partition_blob` / :meth:`decode_partition`.  The handle
    is what stays resident for a whole streaming pass.
    """

    path: Path
    schema: str
    fingerprint: str
    build: Dict[str, Any]
    created: float
    database_arrays: Dict[str, Tuple[str, Tuple[int, ...]]]
    partitions: List[PartitionEntry] = field(default_factory=list)
    overflow: Optional[OverflowEntry] = None

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def blob_bytes(self) -> int:
        """Total compressed partition bytes on disk (overflow included)."""
        total = sum(p.blob_bytes for p in self.partitions)
        if self.overflow is not None:
            total += self.overflow.blob_bytes
        return int(total)

    @property
    def decoded_bytes(self) -> int:
        """Total bytes of every partition's decoded arrays."""
        return int(sum(p.decoded_bytes for p in self.partitions))

    @property
    def max_partition_bytes(self) -> int:
        """Largest single partition's blob + decoded footprint.

        The unit the streaming memory budget reasons in: a double-
        buffered pass holds at most two of these at once.
        """
        if not self.partitions:
            return 0
        return max(p.blob_bytes + p.decoded_bytes for p in self.partitions)

    @property
    def num_rows(self) -> int:
        return int(sum(p.num_rows for p in self.partitions))

    def validate_against(self, db: ProteinDatabase) -> None:
        """Reject the store if it was not built from exactly ``db``."""
        expect = compute_fingerprint(db, self.build)
        if expect != self.fingerprint:
            raise IndexStoreError(
                f"partitioned index store at {self.path} was built from a "
                f"different database or configuration (store fingerprint "
                f"{self.fingerprint[:12]}..., database fingerprint "
                f"{expect[:12]}...); rebuild with `repro index build "
                f"--partition-mb ...`"
            )

    # -- database + overflow ---------------------------------------------

    def load_database(self, mmap: bool = True) -> ProteinDatabase:
        """Open the stored database buffers (mmap read-only by default)."""
        bufs = []
        for name in _DB_BUFFERS:
            buf_path = self.path / DATABASE_DIR / f"{name}.npy"
            try:
                arr = np.load(buf_path, mmap_mode="r" if mmap else None)
            except FileNotFoundError:
                raise IndexStoreError(
                    f"partitioned store at {self.path} is missing database "
                    f"buffer {buf_path.name}"
                ) from None
            except (ValueError, OSError, EOFError) as exc:
                raise IndexStoreError(
                    f"partitioned store buffer {buf_path} is unreadable or "
                    f"truncated: {exc}"
                ) from None
            dtype, shape = self.database_arrays[name]
            if str(arr.dtype) != dtype or tuple(arr.shape) != shape:
                raise IndexStoreError(
                    f"database buffer {buf_path.name} has dtype/shape "
                    f"{arr.dtype}/{tuple(arr.shape)}, manifest says "
                    f"{dtype}/{shape}"
                )
            if not mmap:
                arr.flags.writeable = False
            bufs.append(arr)
        return ProteinDatabase.from_buffers(*bufs)

    def load_overflow(self) -> CandidateSpans:
        """Decode the out-of-envelope spans (mass-sorted)."""
        entry = self.overflow
        if entry is None or entry.count == 0:
            return CandidateSpans.empty()
        blob = self._read_blob(
            self.path / PARTITIONS_DIR / OVERFLOW_NAME,
            entry.blob_bytes,
            entry.sha256,
            "overflow blob",
        )
        cols: Dict[str, np.ndarray] = {}
        for section in entry.sections:
            buf = blob[section.offset : section.offset + section.nbytes]
            cols[section.name] = decode_array(
                buf,
                section.codec,
                _OVERFLOW_DTYPES[section.name],
                (entry.count,),
            )
        return CandidateSpans(
            cols["seq_index"],
            cols["start"],
            cols["stop"],
            cols["mass"],
            np.zeros(entry.count, dtype=np.float64),
        )

    # -- partition reads --------------------------------------------------

    def _read_blob(
        self, blob_path: Path, expect_bytes: int, expect_sha: str, what: str
    ) -> bytes:
        try:
            with open(blob_path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            raise IndexStoreError(
                f"partitioned store at {self.path} is missing {what} "
                f"{blob_path.name}"
            ) from None
        except OSError as exc:
            raise IndexStoreError(
                f"partitioned store {what} {blob_path} is unreadable: {exc}"
            ) from None
        if len(blob) != expect_bytes:
            raise IndexStoreError(
                f"partitioned store {what} {blob_path} is truncated: "
                f"{len(blob)} bytes on disk, directory says {expect_bytes}"
            )
        digest = hashlib.sha256(blob).hexdigest()
        if digest != expect_sha:
            raise IndexStoreError(
                f"partitioned store {what} {blob_path} is corrupt: SHA-256 "
                f"{digest[:12]}... does not match directory entry "
                f"{expect_sha[:12]}..."
            )
        return blob

    def read_partition_blob(self, i: int) -> bytes:
        """Read + checksum partition ``i``'s raw blob (no decode).

        The I/O half of a partition visit — what the prefetch thread
        runs.  Truncation or corruption raises
        :class:`~repro.errors.IndexStoreError` here, before any decode.
        """
        entry = self._entry(i)
        return self._read_blob(
            self.path / PARTITIONS_DIR / entry.name,
            entry.blob_bytes,
            entry.sha256,
            f"partition blob {i}",
        )

    def decode_partition_blob(self, i: int, blob: bytes) -> FragmentIndex:
        """Decode a checksummed blob into a partition FragmentIndex view."""
        entry = self._entry(i)
        layout = entry.layout
        arrays: Dict[str, np.ndarray] = {}
        for section in entry.sections:
            spec = layout.arrays.get(section.name)
            if spec is None:
                raise IndexStoreError(
                    f"partition {i} section {section.name!r} has no manifest "
                    f"entry"
                )
            buf = blob[section.offset : section.offset + section.nbytes]
            arrays[section.name] = decode_array(
                buf, section.codec, spec.dtype, spec.shape
            )
        _derive_posting_arrays(arrays, layout.num_rows)
        problems = layout.check_arrays(arrays)
        if problems:
            raise IndexStoreError(
                f"partition {i} of store {self.path} does not match its "
                f"manifest: " + "; ".join(problems)
            )
        return FragmentIndex.from_arrays(layout, arrays)

    def decode_partition(self, i: int) -> FragmentIndex:
        """Read + decode partition ``i`` in one step (no prefetch)."""
        return self.decode_partition_blob(i, self.read_partition_blob(i))

    def _entry(self, i: int) -> PartitionEntry:
        if not 0 <= i < self.num_partitions:
            raise IndexStoreError(
                f"partitioned store at {self.path} has {self.num_partitions} "
                f"partitions; partition {i} does not exist"
            )
        return self.partitions[i]

    # -- reporting ---------------------------------------------------------

    def provenance(self, source: str) -> Dict[str, Any]:
        """Index-provenance record for RunReport extras."""
        return {
            "source": source,
            "fingerprint": self.fingerprint,
            "schema": self.schema,
            "build": dict(self.build),
        }

    def describe(self) -> Dict[str, Any]:
        """Inspection summary (what ``repro index inspect`` prints)."""
        overflow = self.overflow
        return {
            "path": str(self.path),
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "created": self.created,
            "build": dict(self.build),
            "num_partitions": self.num_partitions,
            "num_rows": self.num_rows,
            "blob_bytes": self.blob_bytes,
            "decoded_bytes": self.decoded_bytes,
            "max_partition_bytes": self.max_partition_bytes,
            "overflow_spans": overflow.count if overflow is not None else 0,
            "partitions": [
                {
                    "name": p.name,
                    "mass_lo": p.mass_lo,
                    "mass_hi": p.mass_hi,
                    "num_rows": p.num_rows,
                    "postings": p.num_fragments,
                    "blob_bytes": p.blob_bytes,
                    "decoded_bytes": p.decoded_bytes,
                }
                for p in self.partitions
            ],
        }


def save_partitioned_index(
    db: ProteinDatabase,
    path: Union[str, Path],
    *,
    partition_mb: float = 32.0,
    fragment_tolerance: float = 0.5,
    max_length: int = 48,
    monoisotopic: bool = True,
    overwrite: bool = False,
) -> PartitionedIndex:
    """Build ``db``'s partitioned out-of-core index under ``path``.

    Enumerates the precursor-major span set once, cuts it into
    mass-contiguous partitions of ~``partition_mb`` MiB decoded size,
    builds each partition with :meth:`IndexBuilder.build_partition`,
    and writes the directory format described in the module docstring.
    The write is atomic (tmp-sibling assembly + rename) and durable
    (per-file and directory fsync).  Peak builder memory is one
    partition's arrays, not the whole index.
    """
    path = Path(path)
    if path.exists() and not overwrite:
        raise IndexStoreError(
            f"index store path {path} already exists (pass overwrite to "
            f"replace it)"
        )
    if partition_mb <= 0:
        raise IndexStoreError(
            f"partition_mb must be > 0, got {partition_mb}"
        )
    build = {
        "fragment_tolerance": float(fragment_tolerance),
        "max_length": int(max_length),
        "monoisotopic": bool(monoisotopic),
        "partition_mb": float(partition_mb),
    }
    fingerprint = compute_fingerprint(db, build)
    builder = IndexBuilder(
        fragment_tolerance=fragment_tolerance,
        max_length=max_length,
        monoisotopic=monoisotopic,
    )
    indexable, overflow_spans = enumerate_spans(db, max_length)
    slices = partition_boundaries(
        indexable.lengths, int(partition_mb * (1 << 20))
    )
    metrics = get_metrics()
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        db_dir = tmp / DATABASE_DIR
        db_dir.mkdir()
        database_arrays: Dict[str, Any] = {}
        for name, arr in zip(_DB_BUFFERS, db.to_buffers()):
            buf_path = db_dir / f"{name}.npy"
            with open(buf_path, "wb") as fh:
                np.save(fh, arr)
                fh.flush()
                os.fsync(fh.fileno())
            database_arrays[name] = {
                "dtype": str(arr.dtype),
                "shape": list(arr.shape),
            }
        _fsync_dir(db_dir)

        part_dir = tmp / PARTITIONS_DIR
        part_dir.mkdir()
        entries: List[PartitionEntry] = []
        for i, (lo, hi) in enumerate(slices):
            part_spans = indexable.take(np.arange(lo, hi))
            with metrics.span(
                "partition.build", category="store", partition=i, rows=hi - lo
            ):
                layout, arrays = builder.build_partition(db, part_spans)
            blob, sections = _encode_blob(arrays, PARTITION_STORED_ARRAYS)
            name = _partition_filename(i)
            blob_path = part_dir / name
            with open(blob_path, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            entries.append(
                PartitionEntry(
                    name=name,
                    mass_lo=float(part_spans.mass[0]),
                    mass_hi=float(part_spans.mass[-1]),
                    num_rows=layout.num_rows,
                    num_fragments=layout.num_fragments,
                    blob_bytes=len(blob),
                    decoded_bytes=int(layout.nbytes),
                    sha256=hashlib.sha256(blob).hexdigest(),
                    layout=layout,
                    sections=sections,
                )
            )

        overflow_cols = {
            "seq_index": overflow_spans.seq_index,
            "start": overflow_spans.start,
            "stop": overflow_spans.stop,
            "mass": overflow_spans.mass,
        }
        over_blob, over_sections = _encode_blob(
            overflow_cols, [name for name, _codec in _OVERFLOW_SECTIONS]
        )
        with open(part_dir / OVERFLOW_NAME, "wb") as fh:
            fh.write(over_blob)
            fh.flush()
            os.fsync(fh.fileno())
        overflow_entry = OverflowEntry(
            count=len(overflow_spans),
            blob_bytes=len(over_blob),
            sha256=hashlib.sha256(over_blob).hexdigest(),
            sections=over_sections,
        )
        _fsync_dir(part_dir)

        header = {
            "schema": PARTITIONED_SCHEMA,
            "fingerprint": fingerprint,
            "created": time.time(),
            "build": build,
            "database": database_arrays,
            "partitions": [entry.to_dict() for entry in entries],
            "overflow": overflow_entry.to_dict(),
        }
        with open(tmp / HEADER_NAME, "w") as fh:
            json.dump(header, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(tmp)
        if path.exists():  # overwrite: drop the stale store just before rename
            shutil.rmtree(path)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return open_partitioned_index(path)


def open_partitioned_index(path: Union[str, Path]) -> PartitionedIndex:
    """Open and header-validate a partitioned store directory.

    Cheap: reads only ``header.json`` (the partition directory); no
    blob or database buffer is touched until a partition is streamed.
    """
    path = Path(path)
    header_path = path / HEADER_NAME
    if not path.is_dir() or not header_path.is_file():
        raise IndexStoreError(
            f"no index store at {path} (expected a directory containing "
            f"{HEADER_NAME}; build one with `repro index build`)"
        )
    try:
        with open(header_path) as fh:
            header = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexStoreError(
            f"index store header {header_path} is unreadable: {exc}"
        ) from None
    if not isinstance(header, dict):
        raise IndexStoreError(
            f"index store header {header_path} is not a JSON object"
        )
    schema = header.get("schema")
    if not isinstance(schema, str) or not schema.startswith(
        "repro.index_store_partitioned/"
    ):
        raise IndexStoreError(
            f"unrecognized partitioned store schema {schema!r} in {header_path}"
        )
    if schema != PARTITIONED_SCHEMA:
        raise IndexStoreError(
            f"unsupported partitioned store schema {schema!r} in "
            f"{header_path} (this build reads {PARTITIONED_SCHEMA})"
        )
    try:
        fingerprint = header["fingerprint"]
        build = header["build"]
        created = float(header.get("created", 0.0))
        if not isinstance(fingerprint, str) or not isinstance(build, dict):
            raise TypeError("fingerprint/build have wrong types")
        database_arrays = {
            name: (str(spec["dtype"]), tuple(int(d) for d in spec["shape"]))
            for name, spec in header["database"].items()
        }
        partitions = [
            PartitionEntry.from_dict(entry) for entry in header["partitions"]
        ]
        overflow = OverflowEntry.from_dict(header["overflow"])
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        if isinstance(exc, IndexStoreError):
            raise
        raise IndexStoreError(
            f"malformed partitioned store header {header_path}: {exc!r}"
        ) from None
    missing = [name for name in _DB_BUFFERS if name not in database_arrays]
    if missing:
        raise IndexStoreError(
            f"partitioned store header {header_path} is missing database "
            f"buffers {missing}"
        )
    return PartitionedIndex(
        path=path,
        schema=schema,
        fingerprint=fingerprint,
        build=build,
        created=created,
        database_arrays=database_arrays,
        partitions=partitions,
        overflow=overflow,
    )


def open_any_index(
    path: Union[str, Path]
) -> Union[StoredIndex, PartitionedIndex]:
    """Open a store directory of either schema by dispatching on its header.

    The single entry point CLI / engines / service use when the store
    flavor is the user's choice: resident stores
    (``repro.index_store/1``) come back as :class:`StoredIndex`,
    partitioned stores as :class:`PartitionedIndex`.
    """
    path = Path(path)
    header_path = path / HEADER_NAME
    if not path.is_dir() or not header_path.is_file():
        raise IndexStoreError(
            f"no index store at {path} (expected a directory containing "
            f"{HEADER_NAME}; build one with `repro index build`)"
        )
    try:
        with open(header_path) as fh:
            schema = json.load(fh).get("schema")
    except (OSError, json.JSONDecodeError, AttributeError) as exc:
        raise IndexStoreError(
            f"index store header {header_path} is unreadable: {exc}"
        ) from None
    if isinstance(schema, str) and schema.startswith(
        "repro.index_store_partitioned/"
    ):
        return open_partitioned_index(path)
    return open_index(path)


@dataclass
class StreamStats:
    """Work and overlap counters from one streaming pass."""

    partitions: int = 0
    bytes_read: int = 0
    bytes_decoded: int = 0
    prefetch_hits: int = 0
    prefetch_stalls: int = 0
    io_seconds: float = 0.0
    decode_seconds: float = 0.0
    stall_seconds: float = 0.0

    def merge(self, other: "StreamStats") -> None:
        self.partitions += other.partitions
        self.bytes_read += other.bytes_read
        self.bytes_decoded += other.bytes_decoded
        self.prefetch_hits += other.prefetch_hits
        self.prefetch_stalls += other.prefetch_stalls
        self.io_seconds += other.io_seconds
        self.decode_seconds += other.decode_seconds
        self.stall_seconds += other.stall_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "partitions": self.partitions,
            "bytes_read": self.bytes_read,
            "bytes_decoded": self.bytes_decoded,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_stalls": self.prefetch_stalls,
            "io_seconds": self.io_seconds,
            "decode_seconds": self.decode_seconds,
            "stall_seconds": self.stall_seconds,
        }


@dataclass
class StreamedPartition:
    """One decoded partition yielded by :class:`StreamingIndexReader`."""

    pid: int
    entry: PartitionEntry
    index: FragmentIndex


class StreamingIndexReader:
    """Iterate a store's partitions with background read-ahead.

    A background thread reads (and checksums) the *next* partition's
    blob while the caller decodes and scores the current one — a double
    buffer of two partitions, which is all the paper's overlap argument
    needs when queries visit each partition exactly once in mass order.

    ``memory_budget_mb`` bounds the bytes the pass may hold (current
    decoded arrays + prefetched blob).  A budget smaller than two
    partitions degrades gracefully to serial reads (every visit stalls);
    a budget smaller than *one* partition is refused up front with
    :class:`~repro.errors.IndexStoreError` — the store must be rebuilt
    with a smaller ``--partition-mb``.

    I/O failures in the prefetch thread (truncated blob, checksum
    mismatch) are re-raised on the consuming thread at the partition
    they struck, typed, so a mid-stream store outage surfaces exactly
    like a mid-stream resident read error would.
    """

    def __init__(
        self,
        store: PartitionedIndex,
        partition_ids: Optional[Sequence[int]] = None,
        *,
        memory_budget_mb: Optional[float] = None,
        prefetch: bool = True,
    ):
        self.store = store
        self.ids = (
            list(range(store.num_partitions))
            if partition_ids is None
            else [int(i) for i in partition_ids]
        )
        for pid in self.ids:
            store._entry(pid)  # typed range check up front
        self.stats = StreamStats()
        self._budget = (
            int(memory_budget_mb * (1 << 20))
            if memory_budget_mb is not None
            else None
        )
        if self._budget is not None and self.ids:
            worst = max(
                self.store.partitions[pid].blob_bytes
                + self.store.partitions[pid].decoded_bytes
                for pid in self.ids
            )
            if worst > self._budget:
                raise IndexStoreError(
                    f"streaming memory budget {self._budget} B cannot hold "
                    f"partition of {worst} B; rebuild the store with a "
                    f"smaller --partition-mb or raise the budget"
                )
        self._prefetch = prefetch and len(self.ids) > 0
        self._queue: "queue.Queue" = queue.Queue(maxsize=1)
        self._held = threading.Semaphore(2)  # current + prefetched
        self._resident = 0
        self._resident_lock = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        if self._prefetch:
            self._thread = threading.Thread(
                target=self._prefetch_loop, name="stream-prefetch", daemon=True
            )
            self._thread.start()

    def _cost(self, pid: int) -> int:
        entry = self.store.partitions[pid]
        return entry.blob_bytes + entry.decoded_bytes

    def _reserve(self, pid: int) -> None:
        if self._budget is None:
            return
        cost = self._cost(pid)
        with self._resident_lock:
            while self._resident + cost > self._budget:
                self._resident_lock.wait()
            self._resident += cost

    def _release(self, pid: int) -> None:
        if self._budget is None:
            return
        with self._resident_lock:
            self._resident -= self._cost(pid)
            self._resident_lock.notify_all()

    def _prefetch_loop(self) -> None:
        for pid in self.ids:
            self._held.acquire()
            self._reserve(pid)
            t0 = time.perf_counter()
            try:
                blob = self.store.read_partition_blob(pid)
            except BaseException as exc:  # re-raised on the consumer side
                self._queue.put((pid, None, exc, 0.0))
                return
            self._queue.put((pid, blob, None, time.perf_counter() - t0))
        self._queue.put((None, None, None, 0.0))

    def __iter__(self) -> Iterator[StreamedPartition]:
        metrics = get_metrics()
        prev: Optional[int] = None
        if not self._prefetch:
            for pid in self.ids:
                if prev is not None:
                    self._release(prev)
                self._reserve(pid)
                yield self._decode_serial(pid, metrics)
                prev = pid
            if prev is not None:
                self._release(prev)
            return
        while True:
            # the *previous* partition's arrays are dead once the caller
            # asks for the next one; release its budget before blocking
            # on the queue — under a tight budget the prefetcher may be
            # waiting on exactly this release to read the next blob
            if prev is not None:
                self._held.release()
                self._release(prev)
                prev = None
            if self._queue.empty():
                self.stats.prefetch_stalls += 1
                t0 = time.perf_counter()
                with metrics.span("stream.stall", category="stream"):
                    item = self._queue.get()
                self.stats.stall_seconds += time.perf_counter() - t0
            else:
                self.stats.prefetch_hits += 1
                item = self._queue.get()
            pid, blob, error, io_seconds = item
            if pid is None:
                return
            if error is not None:
                raise error
            self.stats.io_seconds += io_seconds
            self.stats.bytes_read += len(blob)
            entry = self.store.partitions[pid]
            t0 = time.perf_counter()
            with metrics.span(
                "stream.decode",
                category="stream",
                partition=pid,
                blob_bytes=entry.blob_bytes,
            ):
                index = self.store.decode_partition_blob(pid, blob)
            self.stats.decode_seconds += time.perf_counter() - t0
            self.stats.bytes_decoded += entry.decoded_bytes
            self.stats.partitions += 1
            self._record(metrics, entry)
            prev = pid
            yield StreamedPartition(pid=pid, entry=entry, index=index)

    def _decode_serial(self, pid: int, metrics) -> StreamedPartition:
        entry = self.store.partitions[pid]
        t0 = time.perf_counter()
        blob = self.store.read_partition_blob(pid)
        self.stats.io_seconds += time.perf_counter() - t0
        self.stats.bytes_read += len(blob)
        t0 = time.perf_counter()
        with metrics.span(
            "stream.decode",
            category="stream",
            partition=pid,
            blob_bytes=entry.blob_bytes,
        ):
            index = self.store.decode_partition_blob(pid, blob)
        self.stats.decode_seconds += time.perf_counter() - t0
        self.stats.bytes_decoded += entry.decoded_bytes
        self.stats.partitions += 1
        self.stats.prefetch_stalls += 1  # serial reads always wait on I/O
        self.stats.stall_seconds += self.stats.io_seconds
        self._record(metrics, entry)
        return StreamedPartition(pid=pid, entry=entry, index=index)

    def _record(self, metrics, entry: PartitionEntry) -> None:
        metrics.count("stream.partitions")
        metrics.count("stream.bytes_read", entry.blob_bytes)
        metrics.count("stream.bytes_decoded", entry.decoded_bytes)

    def close(self) -> None:
        """Drain the prefetch thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._thread = None
        # unblock the producer whatever it is waiting on, then drain
        with self._resident_lock:
            self._resident = -(1 << 62)
            self._resident_lock.notify_all()
        self._held.release()
        self._held.release()
        while thread.is_alive():
            try:
                self._queue.get_nowait()
            except queue.Empty:
                time.sleep(0.001)
        metrics = get_metrics()
        metrics.count("stream.prefetch_hits", self.stats.prefetch_hits)
        metrics.count("stream.prefetch_stalls", self.stats.prefetch_stalls)

    def __enter__(self) -> "StreamingIndexReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
