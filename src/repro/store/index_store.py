"""Directory-based persistent store for built fragment indexes.

On-disk format (schema ``repro.index_store/1``)::

    <index_dir>/
        header.json             # store schema, fingerprint, build config,
                                # one IndexLayout manifest per shard
        shard_00000/
            shard_residues.npy  # one standard .npy file per manifest array
            shard_offsets.npy
            ...
        shard_00001/
            ...

``header.json`` is the store's single source of truth: the schema
version, the content *fingerprint* (SHA-256 over the source database's
flat buffers plus the canonical build-config JSON), the build
parameters, and a full dtype/shape manifest
(:class:`~repro.index.layout.IndexLayout`) per shard.  Each manifest
array lives in its own ``.npy`` file named ``<array>.npy`` inside the
shard directory — ``np.load(..., mmap_mode="r")`` maps it read-only with
zero copy, and the .npy header doubles as an on-disk dtype/shape check.

The fingerprint contract: a store built from database *D* with build
config *C* is valid only for searches over exactly (*D*, *C*-compatible
options).  ``StoredIndex.validate_against`` recomputes the fingerprint
from the caller's database and rejects mismatches with
:class:`~repro.errors.IndexStoreError` — a stale index is *refused*,
never silently served, because the build-once/load-many contract is
that a loaded index scores bitwise identically to an in-process
rebuild.

Writes are atomic-ish *and durable*: the directory is assembled under a
temporary sibling name — every buffer and the header fsync'd, then the
directories themselves — before being renamed into place and the parent
directory fsync'd.  Readers never observe a half-written store, and a
power cut after ``save_index`` returns cannot leave torn buffers behind
the final name.  Should torn or truncated buffers appear anyway (a
copy interrupted mid-flight, bit rot), loading raises a typed
:class:`~repro.errors.IndexStoreError` — never a raw numpy or OS error.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.chem.protein import ProteinDatabase
from repro.core.partition import partition_database
from repro.errors import IndexStoreError
from repro.index.fragment_index import FragmentIndex, IndexBuilder
from repro.index.layout import ARRAY_NAMES, IndexLayout
from repro.obs.metrics import get_metrics

#: schema identifier for the store directory format; readers reject
#: other versions rather than guessing at semantics
STORE_SCHEMA = "repro.index_store/1"

HEADER_NAME = "header.json"


def _shard_dirname(i: int) -> str:
    return f"shard_{i:05d}"


def _fsync_dir(path: Path) -> None:
    """Flush a directory's entries (names, inodes) to stable storage.

    Some platforms/filesystems refuse fsync on directory descriptors;
    that loses durability, not correctness, so it is tolerated.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def compute_fingerprint(db: ProteinDatabase, build: Dict[str, Any]) -> str:
    """SHA-256 content fingerprint of (database buffers, build config).

    The digest covers the transportable flat buffers (residues, offsets,
    ids — exactly what determines search results) and the canonical JSON
    of the build config, so any change to either produces a different
    store identity.  Names are metadata and excluded, matching
    ``ProteinDatabase.nbytes`` accounting.
    """
    h = hashlib.sha256()
    h.update(STORE_SCHEMA.encode() + b"\x00")
    h.update(json.dumps(build, sort_keys=True).encode() + b"\x00")
    for arr in db.to_buffers():
        h.update(np.ascontiguousarray(arr).tobytes())
        h.update(b"\x00")
    return h.hexdigest()


def rebuilt_provenance(db: ProteinDatabase, build: Dict[str, Any]) -> Dict[str, Any]:
    """Index-provenance record for a run that built its index in-process.

    Mirrors :meth:`StoredIndex.provenance` with ``source="rebuilt"`` and
    a freshly computed fingerprint, so a rebuilt run and a loaded run of
    the same (database, build config) carry the *same* fingerprint —
    reports differ only in ``source``.
    """
    return {
        "source": "rebuilt",
        "fingerprint": compute_fingerprint(db, build),
        "schema": STORE_SCHEMA,
        "build": dict(build),
    }


@dataclass
class LoadedShard:
    """One shard opened from a store: the shard, its wired index view,
    and what the load cost (for ShardStats / CostModel accounting)."""

    shard: ProteinDatabase
    index: FragmentIndex
    seconds: float  # wall time spent opening + wiring
    nbytes: int  # bytes mapped (full manifest, shard buffers included)


@dataclass
class StoredIndex:
    """Handle to an opened (validated-header) index store directory."""

    path: Path
    schema: str
    fingerprint: str
    build: Dict[str, Any]
    created: float
    layouts: List[IndexLayout] = field(default_factory=list)

    @property
    def num_shards(self) -> int:
        return len(self.layouts)

    @property
    def nbytes(self) -> int:
        """Total mapped bytes across every shard's full manifest."""
        return sum(layout.nbytes for layout in self.layouts)

    @property
    def index_nbytes(self) -> int:
        """Index-proper bytes (manifests minus the shard buffers)."""
        return sum(layout.index_nbytes for layout in self.layouts)

    def shard_dir(self, i: int) -> Path:
        return self.path / _shard_dirname(i)

    def validate_against(self, db: ProteinDatabase) -> None:
        """Reject the store if it was not built from exactly ``db``.

        Recomputes the content fingerprint from the caller's database
        and this store's recorded build config; a mismatch means the
        database changed (or the store belongs to a different one) and
        loading would serve silently wrong results.
        """
        expect = compute_fingerprint(db, self.build)
        if expect != self.fingerprint:
            raise IndexStoreError(
                f"index store at {self.path} was built from a different "
                f"database or configuration (store fingerprint "
                f"{self.fingerprint[:12]}..., database fingerprint "
                f"{expect[:12]}...); rebuild with `repro index build`"
            )

    def load_shard(self, i: int, mmap: bool = True) -> LoadedShard:
        """Open shard ``i``'s arrays and wire a read-only FragmentIndex.

        With ``mmap=True`` (the default) every array is an
        ``np.memmap`` view — the OS pages postings in on demand and
        shares clean pages across processes.  With ``mmap=False``
        buffers are read onto the heap (still marked non-writable).
        Either way the arrays are dtype/shape-checked against the
        manifest; truncated or swapped buffers raise
        :class:`IndexStoreError` instead of serving wrong postings.
        """
        if not 0 <= i < self.num_shards:
            raise IndexStoreError(
                f"index store at {self.path} has {self.num_shards} shards; "
                f"shard {i} does not exist"
            )
        layout = self.layouts[i]
        shard_dir = self.shard_dir(i)
        metrics = get_metrics()
        start = time.perf_counter()
        arrays: Dict[str, np.ndarray] = {}
        with metrics.span("index.load", category="store", shard=i, mmap=mmap):
            for name in ARRAY_NAMES:
                buf_path = shard_dir / f"{name}.npy"
                try:
                    arr = np.load(buf_path, mmap_mode="r" if mmap else None)
                except FileNotFoundError:
                    raise IndexStoreError(
                        f"index store at {self.path} is missing buffer "
                        f"{buf_path.name} for shard {i}"
                    ) from None
                except (ValueError, OSError, EOFError) as exc:
                    # numpy reports truncation inconsistently: a torn
                    # .npy header raises ValueError, a payload cut short
                    # raises EOFError (heap load) or ValueError (mmap);
                    # all of them mean the same thing here
                    raise IndexStoreError(
                        f"index store buffer {buf_path} is unreadable or "
                        f"truncated: {exc}"
                    ) from None
                if not mmap:
                    arr.flags.writeable = False
                arrays[name] = arr
            problems = layout.check_arrays(arrays)
            if problems:
                raise IndexStoreError(
                    f"index store shard {i} at {shard_dir} does not match "
                    f"its manifest: " + "; ".join(problems)
                )
            index = FragmentIndex.from_arrays(layout, arrays)
        seconds = time.perf_counter() - start
        nbytes = int(layout.nbytes)
        metrics.count("index.mmap_bytes", nbytes)
        metrics.observe("index.load_time", seconds)
        return LoadedShard(
            shard=index.shard, index=index, seconds=seconds, nbytes=nbytes
        )

    def load_all(self, mmap: bool = True) -> List[LoadedShard]:
        return [self.load_shard(i, mmap=mmap) for i in range(self.num_shards)]

    def provenance(self, source: str) -> Dict[str, Any]:
        """Index-provenance record for RunReport extras.

        ``source`` is ``"loaded"`` (served from this store) or
        ``"rebuilt"`` (an equivalent in-process build).
        """
        return {
            "source": source,
            "fingerprint": self.fingerprint,
            "schema": self.schema,
            "build": dict(self.build),
        }

    def describe(self) -> Dict[str, Any]:
        """Inspection summary (what ``repro index inspect`` prints)."""
        return {
            "path": str(self.path),
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "created": self.created,
            "build": dict(self.build),
            "num_shards": self.num_shards,
            "total_bytes": int(self.nbytes),
            "index_bytes": int(self.index_nbytes),
            "shards": [
                {
                    "dir": _shard_dirname(i),
                    "num_rows": layout.num_rows,
                    "num_fragments": layout.num_fragments,
                    "bytes": int(layout.nbytes),
                }
                for i, layout in enumerate(self.layouts)
            ],
        }


def save_index(
    db: ProteinDatabase,
    path: Union[str, Path],
    *,
    num_shards: int = 1,
    fragment_tolerance: float = 0.5,
    max_length: int = 48,
    monoisotopic: bool = True,
    overwrite: bool = False,
) -> StoredIndex:
    """Build ``db``'s fragment index and persist it under ``path``.

    Partitions the database byte-balanced into ``num_shards`` pieces
    (empty shards dropped, mirroring the engines), builds each shard
    with one :class:`IndexBuilder`, and writes the directory format
    described in the module docstring.  The write is atomic-ish: the
    store is assembled under a temporary sibling directory and renamed
    into place.  Returns the opened :class:`StoredIndex`.
    """
    path = Path(path)
    if path.exists() and not overwrite:
        raise IndexStoreError(
            f"index store path {path} already exists (pass overwrite to replace it)"
        )
    build = {
        "fragment_tolerance": float(fragment_tolerance),
        "max_length": int(max_length),
        "monoisotopic": bool(monoisotopic),
        "num_shards": int(num_shards),
    }
    fingerprint = compute_fingerprint(db, build)
    shards = [s for s in partition_database(db, num_shards) if len(s) > 0]
    builder = IndexBuilder(
        fragment_tolerance=fragment_tolerance,
        max_length=max_length,
        monoisotopic=monoisotopic,
    )
    metrics = get_metrics()
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        layouts: List[IndexLayout] = []
        for i, shard in enumerate(shards):
            with metrics.span("index.build", category="store", shard=i):
                built = builder.build(shard)
            shard_dir = tmp / _shard_dirname(i)
            shard_dir.mkdir()
            for name in ARRAY_NAMES:
                buf_path = shard_dir / f"{name}.npy"
                with open(buf_path, "wb") as fh:
                    np.save(fh, built.arrays[name])
                    fh.flush()
                    os.fsync(fh.fileno())
            _fsync_dir(shard_dir)
            layouts.append(built.layout)
        header = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint,
            "created": time.time(),
            "build": build,
            "shards": [
                {"dir": _shard_dirname(i), "layout": layout.to_dict()}
                for i, layout in enumerate(layouts)
            ],
        }
        with open(tmp / HEADER_NAME, "w") as fh:
            json.dump(header, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(tmp)
        if path.exists():  # overwrite: drop the stale store just before rename
            shutil.rmtree(path)
        os.replace(tmp, path)
        _fsync_dir(path.parent)  # persist the rename itself
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return open_index(path)


def open_index(path: Union[str, Path]) -> StoredIndex:
    """Open and header-validate an index store directory.

    Cheap: reads only ``header.json`` (schema + manifests); no buffer
    is touched until :meth:`StoredIndex.load_shard`.  Raises
    :class:`IndexStoreError` for a missing directory, unreadable or
    malformed header, or an unsupported schema version.
    """
    path = Path(path)
    header_path = path / HEADER_NAME
    if not path.is_dir() or not header_path.is_file():
        raise IndexStoreError(
            f"no index store at {path} (expected a directory containing "
            f"{HEADER_NAME}; build one with `repro index build`)"
        )
    try:
        with open(header_path) as fh:
            header = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexStoreError(f"index store header {header_path} is unreadable: {exc}") from None
    if not isinstance(header, dict):
        raise IndexStoreError(f"index store header {header_path} is not a JSON object")
    schema = header.get("schema")
    if not isinstance(schema, str) or not schema.startswith("repro.index_store/"):
        raise IndexStoreError(f"unrecognized index store schema {schema!r} in {header_path}")
    if schema != STORE_SCHEMA:
        raise IndexStoreError(
            f"unsupported index store schema {schema!r} in {header_path} "
            f"(this build reads {STORE_SCHEMA})"
        )
    try:
        fingerprint = header["fingerprint"]
        build = header["build"]
        created = float(header.get("created", 0.0))
        shard_entries = header["shards"]
        if not isinstance(fingerprint, str) or not isinstance(build, dict):
            raise TypeError("fingerprint/build have wrong types")
        layouts = [IndexLayout.from_dict(entry["layout"]) for entry in shard_entries]
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        if isinstance(exc, IndexStoreError):
            raise
        raise IndexStoreError(f"malformed index store header {header_path}: {exc!r}") from None
    return StoredIndex(
        path=path,
        schema=schema,
        fingerprint=fingerprint,
        build=build,
        created=created,
        layouts=layouts,
    )


def build_config_from_search(
    *,
    num_shards: int,
    fragment_tolerance: float,
    index_max_length: int,
    monoisotopic: bool = True,
) -> Dict[str, Any]:
    """Canonical build-config dict for fingerprinting a search setup."""
    return {
        "fragment_tolerance": float(fragment_tolerance),
        "max_length": int(index_max_length),
        "monoisotopic": bool(monoisotopic),
        "num_shards": int(num_shards),
    }
