"""Persistent, memory-mappable storage for built fragment indexes.

Build once with :func:`save_index` (or ``repro index build``), then any
number of searches — in any number of processes — :func:`open_index`
the directory and serve scores from read-only ``np.memmap`` views that
are bitwise identical to an in-process rebuild.  See
``docs/index_persistence.md`` for the on-disk format and the
fingerprint contract.
"""

from repro.store.index_store import (
    HEADER_NAME,
    STORE_SCHEMA,
    LoadedShard,
    StoredIndex,
    build_config_from_search,
    compute_fingerprint,
    open_index,
    rebuilt_provenance,
    save_index,
)
from repro.store.partitioned import (
    PARTITIONED_SCHEMA,
    PartitionedIndex,
    StreamingIndexReader,
    StreamStats,
    open_any_index,
    open_partitioned_index,
    save_partitioned_index,
)

__all__ = [
    "HEADER_NAME",
    "PARTITIONED_SCHEMA",
    "STORE_SCHEMA",
    "LoadedShard",
    "PartitionedIndex",
    "StoredIndex",
    "StreamStats",
    "StreamingIndexReader",
    "build_config_from_search",
    "compute_fingerprint",
    "open_any_index",
    "open_index",
    "open_partitioned_index",
    "rebuilt_provenance",
    "save_index",
    "save_partitioned_index",
]
