"""Minimal FASTA reader/writer.

The paper's loader reads "the database sequence file in parallel such
that processor P_i receives roughly the i-th N/p byte chunk of the file"
(Algorithm A, step A1).  :func:`read_fasta_chunk` implements exactly that
access pattern — seek to a byte offset, then repair to the next record
boundary — so the byte-balanced parallel loading path can be exercised
against real files, not only in-memory databases.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator, List, TextIO, Union

from repro.chem.protein import ProteinDatabase, ProteinRecord
from repro.errors import FastaError

_PathOrHandle = Union[str, os.PathLike, TextIO]


def parse_fasta(text: str) -> List[ProteinRecord]:
    """Parse FASTA-formatted text into records."""
    return list(_iter_records(io.StringIO(text)))


def read_fasta(path: _PathOrHandle) -> ProteinDatabase:
    """Read a whole FASTA file into a :class:`ProteinDatabase`."""
    if hasattr(path, "read"):
        return ProteinDatabase.from_records(_iter_records(path))  # type: ignore[arg-type]
    with open(path, "r", encoding="ascii") as fh:
        return ProteinDatabase.from_records(_iter_records(fh))


def write_fasta(path: _PathOrHandle, database: ProteinDatabase, width: int = 60) -> None:
    """Write a database as FASTA with lines wrapped at ``width`` residues."""
    own = not hasattr(path, "write")
    fh: TextIO = open(path, "w", encoding="ascii") if own else path  # type: ignore[assignment]
    try:
        for record in database:
            fh.write(f">{record.name}\n")
            seq = record.sequence
            for i in range(0, len(seq), width):
                fh.write(seq[i : i + width])
                fh.write("\n")
    finally:
        if own:
            fh.close()


def read_fasta_chunk(path: Union[str, os.PathLike], start: int, stop: int) -> List[ProteinRecord]:
    """Read the records whose header line starts in byte range ``[start, stop)``.

    This reproduces the paper's parallel loading rule: every record
    belongs to exactly one chunk (the one containing its ``>`` header),
    and a reader that lands mid-record skips forward to the next header.
    Reading all chunks of a partition therefore yields every record
    exactly once, with no overlap — the boundary-repair property the
    paper notes as "care is taken to ensure sequences at the boundaries
    are fully read".
    """
    if start < 0 or stop < start:
        raise FastaError(f"invalid byte range [{start}, {stop})")
    records: List[ProteinRecord] = []
    with open(path, "rb") as fh:
        fh.seek(start)
        if start > 0:
            # We may have landed mid-line; the partial line belongs to the
            # previous chunk's reader, so discard through the next newline.
            fh.readline()
        # Skip sequence lines until the first header at or after start.
        pos = fh.tell()
        line = fh.readline()
        while line and not line.startswith(b">"):
            pos = fh.tell()
            line = fh.readline()
        while line:
            if pos >= stop:
                break  # this header belongs to the next chunk
            header = line[1:].strip().decode("ascii")
            seq_parts: List[bytes] = []
            pos = fh.tell()
            line = fh.readline()
            while line and not line.startswith(b">"):
                seq_parts.append(line.strip())
                pos = fh.tell()
                line = fh.readline()
            records.append(ProteinRecord(header, b"".join(seq_parts).decode("ascii")))
    return records


def _iter_records(fh: Iterable[str]) -> Iterator[ProteinRecord]:
    name = None
    parts: List[str] = []
    for line in fh:
        line = line.rstrip("\n")
        if line.startswith(">"):
            if name is not None:
                yield ProteinRecord(name, "".join(parts))
            name = line[1:].strip()
            parts = []
        elif line:
            if name is None:
                raise FastaError("FASTA content before first '>' header")
            parts.append(line.strip())
    if name is not None:
        yield ProteinRecord(name, "".join(parts))
