"""Protein records and the flat-buffer protein database.

:class:`ProteinDatabase` is the central data structure of the library.
It mirrors the storage model the paper's algorithms operate on: all
residues live in one contiguous byte buffer (``uint8``), with an offsets
array delimiting sequences.  That layout is what makes the paper's
operations natural and cheap:

* *byte-balanced partitioning* — "processor P_i receives roughly the i-th
  N/p byte chunk of the file" (Algorithm A, step A1) is a split of the
  flat buffer at sequence boundaries;
* *database transport* — shipping a shard to another rank is a transfer
  of two flat arrays whose byte size we can account exactly;
* *vectorized mass computation* — parent masses of all sequences come
  from one cumulative sum over the buffer plus a gather at offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.chem.amino_acids import decode_sequence, encode_sequence, mass_table
from repro.constants import WATER_MASS
from repro.errors import InvalidSequenceError


@dataclass(frozen=True)
class ProteinRecord:
    """A single named protein sequence (user-facing convenience type)."""

    name: str
    sequence: str

    def __post_init__(self) -> None:
        if not self.sequence:
            raise InvalidSequenceError(f"protein {self.name!r} has empty sequence")

    def __len__(self) -> int:
        return len(self.sequence)


class ProteinDatabase:
    """An immutable collection of protein sequences in flat-buffer form.

    Attributes:
        residues: ``uint8`` array of concatenated residue codes (length N).
        offsets: ``int64`` array of length ``n + 1``; sequence ``i``
            occupies ``residues[offsets[i]:offsets[i + 1]]``.
        ids: ``int64`` array of global sequence identifiers.  Shards and
            sorted permutations preserve these, so hits can always be
            reported in terms of the original database regardless of how
            the data was redistributed.
    """

    __slots__ = ("residues", "offsets", "ids", "_parent_masses", "_names")

    def __init__(
        self,
        residues: np.ndarray,
        offsets: np.ndarray,
        ids: Optional[np.ndarray] = None,
        names: Optional[Sequence[str]] = None,
        _parent_masses: Optional[np.ndarray] = None,
    ):
        residues = np.ascontiguousarray(residues, dtype=np.uint8)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) == 0 or offsets[0] != 0:
            raise ValueError("offsets must be 1-D, non-empty, and start at 0")
        if offsets[-1] != len(residues):
            raise ValueError(
                f"offsets end at {offsets[-1]} but buffer has {len(residues)} residues"
            )
        if np.any(np.diff(offsets) <= 0):
            raise ValueError("offsets must be strictly increasing (no empty sequences)")
        n = len(offsets) - 1
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if len(ids) != n:
                raise ValueError(f"ids has length {len(ids)}, expected {n}")
        if names is not None and len(names) != n:
            raise ValueError(f"names has length {len(names)}, expected {n}")
        self.residues = residues
        self.offsets = offsets
        self.ids = ids
        self._names = list(names) if names is not None else None
        self._parent_masses = _parent_masses

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[ProteinRecord]) -> "ProteinDatabase":
        names: List[str] = []
        encoded: List[np.ndarray] = []
        for rec in records:
            names.append(rec.name)
            encoded.append(encode_sequence(rec.sequence))
        if not encoded:
            return cls.empty()
        lengths = np.array([len(e) for e in encoded], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        return cls(np.concatenate(encoded), offsets, names=names)

    @classmethod
    def from_sequences(cls, sequences: Iterable[str]) -> "ProteinDatabase":
        return cls.from_records(
            ProteinRecord(f"seq{i}", s) for i, s in enumerate(sequences)
        )

    @classmethod
    def empty(cls) -> "ProteinDatabase":
        return cls(
            np.empty(0, dtype=np.uint8), np.zeros(1, dtype=np.int64), np.empty(0, np.int64)
        )

    # -- basic accessors -----------------------------------------------

    def __len__(self) -> int:
        """Number of sequences (the paper's n)."""
        return len(self.offsets) - 1

    @property
    def total_residues(self) -> int:
        """Total residue count (the paper's N)."""
        return int(self.offsets[-1])

    @property
    def nbytes(self) -> int:
        """Bytes needed to hold this database's transportable arrays.

        Used by the simulated machine for both memory accounting and
        communication-volume accounting.  Names are metadata and excluded.
        """
        return int(self.residues.nbytes + self.offsets.nbytes + self.ids.nbytes)

    @property
    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def sequence(self, i: int) -> np.ndarray:
        """Encoded residues of sequence ``i`` (zero-copy view)."""
        return self.residues[self.offsets[i] : self.offsets[i + 1]]

    def sequence_str(self, i: int) -> str:
        return decode_sequence(self.sequence(i))

    def name(self, i: int) -> str:
        if self._names is not None:
            return self._names[i]
        return f"seq{int(self.ids[i])}"

    def __iter__(self) -> Iterator[ProteinRecord]:
        for i in range(len(self)):
            yield ProteinRecord(self.name(i), self.sequence_str(i))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProteinDatabase):
            return NotImplemented
        return (
            np.array_equal(self.residues, other.residues)
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.ids, other.ids)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash for container use
        return object.__hash__(self)

    def __repr__(self) -> str:
        return (
            f"ProteinDatabase(n={len(self)}, N={self.total_residues}, "
            f"avg_len={self.total_residues / max(len(self), 1):.1f})"
        )

    # -- derived quantities ---------------------------------------------

    def parent_masses(self, monoisotopic: bool = True) -> np.ndarray:
        """Neutral masses of every full sequence, computed vectorized.

        The result for the default (monoisotopic) table is cached because
        Algorithm B's sort and every candidate-window filter consult it.
        """
        if monoisotopic and self._parent_masses is not None:
            return self._parent_masses
        csum = np.concatenate(([0.0], np.cumsum(mass_table(monoisotopic)[self.residues])))
        masses = csum[self.offsets[1:]] - csum[self.offsets[:-1]] + WATER_MASS
        if monoisotopic:
            self._parent_masses = masses
        return masses

    def parent_mz_keys(self, monoisotopic: bool = True) -> np.ndarray:
        """Integer parent m/z keys (charge 1, rounded) for counting sort.

        The paper's Algorithm B counting-sorts on integer m/z values
        bounded by [1, 300000]; rounding singly-protonated m/z to the
        nearest integer reproduces that key space.
        """
        from repro.chem.peptide import peptide_mz  # local import to avoid cycle

        mz = peptide_mz(0.0, 1) + self.parent_masses(monoisotopic)
        return np.rint(mz).astype(np.int64)

    # -- restructuring --------------------------------------------------

    def subset(self, indices: np.ndarray) -> "ProteinDatabase":
        """New database containing sequences at ``indices`` (in that order)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return ProteinDatabase.empty()
        lengths = self.lengths[indices]
        new_offsets = np.concatenate(([0], np.cumsum(lengths)))
        new_residues = np.empty(int(new_offsets[-1]), dtype=np.uint8)
        starts = self.offsets[:-1]
        for out_pos, idx in enumerate(indices):
            s = starts[idx]
            new_residues[new_offsets[out_pos] : new_offsets[out_pos + 1]] = self.residues[
                s : s + lengths[out_pos]
            ]
        names = [self._names[i] for i in indices] if self._names is not None else None
        masses = (
            self._parent_masses[indices] if self._parent_masses is not None else None
        )
        return ProteinDatabase(
            new_residues, new_offsets, self.ids[indices], names, _parent_masses=masses
        )

    def slice_range(self, start: int, stop: int) -> "ProteinDatabase":
        """Contiguous sub-database of sequences ``start:stop`` (zero-copy residues)."""
        if not 0 <= start <= stop <= len(self):
            raise IndexError(f"range {start}:{stop} out of bounds for n={len(self)}")
        offsets = self.offsets[start : stop + 1] - self.offsets[start]
        residues = self.residues[self.offsets[start] : self.offsets[stop]]
        names = self._names[start:stop] if self._names is not None else None
        masses = (
            self._parent_masses[start:stop] if self._parent_masses is not None else None
        )
        return ProteinDatabase(
            residues, offsets, self.ids[start:stop], names, _parent_masses=masses
        )

    @staticmethod
    def concat(parts: Sequence["ProteinDatabase"]) -> "ProteinDatabase":
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return ProteinDatabase.empty()
        residues = np.concatenate([p.residues for p in parts])
        lengths = np.concatenate([p.lengths for p in parts])
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        ids = np.concatenate([p.ids for p in parts])
        if all(p._names is not None for p in parts):
            names: Optional[List[str]] = [n for p in parts for n in p._names]  # type: ignore[union-attr]
        else:
            names = None
        return ProteinDatabase(residues, offsets, ids, names)

    # -- transport (used by the simulated machine) -----------------------

    def to_buffers(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Transportable representation: ``(residues, offsets, ids)``."""
        return self.residues, self.offsets, self.ids

    @classmethod
    def from_buffers(
        cls, residues: np.ndarray, offsets: np.ndarray, ids: np.ndarray
    ) -> "ProteinDatabase":
        return cls(residues, offsets, ids)
