"""Proteolytic digestion: derive peptides from protein sequences.

Database-search pipelines "use empirical rules to determine which
peptides should be present in the proteins" (paper Section I.A).  The
standard rule is *tryptic* digestion: trypsin cleaves C-terminal to
lysine (K) or arginine (R), except when the next residue is proline (P).
Allowing up to ``missed_cleavages`` skipped sites models incomplete
digestion, which real experiments always exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.chem.protein import ProteinDatabase


def cleavage_sites(encoded: np.ndarray) -> np.ndarray:
    """Indices *after which* trypsin cleaves in an encoded sequence.

    A site ``i`` means the bond between residues ``i`` and ``i + 1`` is
    cut, i.e. a fragment may end at index ``i`` (inclusive).  The
    sequence end is not included (it is always a fragment boundary).
    """
    if len(encoded) == 0:
        return np.empty(0, dtype=np.int64)
    is_kr = (encoded == ord("K")) | (encoded == ord("R"))
    not_before_p = np.empty(len(encoded), dtype=bool)
    not_before_p[:-1] = encoded[1:] != ord("P")
    not_before_p[-1] = False  # the final residue's "site" is the sequence end
    return np.nonzero(is_kr & not_before_p)[0].astype(np.int64)


def tryptic_peptides(
    encoded: np.ndarray,
    missed_cleavages: int = 0,
    min_length: int = 1,
    max_length: int = 10**9,
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` half-open spans of tryptic peptides.

    Spans are emitted in order of start position, then length.  With
    ``missed_cleavages=k``, every run of up to ``k + 1`` consecutive
    fragments is emitted as one peptide.
    """
    if missed_cleavages < 0:
        raise ValueError(f"missed_cleavages must be >= 0, got {missed_cleavages}")
    sites = cleavage_sites(encoded)
    # Fragment boundaries: start-of-sequence, each site + 1, end-of-sequence.
    bounds = np.concatenate(([0], sites + 1, [len(encoded)]))
    if bounds[-2] == bounds[-1]:  # sequence ends exactly at a cleavage site
        bounds = bounds[:-1]
    nfrag = len(bounds) - 1
    for first in range(nfrag):
        for last in range(first, min(first + missed_cleavages + 1, nfrag)):
            start, stop = int(bounds[first]), int(bounds[last + 1])
            if min_length <= stop - start <= max_length:
                yield (start, stop)


@dataclass(frozen=True)
class DigestedPeptide:
    """A peptide produced by digesting a database sequence."""

    protein_index: int  #: index of the parent sequence within the database
    protein_id: int  #: global id of the parent sequence
    start: int  #: span start within the parent (inclusive)
    stop: int  #: span stop within the parent (exclusive)


def digest_database(
    database: ProteinDatabase,
    missed_cleavages: int = 0,
    min_length: int = 6,
    max_length: int = 50,
) -> List[DigestedPeptide]:
    """Digest every sequence of a database into tryptic peptide spans.

    This is the conventional "peptide-centric" path; the paper's search
    itself enumerates prefix/suffix candidates directly (Section II.A)
    and does not require a pre-digest, but downstream users of a peptide
    identification library expect a digestion primitive, and the
    X!!Tandem-like baseline uses it for its prefilter index.
    """
    out: List[DigestedPeptide] = []
    for i in range(len(database)):
        seq = database.sequence(i)
        pid = int(database.ids[i])
        for start, stop in tryptic_peptides(seq, missed_cleavages, min_length, max_length):
            out.append(DigestedPeptide(i, pid, start, stop))
    return out
