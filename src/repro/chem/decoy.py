"""Decoy databases for false-discovery-rate estimation.

The target-decoy strategy appends a same-size database of sequences that
cannot be biologically present (reversed or shuffled targets); hits to
decoys estimate the false-hit rate at any score threshold.  The paper's
quality argument — accurate statistics matter more as candidate spaces
explode — is quantified through exactly this machinery in
:mod:`repro.scoring.statistics`.
"""

from __future__ import annotations

import numpy as np

from repro.chem.protein import ProteinDatabase
from repro.utils.rng import make_rng

#: id offset distinguishing decoy sequences from targets in a combined DB
DECOY_ID_OFFSET = 1 << 40


def reverse_decoy(database: ProteinDatabase) -> ProteinDatabase:
    """Reverse every sequence (the classic SEQUEST-style decoy).

    Reversal preserves length, composition, and (monoisotopic) parent
    mass exactly, so decoy candidates populate the same mass windows as
    targets — the property FDR estimation needs.
    """
    residues = np.empty_like(database.residues)
    offsets = database.offsets
    for i in range(len(database)):
        residues[offsets[i] : offsets[i + 1]] = database.sequence(i)[::-1]
    names = [f"decoy_{database.name(i)}" for i in range(len(database))]
    return ProteinDatabase(
        residues, offsets.copy(), database.ids + DECOY_ID_OFFSET, names
    )


def shuffle_decoy(database: ProteinDatabase, seed: int = 0) -> ProteinDatabase:
    """Per-sequence random shuffle (kills palindromic self-matches)."""
    residues = np.empty_like(database.residues)
    offsets = database.offsets
    for i in range(len(database)):
        rng = make_rng(seed, "decoy", int(database.ids[i]))
        seq = database.sequence(i).copy()
        rng.shuffle(seq)
        residues[offsets[i] : offsets[i + 1]] = seq
    names = [f"decoy_{database.name(i)}" for i in range(len(database))]
    return ProteinDatabase(
        residues, offsets.copy(), database.ids + DECOY_ID_OFFSET, names
    )


def with_decoys(
    database: ProteinDatabase, method: str = "reverse", seed: int = 0
) -> ProteinDatabase:
    """Concatenate the database with its decoy counterpart."""
    if method == "reverse":
        decoys = reverse_decoy(database)
    elif method == "shuffle":
        decoys = shuffle_decoy(database, seed)
    else:
        raise ValueError(f"unknown decoy method {method!r}; expected reverse|shuffle")
    return ProteinDatabase.concat([database, decoys])


def is_decoy_id(protein_id: int) -> bool:
    """True if a hit's protein id belongs to the decoy half."""
    return protein_id >= DECOY_ID_OFFSET
