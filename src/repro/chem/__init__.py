"""Biochemistry substrate: residues, peptides, proteins, digestion, FASTA I/O."""

from repro.chem.amino_acids import (
    RESIDUE_CODES,
    encode_sequence,
    decode_sequence,
    mass_table,
    residue_masses,
    is_valid_sequence,
    Modification,
    STANDARD_MODIFICATIONS,
)
from repro.chem.peptide import (
    Peptide,
    peptide_mass,
    peptide_mz,
    prefix_masses,
    suffix_masses,
)
from repro.chem.protein import ProteinRecord, ProteinDatabase
from repro.chem.digest import tryptic_peptides, cleavage_sites, digest_database
from repro.chem.fasta import read_fasta, write_fasta, parse_fasta
from repro.chem.decoy import reverse_decoy, shuffle_decoy, with_decoys, is_decoy_id
from repro.chem.enzymes import Protease, PROTEASES, get_protease

__all__ = [
    "RESIDUE_CODES",
    "encode_sequence",
    "decode_sequence",
    "mass_table",
    "residue_masses",
    "is_valid_sequence",
    "Modification",
    "STANDARD_MODIFICATIONS",
    "Peptide",
    "peptide_mass",
    "peptide_mz",
    "prefix_masses",
    "suffix_masses",
    "ProteinRecord",
    "ProteinDatabase",
    "tryptic_peptides",
    "cleavage_sites",
    "digest_database",
    "read_fasta",
    "write_fasta",
    "parse_fasta",
    "reverse_decoy",
    "shuffle_decoy",
    "with_decoys",
    "is_decoy_id",
    "Protease",
    "PROTEASES",
    "get_protease",
]
