"""Peptide value type and mass arithmetic.

Core definitions (paper Section II.A):

* a peptide's *neutral mass* is the sum of its residue masses plus one
  water;
* its *m/z* at charge ``z`` is ``(mass + z * proton) / z``;
* a prefix/suffix of a database peptide is a *candidate* for query ``q``
  when its m/z lies within ``m(q) +/- delta``.

Prefix/suffix mass arrays are the workhorse of candidate generation: for
an encoded sequence of length ``L`` we compute all ``L`` prefix masses in
one vectorized cumulative sum, then candidates in a mass window fall out
of two binary searches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.amino_acids import decode_sequence, encode_sequence, mass_table
from repro.constants import PROTON_MASS, WATER_MASS


def peptide_mass(encoded: np.ndarray, monoisotopic: bool = True) -> float:
    """Neutral monoisotopic (or average) mass of an encoded peptide, in Da."""
    return float(mass_table(monoisotopic)[encoded].sum()) + WATER_MASS


def peptide_mz(mass: float, charge: int = 1) -> float:
    """Observed m/z of a neutral mass at the given positive charge state."""
    if charge < 1:
        raise ValueError(f"charge must be >= 1, got {charge}")
    return (mass + charge * PROTON_MASS) / charge


def mz_to_mass(mz: float, charge: int = 1) -> float:
    """Invert :func:`peptide_mz`: neutral mass from observed m/z and charge."""
    if charge < 1:
        raise ValueError(f"charge must be >= 1, got {charge}")
    return mz * charge - charge * PROTON_MASS


def prefix_masses(encoded: np.ndarray, monoisotopic: bool = True) -> np.ndarray:
    """Neutral masses of all non-empty prefixes of ``encoded``.

    ``prefix_masses(s)[i]`` is the neutral peptide mass of ``s[: i + 1]``
    (residue sum + water).  Length equals ``len(encoded)``; the last entry
    is the full peptide mass.
    """
    return np.cumsum(mass_table(monoisotopic)[encoded]) + WATER_MASS


def suffix_masses(encoded: np.ndarray, monoisotopic: bool = True) -> np.ndarray:
    """Neutral masses of all non-empty suffixes of ``encoded``.

    ``suffix_masses(s)[i]`` is the neutral mass of ``s[i:]``; entry 0 is
    the full peptide mass.
    """
    residue = mass_table(monoisotopic)[encoded]
    # reversed cumulative sum without copying twice
    return residue[::-1].cumsum()[::-1] + WATER_MASS


@dataclass(frozen=True)
class Peptide:
    """An immutable peptide sequence with cached mass.

    This is the user-facing convenience type; hot paths operate on raw
    encoded arrays and never construct ``Peptide`` objects per candidate.
    """

    sequence: str
    monoisotopic: bool = True
    _encoded: np.ndarray = field(init=False, repr=False, compare=False)
    _mass: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        encoded = encode_sequence(self.sequence)
        if len(encoded) == 0:
            raise ValueError("peptide sequence must be non-empty")
        object.__setattr__(self, "_encoded", encoded)
        object.__setattr__(self, "_mass", peptide_mass(encoded, self.monoisotopic))

    @classmethod
    def from_encoded(cls, encoded: np.ndarray, monoisotopic: bool = True) -> "Peptide":
        return cls(decode_sequence(encoded), monoisotopic=monoisotopic)

    @property
    def encoded(self) -> np.ndarray:
        view = self._encoded.view()
        view.flags.writeable = False
        return view

    @property
    def mass(self) -> float:
        """Neutral mass in Da."""
        return self._mass

    def mz(self, charge: int = 1) -> float:
        return peptide_mz(self._mass, charge)

    def __len__(self) -> int:
        return len(self.sequence)

    def prefix(self, length: int) -> "Peptide":
        if not 1 <= length <= len(self):
            raise ValueError(f"prefix length {length} out of range 1..{len(self)}")
        return Peptide(self.sequence[:length], self.monoisotopic)

    def suffix(self, length: int) -> "Peptide":
        if not 1 <= length <= len(self):
            raise ValueError(f"suffix length {length} out of range 1..{len(self)}")
        return Peptide(self.sequence[-length:], self.monoisotopic)
