"""Residue alphabet, encoded sequences, mass tables, and modifications.

Sequences are stored internally as ``numpy.uint8`` arrays of ASCII codes
("encoded" sequences).  This matches the paper's storage model — the
database is a flat byte buffer partitioned into N/p-byte chunks — and
lets mass computations run as vectorized table lookups instead of Python
loops over characters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.constants import AMINO_ACIDS, AVERAGE_MASS, MONOISOTOPIC_MASS
from repro.errors import InvalidSequenceError

#: ASCII byte codes of the 20 standard residues, in alphabet order.
RESIDUE_CODES: np.ndarray = np.frombuffer(AMINO_ACIDS.encode("ascii"), dtype=np.uint8)

_VALID = np.zeros(256, dtype=bool)
_VALID[RESIDUE_CODES] = True

# 256-entry lookup tables: residue ASCII code -> mass.  Invalid codes map
# to NaN so an un-validated sequence poisons downstream masses loudly
# instead of silently contributing zero.
_MONO_TABLE = np.full(256, np.nan)
_AVG_TABLE = np.full(256, np.nan)
for _aa in AMINO_ACIDS:
    _MONO_TABLE[ord(_aa)] = MONOISOTOPIC_MASS[_aa]
    _AVG_TABLE[ord(_aa)] = AVERAGE_MASS[_aa]


def _readonly_view(table: np.ndarray) -> np.ndarray:
    view = table.view()
    view.flags.writeable = False
    return view


# Memoized read-only views: mass_table sits on the fragment-generation hot
# path (called once per batch kernel invocation), so the view is built once
# instead of per call.
_MONO_VIEW = _readonly_view(_MONO_TABLE)
_AVG_VIEW = _readonly_view(_AVG_TABLE)


def mass_table(monoisotopic: bool = True) -> np.ndarray:
    """Return the 256-entry residue-code -> mass lookup table (read-only view)."""
    return _MONO_VIEW if monoisotopic else _AVG_VIEW


def is_valid_sequence(encoded: np.ndarray) -> bool:
    """True if every byte of ``encoded`` is one of the 20 standard residue codes."""
    if encoded.dtype != np.uint8:
        raise TypeError(f"expected uint8 array, got {encoded.dtype}")
    return bool(np.all(_VALID[encoded]))


def encode_sequence(sequence: str, validate: bool = True) -> np.ndarray:
    """Encode a residue string to a uint8 array of ASCII codes.

    Raises :class:`InvalidSequenceError` if ``validate`` and the string
    contains non-residue characters (including lowercase).
    """
    encoded = np.frombuffer(sequence.encode("ascii", errors="strict"), dtype=np.uint8)
    if validate and not is_valid_sequence(encoded):
        bad = sorted({c for c in sequence if ord(c) > 255 or not _VALID[ord(c)]})
        raise InvalidSequenceError(f"invalid residue(s) {bad!r} in sequence")
    return encoded.copy()  # frombuffer gives a read-only view of the bytes


def decode_sequence(encoded: np.ndarray) -> str:
    """Inverse of :func:`encode_sequence`."""
    return encoded.tobytes().decode("ascii")


def residue_masses(encoded: np.ndarray, monoisotopic: bool = True) -> np.ndarray:
    """Vectorized per-residue masses for an encoded sequence."""
    return mass_table(monoisotopic)[encoded]


@dataclass(frozen=True)
class Modification:
    """A post-translational modification (PTM).

    The paper highlights PTMs as a key driver of candidate explosion
    (Figure 1b discussion): each *variable* modification multiplies the
    number of candidate masses a peptide can present.

    Attributes:
        name: human-readable name, e.g. ``"oxidation"``.
        target: one-letter residue code the modification applies to.
        delta_mass: mass shift in Da added to the unmodified residue.
        fixed: if True the modification always applies (e.g.
            carbamidomethylation of C); if False it may or may not be
            present and candidate generation must consider both forms.
    """

    name: str
    target: str
    delta_mass: float
    fixed: bool = False

    def __post_init__(self) -> None:
        if len(self.target) != 1 or self.target not in AMINO_ACIDS:
            raise InvalidSequenceError(f"modification target {self.target!r} is not a residue")


#: Common modifications, keyed by name.
STANDARD_MODIFICATIONS: Dict[str, Modification] = {
    "carbamidomethyl": Modification("carbamidomethyl", "C", 57.021464, fixed=True),
    "oxidation": Modification("oxidation", "M", 15.994915, fixed=False),
    "phosphorylation_s": Modification("phosphorylation_s", "S", 79.966331, fixed=False),
    "phosphorylation_t": Modification("phosphorylation_t", "T", 79.966331, fixed=False),
    "phosphorylation_y": Modification("phosphorylation_y", "Y", 79.966331, fixed=False),
    "acetylation": Modification("acetylation", "K", 42.010565, fixed=False),
    "deamidation_n": Modification("deamidation_n", "N", 0.984016, fixed=False),
}


def modification_mass_table(
    modifications: Iterable[Modification], monoisotopic: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Build lookup tables applying *fixed* and *variable* modifications.

    Returns ``(fixed_table, variable_delta_table)`` where ``fixed_table``
    is a 256-entry residue-mass table with all fixed modifications folded
    in, and ``variable_delta_table`` is a 256-entry table of the variable
    mass delta available at each residue code (0 where none applies).
    Multiple variable modifications on the same residue are not supported
    and raise :class:`ValueError`.
    """
    fixed_table = np.array(mass_table(monoisotopic))
    variable = np.zeros(256)
    for mod in modifications:
        code = ord(mod.target)
        if mod.fixed:
            fixed_table[code] += mod.delta_mass
        else:
            if variable[code] != 0.0:
                raise ValueError(f"multiple variable modifications target {mod.target!r}")
            variable[code] = mod.delta_mass
    return fixed_table, variable
