"""Generalized proteolytic enzymes.

:mod:`repro.chem.digest` hard-codes trypsin (the overwhelmingly common
choice, and the one the tryptic prefilter baseline assumes).  Real
studies also use other proteases — multi-enzyme digests increase
sequence coverage — so the library exposes the standard set behind one
:class:`Protease` rule type: cleave C-terminal to ``residues``, blocked
when the next residue is in ``blocked_by``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.errors import InvalidSequenceError
from repro.constants import AMINO_ACIDS


@dataclass(frozen=True)
class Protease:
    """A cleavage rule: cut after ``residues`` unless followed by ``blocked_by``."""

    name: str
    residues: str
    blocked_by: str = ""

    def __post_init__(self) -> None:
        for group in (self.residues, self.blocked_by):
            bad = [c for c in group if c not in AMINO_ACIDS]
            if bad:
                raise InvalidSequenceError(f"{self.name}: invalid residues {bad!r}")
        if not self.residues:
            raise ValueError(f"{self.name}: needs at least one cleavage residue")

    def cleavage_sites(self, encoded: np.ndarray) -> np.ndarray:
        """Indices after which this protease cleaves (sequence end excluded)."""
        if len(encoded) == 0:
            return np.empty(0, dtype=np.int64)
        cuts = np.zeros(len(encoded), dtype=bool)
        for aa in self.residues:
            cuts |= encoded == ord(aa)
        allowed = np.ones(len(encoded), dtype=bool)
        allowed[-1] = False  # the final residue's site is the sequence end
        for aa in self.blocked_by:
            blocked = np.zeros(len(encoded), dtype=bool)
            blocked[:-1] = encoded[1:] == ord(aa)
            allowed &= ~blocked
        return np.nonzero(cuts & allowed)[0].astype(np.int64)

    def peptides(
        self,
        encoded: np.ndarray,
        missed_cleavages: int = 0,
        min_length: int = 1,
        max_length: int = 10**9,
    ) -> Iterator[Tuple[int, int]]:
        """Yield (start, stop) spans, like :func:`repro.chem.digest.tryptic_peptides`."""
        if missed_cleavages < 0:
            raise ValueError(f"missed_cleavages must be >= 0, got {missed_cleavages}")
        sites = self.cleavage_sites(encoded)
        bounds = np.concatenate(([0], sites + 1, [len(encoded)]))
        if len(bounds) >= 2 and bounds[-2] == bounds[-1]:
            bounds = bounds[:-1]
        nfrag = len(bounds) - 1
        for first in range(nfrag):
            for last in range(first, min(first + missed_cleavages + 1, nfrag)):
                start, stop = int(bounds[first]), int(bounds[last + 1])
                if min_length <= stop - start <= max_length:
                    yield (start, stop)


#: The standard protease catalogue.
PROTEASES: Dict[str, Protease] = {
    "trypsin": Protease("trypsin", "KR", blocked_by="P"),
    "trypsin/p": Protease("trypsin/p", "KR"),  # no proline rule
    "lys-c": Protease("lys-c", "K"),
    "arg-c": Protease("arg-c", "R", blocked_by="P"),
    "glu-c": Protease("glu-c", "E"),
    "asp-n-like": Protease("asp-n-like", "D"),  # simplified: C-terminal rule
    "chymotrypsin": Protease("chymotrypsin", "FWYL", blocked_by="P"),
}


def get_protease(name: str) -> Protease:
    try:
        return PROTEASES[name]
    except KeyError:
        raise KeyError(
            f"unknown protease {name!r}; expected one of {sorted(PROTEASES)}"
        ) from None
