"""Scaling metrics: speedup, efficiency, and the paper's chaining rule.

Figure 4's caption defines a specific convention we reproduce exactly:
"The speedups for all input sizes greater or equal to 400K were
calculated relative to their corresponding 8 processor run-times, and
multiplied by the average speedup obtained at p = 8 for smaller input;
this average speedup observed was 4.51."  (Large inputs don't fit below
p = 8 under the 1 GB cap, so no 1-processor baseline exists for them.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def speedup(t1: float, tp: float) -> float:
    """Real speedup S(p) = T(1) / T(p)."""
    if t1 <= 0 or tp <= 0:
        raise ValueError("run-times must be positive")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """Parallel efficiency E(p) = S(p) / p."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return speedup(t1, tp) / p


def chained_speedup(t_anchor: float, tp: float, anchor_speedup: float) -> float:
    """Speedup via the paper's anchor rule: S(p) = (T(p_a)/T(p)) * S(p_a).

    Used when no single-processor run exists: run-times are taken
    relative to the anchor processor count (p = 8 in the paper) and
    scaled by the average anchor speedup observed on smaller inputs.
    """
    if t_anchor <= 0 or tp <= 0:
        raise ValueError("run-times must be positive")
    if anchor_speedup <= 0:
        raise ValueError("anchor_speedup must be positive")
    return (t_anchor / tp) * anchor_speedup


@dataclass(frozen=True)
class ScalingPoint:
    """One (database size, processor count) measurement."""

    database_size: int
    num_ranks: int
    run_time: float
    speedup: float
    efficiency: float
    candidates_per_second: float = 0.0
    residual_to_compute: float = 0.0


def scaling_table(
    run_times: Dict[int, Dict[int, float]],
    anchor_rank: int = 8,
    candidates_per_run: Optional[Dict[int, Dict[int, float]]] = None,
) -> List[ScalingPoint]:
    """Derive Figure 4's speedup/efficiency points from a run-time grid.

    ``run_times[n][p]`` is the run-time for database size ``n`` at ``p``
    ranks.  Sizes with a ``p = 1`` entry use real speedup; sizes without
    one use the chained rule with ``anchor_rank``, where the anchor
    speedup is the mean real speedup at ``anchor_rank`` over the sizes
    that do have a 1-rank baseline (the paper's 4.51).
    """
    anchored = [
        speedup(times[1], times[anchor_rank])
        for times in run_times.values()
        if 1 in times and anchor_rank in times
    ]
    anchor_speedup = sum(anchored) / len(anchored) if anchored else float(anchor_rank)

    points: List[ScalingPoint] = []
    for n in sorted(run_times):
        times = run_times[n]
        for p in sorted(times):
            if 1 in times:
                s = speedup(times[1], times[p])
            elif anchor_rank in times:
                s = chained_speedup(times[anchor_rank], times[p], anchor_speedup)
            else:
                continue
            cps = 0.0
            if candidates_per_run and p in candidates_per_run.get(n, {}):
                cps = candidates_per_run[n][p] / times[p]
            points.append(
                ScalingPoint(
                    database_size=n,
                    num_ranks=p,
                    run_time=times[p],
                    speedup=s,
                    efficiency=s / p,
                    candidates_per_second=cps,
                )
            )
    return points


def mean_and_std(values: Sequence[float]) -> tuple:
    """Mean and population standard deviation (paper reports 0.36 +/- 0.11)."""
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, var**0.5
