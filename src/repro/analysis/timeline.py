"""Timeline rendering for simulated runs.

With ``ClusterConfig(record_events=True)`` every rank's trace keeps its
(category, start, duration) segments; these helpers turn them into the
two views people actually read when debugging parallel schedules:

* :func:`utilization_table` — per-rank busy/wait/collective fractions;
* :func:`ascii_gantt` — a character timeline per rank
  (``#`` compute, ``.`` wait/residual comm, ``=`` collective,
  ``I`` index build, ``S`` sweep setup, ``R`` recovery, space idle),
  which makes masking (or its absence) visible at a glance.

The same event stream exports to Chrome trace-event JSON via
``repro trace --format chrome`` (see ``repro.obs.chrome_trace``); the
glyph categories here and the ``cat`` field there are the same
vocabulary, documented in docs/observability.md.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simmpi.trace import TraceSummary
from repro.utils.format import render_table

_GLYPH: Dict[str, str] = {
    "compute": "#",
    "wait": ".",
    "collective": "=",
    "index": "I",
    "sweep": "S",
    "recovery": "R",
}
#: painting priority when segments overlap a cell (compute wins)
_PRIORITY = {
    "compute": 6,
    "recovery": 5,
    "index": 4,
    "sweep": 3,
    "wait": 2,
    "collective": 1,
}


def utilization_table(summary: TraceSummary) -> str:
    """Per-rank time breakdown as an aligned table."""
    rows: List[List[object]] = []
    span = summary.makespan if summary.makespan > 0 else 1.0
    for rank in sorted(summary.per_rank):
        trace = summary.per_rank[rank]
        rows.append(
            [
                f"rank {rank}",
                f"{trace.compute:.3f}",
                f"{trace.wait:.3f}",
                f"{trace.collective:.3f}",
                f"{100 * trace.compute / span:.1f}%",
            ]
        )
    return render_table(
        ["", "compute (s)", "wait (s)", "collective (s)", "utilization"],
        rows,
        title=f"makespan {summary.makespan:.3f}s",
    )


def ascii_gantt(summary: TraceSummary, width: int = 80) -> str:
    """Character timeline per rank (requires record_events=True).

    Raises ValueError when no events were recorded — turning on event
    recording is a config choice, not a default, because big runs would
    otherwise accumulate millions of tuples.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not any(t.events for t in summary.per_rank.values()):
        raise ValueError(
            "no events recorded; run with ClusterConfig(record_events=True)"
        )
    span = summary.makespan if summary.makespan > 0 else 1.0
    scale = width / span
    lines = [f"0s {'-' * (width - 8)} {summary.makespan:.3f}s"]
    for rank in sorted(summary.per_rank):
        cells = [" "] * width
        priority = [0] * width
        for category, start, duration, _detail in summary.per_rank[rank].events:
            glyph = _GLYPH.get(category)
            if glyph is None:
                continue
            first = min(width - 1, int(start * scale))
            last = min(width - 1, int((start + duration) * scale))
            for c in range(first, last + 1):
                if _PRIORITY[category] > priority[c]:
                    cells[c] = glyph
                    priority[c] = _PRIORITY[category]
        lines.append(f"P{rank:<3d} |{''.join(cells)}|")
    lines.append(
        "      # compute   . wait (residual comm)   = collective   "
        "I index   S sweep   R recovery"
    )
    return "\n".join(lines)
