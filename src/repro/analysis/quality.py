"""Identification-quality metrics against ground truth.

Workload generators return the true target peptide behind every
simulated spectrum; these helpers measure how well a search report
recovers them — the library's common currency for the paper's quality
comparisons (accurate vs. fast models, exhaustive vs. tryptic candidate
rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.chem.protein import ProteinDatabase
from repro.core.results import SearchReport
from repro.spectra.spectrum import Spectrum


@dataclass(frozen=True)
class RecoveryResult:
    """Target-recovery statistics for one report."""

    total: int
    recovered_at_1: int
    recovered_at_k: int
    k: int
    mean_rank: float  #: mean 1-based rank of the target among recovered (at k)

    @property
    def recall_at_1(self) -> float:
        return self.recovered_at_1 / self.total if self.total else 0.0

    @property
    def recall_at_k(self) -> float:
        return self.recovered_at_k / self.total if self.total else 0.0


def recovery(
    database: ProteinDatabase,
    report: SearchReport,
    spectra: Sequence[Spectrum],
    targets: Sequence[np.ndarray],
    k: int = 10,
) -> RecoveryResult:
    """Measure how many queries' true peptides appear in the top-k hits.

    A hit recovers the target when its residue span equals the target
    byte-for-byte (L/I ambiguity counts as a match because the residues
    are isobaric *and* identically encoded only when identical; we
    require exact residues, the strict criterion).
    """
    if len(spectra) != len(targets):
        raise ValueError("spectra and targets must align")
    index_of = {int(pid): i for i, pid in enumerate(database.ids)}
    at1 = 0
    atk = 0
    ranks: List[int] = []
    for spectrum, target in zip(spectra, targets):
        hits = report.hits.get(spectrum.query_id, [])[:k]
        for rank, hit in enumerate(hits, start=1):
            seq_idx = index_of.get(hit.protein_id)
            if seq_idx is None:  # e.g. decoy hit
                continue
            span = database.sequence(seq_idx)[hit.start : hit.stop]
            if np.array_equal(span, target):
                atk += 1
                ranks.append(rank)
                if rank == 1:
                    at1 += 1
                break
    return RecoveryResult(
        total=len(spectra),
        recovered_at_1=at1,
        recovered_at_k=atk,
        k=k,
        mean_rank=float(np.mean(ranks)) if ranks else float("nan"),
    )


def compare_engines(
    database: ProteinDatabase,
    reports: Dict[str, SearchReport],
    spectra: Sequence[Spectrum],
    targets: Sequence[np.ndarray],
    k: int = 10,
) -> Dict[str, RecoveryResult]:
    """Recovery results for several engines over the same workload."""
    return {
        name: recovery(database, report, spectra, targets, k)
        for name, report in reports.items()
    }
