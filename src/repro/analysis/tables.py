"""Rendering run-time grids and scaling points as paper-style tables."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.metrics import ScalingPoint
from repro.utils.format import format_si, render_table


def format_runtime_table(
    run_times: Dict[int, Dict[int, float]],
    rank_columns: Sequence[int],
    title: str = "",
) -> str:
    """Render a Table II-style grid: rows = DB sizes, columns = p.

    Missing cells print '-' ("the corresponding run was not performed",
    e.g. it would exceed the per-rank memory cap).
    """
    headers = ["Database size (n)"] + [str(p) for p in rank_columns]
    rows = []
    for n in sorted(run_times):
        row: List[object] = [format_si(n)]
        for p in rank_columns:
            t = run_times[n].get(p)
            row.append("-" if t is None else f"{t:.2f}")
        rows.append(row)
    return render_table(headers, rows, title=title)


def format_scaling_rows(points: List[ScalingPoint], title: str = "") -> str:
    """Render Figure 4's data as rows (size, p, time, speedup, efficiency)."""
    headers = ["Database size", "p", "Run-time (s)", "Speedup", "Efficiency (%)"]
    rows = [
        [
            format_si(pt.database_size),
            pt.num_ranks,
            f"{pt.run_time:.2f}",
            f"{pt.speedup:.2f}",
            f"{100 * pt.efficiency:.1f}",
        ]
        for pt in points
    ]
    return render_table(headers, rows, title=title)
