"""Cost-model sensitivity analysis.

A reproduction whose conclusions only hold at one magic calibration is
fragile.  This module perturbs each cost-model constant over a range
(default 0.25x ... 4x) and re-evaluates the paper's qualitative
conclusions on a small grid, reporting which conclusions survive where:

* C1 — run-time ~linear in database size at fixed p;
* C2 — large inputs keep speeding up through large p;
* C3 — small inputs stop scaling at large p;
* C4 — Algorithm B's sorting overhead grows with p;
* C5 — Algorithm B loses to A at large p.

`benchmarks/bench_sensitivity.py` regenerates the table; the integration
test asserts every conclusion holds across the whole default sweep —
i.e. the reproduction's claims do not depend on the calibration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.algorithm_a import run_algorithm_a
from repro.core.algorithm_b import run_algorithm_b
from repro.core.config import ExecutionMode, SearchConfig
from repro.core.costmodel import CostModel

#: the constants worth perturbing (time constants only; the memory
#: constant is pinned by the paper's own numbers, see docs/cost_model.md)
SWEEPABLE_FIELDS = (
    "rho_base",
    "tau_cost",
    "scan_per_byte",
    "load_per_byte",
    "query_overhead",
    "iteration_overhead",
    "reduce_per_key",
)


@dataclass(frozen=True)
class ConclusionCheck:
    """One perturbation point's verdicts."""

    field: str
    factor: float
    c1_linear_in_n: bool
    c2_large_keeps_scaling: bool
    c3_small_stops_scaling: bool
    c4_sort_grows: bool
    c5_b_loses_at_scale: bool

    @property
    def all_hold(self) -> bool:
        return (
            self.c1_linear_in_n
            and self.c2_large_keeps_scaling
            and self.c3_small_stops_scaling
            and self.c4_sort_grows
            and self.c5_b_loses_at_scale
        )


def _perturbed(cost: CostModel, field: str, factor: float) -> CostModel:
    return dataclasses.replace(cost, **{field: getattr(cost, field) * factor})


def check_conclusions(
    database_small,
    database_large,
    queries,
    cost: CostModel,
    ranks_small: int = 8,
    ranks_large: int = 64,
) -> Dict[str, bool]:
    """Evaluate the five conclusions under one cost model."""
    cfg = SearchConfig(execution=ExecutionMode.MODELED, cost=cost)

    t_small = {p: run_algorithm_a(database_small, queries, p, cfg).virtual_time
               for p in (1, ranks_small, ranks_large, 2 * ranks_large)}
    t_large = {p: run_algorithm_a(database_large, queries, p, cfg).virtual_time
               for p in (1, ranks_small, ranks_large)}

    # C1: doubling N ~doubles the 1-rank time (sizes differ 4x here)
    size_ratio = database_large.total_residues / database_small.total_residues
    c1 = abs(t_large[1] / t_small[1] - size_ratio) / size_ratio < 0.35

    # C2: the large input still gains from ranks_small -> ranks_large
    c2 = t_large[ranks_large] < t_large[ranks_small]

    # C3: the small input gains little (or loses) doubling past ranks_large
    c3 = t_small[2 * ranks_large] > 0.6 * t_small[ranks_large]

    b_small = run_algorithm_b(database_small, queries, 2, cfg)
    b_large = run_algorithm_b(database_small, queries, ranks_large, cfg)
    c4 = b_large.extras["sorting_time"] > b_small.extras["sorting_time"]
    c5 = b_large.virtual_time > t_small[ranks_large]

    return {
        "c1_linear_in_n": c1,
        "c2_large_keeps_scaling": c2,
        "c3_small_stops_scaling": c3,
        "c4_sort_grows": c4,
        "c5_b_loses_at_scale": c5,
    }


def sweep(
    database_small,
    database_large,
    queries,
    factors: Sequence[float] = (0.25, 1.0, 4.0),
    fields: Sequence[str] = SWEEPABLE_FIELDS,
    base: CostModel = CostModel(),
    ranks_small: int = 8,
    ranks_large: int = 64,
) -> List[ConclusionCheck]:
    """Perturb each field by each factor; return the verdict grid."""
    results: List[ConclusionCheck] = []
    for field in fields:
        for factor in factors:
            verdicts = check_conclusions(
                database_small,
                database_large,
                queries,
                _perturbed(base, field, factor),
                ranks_small=ranks_small,
                ranks_large=ranks_large,
            )
            results.append(ConclusionCheck(field=field, factor=factor, **verdicts))
    return results
