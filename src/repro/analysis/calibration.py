"""Cost-model calibration against the real scoring kernel.

The virtual-time defaults in :class:`repro.core.costmodel.CostModel`
are paper-scaled (they land Table II in the paper's units).  This module
offers the alternative: measure *this host's* actual per-candidate
scoring cost and build a cost model from it, so simulated times predict
real wall-clock of a hypothetical single-node run of our Python kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import SearchConfig
from repro.core.costmodel import CostModel
from repro.core.search import ShardSearcher
from repro.workloads.queries import generate_queries
from repro.workloads.synthetic import generate_database


@dataclass(frozen=True)
class CalibrationResult:
    """Measured constants and the cost model built from them."""

    rho_measured: float  #: seconds per candidate evaluation (real kernel)
    candidates_timed: int
    wall_time: float
    model: CostModel


def calibrate_rho(
    num_proteins: int = 400,
    num_queries: int = 40,
    config: SearchConfig = None,
    seed: int = 5,
    min_candidates: int = 200,
) -> CalibrationResult:
    """Time the real scoring kernel and fit rho_base.

    Runs a small real search, measures wall time per candidate, and
    returns a cost model whose ``rho_base`` makes
    ``rho(configured scorer) == measured per-candidate cost``.
    """
    config = config or SearchConfig()
    database = generate_database(num_proteins, seed=seed)
    queries = generate_queries(num_queries, seed=seed + 1)
    searcher = ShardSearcher(database, config)
    hitlists = {}
    start = time.perf_counter()
    stats = searcher.search(queries, hitlists)
    elapsed = time.perf_counter() - start
    candidates = max(stats.candidates_evaluated, 1)
    if stats.candidates_evaluated < min_candidates:
        # widen the windows rather than report a noise-dominated constant
        wide = SearchConfig(
            delta=config.delta * 4,
            tau=config.tau,
            scorer=config.scorer,
            fragment_tolerance=config.fragment_tolerance,
        )
        searcher = ShardSearcher(database, wide)
        hitlists = {}
        start = time.perf_counter()
        stats = searcher.search(queries, hitlists)
        elapsed = time.perf_counter() - start
        candidates = max(stats.candidates_evaluated, 1)
    rho = elapsed / candidates
    base = CostModel()
    model = CostModel(
        rho_base=rho / searcher.scorer.relative_cost,
        tau_cost=base.tau_cost,
        scan_per_byte=base.scan_per_byte,
        load_per_byte=base.load_per_byte,
    )
    return CalibrationResult(
        rho_measured=rho, candidates_timed=candidates, wall_time=elapsed, model=model
    )
