"""Analysis: scaling metrics, cost-model calibration, table rendering."""

from repro.analysis.metrics import (
    speedup,
    efficiency,
    chained_speedup,
    ScalingPoint,
    scaling_table,
)
from repro.analysis.calibration import calibrate_rho, CalibrationResult
from repro.analysis.tables import format_runtime_table, format_scaling_rows
from repro.analysis.quality import RecoveryResult, recovery, compare_engines
from repro.analysis.sensitivity import ConclusionCheck, check_conclusions, sweep

__all__ = [
    "speedup",
    "efficiency",
    "chained_speedup",
    "ScalingPoint",
    "scaling_table",
    "calibrate_rho",
    "CalibrationResult",
    "format_runtime_table",
    "format_scaling_rows",
    "RecoveryResult",
    "recovery",
    "compare_engines",
    "ConclusionCheck",
    "check_conclusions",
    "sweep",
]
