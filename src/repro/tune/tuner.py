"""The autotuner: calibrate -> plan -> run -> verify -> report.

:func:`autotune` closes the loop the ROADMAP asked for: fitted CostModel
terms pick the configuration with the smallest predicted makespan, the
chosen configuration actually runs, and the RunReport ``tuning`` section
records how well the model predicted reality — per phase, per term —
next to the communication-lower-bound projection that every future perf
PR is judged against.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SearchConfig
from repro.obs.metrics import MetricsRegistry, get_metrics, use_registry
from repro.tune.calibrate import Calibration, CalibrationSpec, calibrate
from repro.tune.lower_bounds import (
    DEFAULT_PROJECTION_RANKS,
    overlap_projection,
    simulate_anchor,
)
from repro.tune.plan import (
    CandidatePlan,
    PredictedMakespan,
    WorkloadProfile,
    choose_plan,
    enumerate_plans,
    predict_makespan,
    profile_workload,
)

#: schema tag of the RunReport ``tuning`` section (optional section, so
#: the report schema itself does not bump — same pattern as ``service``)
TUNING_SCHEMA = "repro.tuning/1"


@dataclass
class TuneResult:
    """Everything one autotune pass produced."""

    calibration: Calibration
    profile: WorkloadProfile
    chosen: CandidatePlan
    prediction: PredictedMakespan
    ranking: List[Tuple[CandidatePlan, PredictedMakespan]]
    pruned: List[Tuple[CandidatePlan, str]]
    report: Any = None  #: SearchReport of the verification run (if run)
    measured_wall_s: Optional[float] = None
    verification: Optional[Dict[str, Any]] = None
    lower_bounds: Optional[Dict[str, Any]] = None
    tuning: Dict[str, Any] = field(default_factory=dict)


def run_plan(
    plan: CandidatePlan,
    database,
    queries,
    config: SearchConfig,
    *,
    store=None,
    store_path: Optional[str] = None,
) -> Tuple[Any, float, MetricsRegistry]:
    """Execute one plan; returns (report, wall seconds, span registry).

    Runs under a private enabled registry so the measured spans are
    attributable to this run alone; multiproc worker snapshots merge in
    through the engine's normal fork/spawn-safe path.
    """
    from repro.core.search import search_serial

    run_config = plan.to_config(config)
    registry = MetricsRegistry(enabled=True)
    with use_registry(registry):
        t0 = time.perf_counter()
        if plan.engine == "multiproc":
            from repro.engines.multiproc import run_multiprocess_search

            report = run_multiprocess_search(
                database,
                queries,
                num_workers=plan.num_workers,
                config=run_config,
                query_blocks=plan.query_blocks,
                start_method=plan.start_method,
                index_path=store_path if plan.stream else None,
                memory_budget_mb=plan.memory_budget_mb,
            )
        else:
            report = search_serial(
                database,
                queries,
                run_config,
                index_store=store if plan.stream else None,
                memory_budget_mb=plan.memory_budget_mb,
            )
        wall = time.perf_counter() - t0
    return report, wall, registry


def _span_total(registry: MetricsRegistry, *names: str) -> float:
    wanted = set(names)
    return sum(s["dur"] for s in registry.spans if s["name"] in wanted)


def _rel_error(predicted: float, measured: Optional[float]) -> Optional[float]:
    if measured is None or measured <= 0:
        return None
    return (predicted - measured) / measured


def build_verification(
    plan: CandidatePlan,
    prediction: PredictedMakespan,
    wall_s: float,
    registry: MetricsRegistry,
    calibration: Calibration,
) -> Dict[str, Any]:
    """Span-by-span comparison of predicted vs. measured phase times.

    Spans measure what they measure: ``search.shard``/``search.stream``
    cover evaluation *plus* per-query overhead, so those two predicted
    phases are compared against the span jointly; decode and stall have
    their own spans; pool spin-up / transport / dispatch have no span of
    their own and are compared as the wall-time remainder.

    Worker span sums convert to wall-clock by dividing by the
    *effective* parallel width (workers clamped to host cores) — the
    same clamp the predictor applies: oversubscribed workers time-slice,
    so their span durations overlap CPU time, not wall time.
    """
    from repro.tune.plan import os_cpu_count

    workers = max(plan.num_workers, 1) if plan.engine == "multiproc" else 1
    workers = min(workers, os_cpu_count())
    pred = prediction.phases

    search_span = _span_total(registry, "search.shard", "search.stream") / workers
    decode_span = _span_total(registry, "stream.decode") / workers
    stall_span = _span_total(registry, "stream.stall") / workers
    build_span = _span_total(registry, "index.build") / workers
    if plan.stream:
        # the stream span wraps decode + stall + scoring; peel the
        # separately-spanned parts off to leave the evaluation side
        search_span = max(search_span - decode_span - stall_span, 0.0)

    phases: Dict[str, Dict[str, Any]] = {}

    def phase(name: str, predicted: float, measured: Optional[float]) -> None:
        phases[name] = {
            "predicted_s": predicted,
            "measured_s": measured,
            "rel_error": _rel_error(predicted, measured),
        }

    phase(
        "evaluation+query_overhead",
        pred.get("evaluation", 0.0) + pred.get("query_overhead", 0.0),
        search_span,
    )
    if "index_build" in pred or build_span:
        phase("index_build", pred.get("index_build", 0.0), build_span)
    if plan.stream:
        phase("partition_decode", pred.get("partition_decode", 0.0), decode_span)
        phase(
            "partition_exposed_io", pred.get("partition_exposed_io", 0.0), stall_span
        )
    engine_overhead_pred = (
        pred.get("worker_spinup", 0.0)
        + pred.get("transport", 0.0)
        + pred.get("task_dispatch", 0.0)
    )
    accounted = search_span + build_span + (
        decode_span + stall_span if plan.stream else 0.0
    )
    phase(
        "engine_overhead",
        engine_overhead_pred,
        max(wall_s - accounted, 0.0),
    )

    # per-term implied measurements, where a counter pins the work count
    terms: Dict[str, Dict[str, Any]] = {}
    candidates = registry.counter_value("search.candidates")
    if candidates:
        pred_per_cand = phases["evaluation+query_overhead"]["predicted_s"] / candidates
        meas_per_cand = search_span / candidates
        terms["evaluation_seconds_per_candidate"] = {
            "predicted": pred_per_cand,
            "measured": meas_per_cand,
            "rel_error": _rel_error(pred_per_cand, meas_per_cand),
        }
    fragments = registry.counter_value("index.fragments")
    if fragments and build_span:
        implied = build_span * workers / fragments
        calibrated = calibration.terms.get("index_build_per_fragment")
        terms["index_build_per_fragment"] = {
            "predicted": calibrated,
            "measured": implied,
            "rel_error": _rel_error(calibrated, implied)
            if calibrated is not None
            else None,
        }
    decoded = registry.counter_value("stream.bytes_decoded")
    if decoded and decode_span:
        implied = decode_span * workers / decoded
        calibrated = calibration.terms.get("partition_decode_per_byte")
        terms["partition_decode_per_byte"] = {
            "predicted": calibrated,
            "measured": implied,
            "rel_error": _rel_error(calibrated, implied)
            if calibrated is not None
            else None,
        }

    return {
        "measured_makespan_s": wall_s,
        "predicted_makespan_s": prediction.total,
        "makespan_rel_error": _rel_error(prediction.total, wall_s),
        "phases": phases,
        "terms": terms,
    }


def build_tuning_section(result: TuneResult, top_k: int = 8) -> Dict[str, Any]:
    """The RunReport ``tuning`` section (schema ``repro.tuning/1``)."""
    section: Dict[str, Any] = {
        "schema": TUNING_SCHEMA,
        "calibration": {
            "source": result.calibration.source,
            "cache_path": result.calibration.cache_path,
            "terms": dict(result.calibration.terms),
            "vs_defaults": result.calibration.details.get("vs_defaults"),
        },
        "grid": {
            "feasible": len(result.ranking),
            "pruned": len(result.pruned),
            "pruned_reasons": [
                {"plan": plan.label, "reason": reason}
                for plan, reason in result.pruned[:top_k]
            ],
        },
        "chosen": result.chosen.to_dict(),
        "chosen_label": result.chosen.label,
        "predicted": result.prediction.to_dict(),
        "ranking": [
            {"plan": plan.label, "predicted_s": pred.total}
            for plan, pred in result.ranking[:top_k]
        ],
    }
    if result.verification is not None:
        section["verification"] = result.verification
    if result.lower_bounds is not None:
        section["lower_bounds"] = result.lower_bounds
    return section


def autotune(
    database,
    queries,
    config: Optional[SearchConfig] = None,
    *,
    cache_path: Optional[str] = None,
    force_calibrate: bool = False,
    spec: Optional[CalibrationSpec] = None,
    store=None,
    store_path: Optional[str] = None,
    memory_budget_mb: Optional[float] = None,
    engines: Sequence[str] = ("serial", "multiproc"),
    worker_choices: Optional[Sequence[int]] = None,
    query_blocks: Sequence[int] = (1, 4),
    sweep_cohorts: Sequence[int] = (16, 64, 256),
    start_methods: Optional[Sequence[str]] = None,
    run: bool = True,
    lower_bounds: bool = True,
    projection_ranks: Sequence[int] = DEFAULT_PROJECTION_RANKS,
    anchor_ranks: Optional[int] = None,
) -> TuneResult:
    """Full autotune pass; see the module docstring for the shape.

    ``run=False`` stops after planning (used by ``search --autotune``,
    where the search itself is the verification run).  ``anchor_ranks``
    additionally runs the event simulator once at that rank count and
    reports it next to the analytic projection.
    """
    config = config if config is not None else SearchConfig()
    obs = get_metrics()
    with obs.span("tune.autotune", category="tune"):
        calibration = calibrate(spec=spec, cache_path=cache_path, force=force_calibrate)
        cost = calibration.cost_model(config.cost)
        with obs.span("tune.plan", category="tune"):
            profile = profile_workload(database, queries, config, store=store)
            plans, pruned = enumerate_plans(
                profile,
                engines=engines,
                worker_choices=worker_choices,
                query_blocks=query_blocks,
                sweep_cohorts=sweep_cohorts,
                start_methods=start_methods,
                memory_budget_mb=memory_budget_mb,
                allow_stream=store is not None,
            )
            chosen, prediction, ranking = choose_plan(plans, profile, cost)
        obs.count("tune.plans_feasible", len(plans))
        obs.count("tune.plans_pruned", len(pruned))
        obs.gauge("tune.predicted_makespan_s", prediction.total)

        result = TuneResult(
            calibration=calibration,
            profile=profile,
            chosen=chosen,
            prediction=prediction,
            ranking=ranking,
            pruned=pruned,
        )
        if run:
            with obs.span("tune.verify", category="tune"):
                report, wall, registry = run_plan(
                    chosen,
                    database,
                    queries,
                    config,
                    store=store,
                    store_path=store_path,
                )
            result.report = report
            result.measured_wall_s = wall
            result.verification = build_verification(
                chosen, prediction, wall, registry, calibration
            )
            obs.gauge("tune.measured_makespan_s", wall)
        if lower_bounds:
            bounds = overlap_projection(profile, ranks=projection_ranks)
            if anchor_ranks:
                with obs.span("tune.anchor", category="tune"):
                    bounds["simulated_anchor"] = simulate_anchor(
                        database, queries, config, num_ranks=anchor_ranks
                    )
            result.lower_bounds = bounds
        result.tuning = build_tuning_section(result)
    return result
