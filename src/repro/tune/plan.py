"""Configuration search: enumerate the knob grid, predict, pick.

A :class:`CandidatePlan` is one point of the feasible grid — engine x
index x sweep x cohort x blocks x start method x stream.  The planner
profiles the workload once (exact candidate counts via the vectorized
counting kernels, cohort counts via the real coalescer, index shape via
a small sample build), prunes infeasible plans with the advisor's
memory-fit logic, and scores the survivors with a wall-clock makespan
predictor built from calibrated CostModel terms — the same per-phase
decomposition the engines themselves charge, in measured seconds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.advisor import fits_in_budget, streamed_residency_bytes
from repro.core.config import SearchConfig
from repro.core.costmodel import CostModel
from repro.core.search import ShardSearcher
from repro.candidates.generator import mass_window
from repro.candidates.mass_index import coalesce_windows

#: fallback decoded-index bytes per fragment when no partitioned store
#: is at hand to read the real number from (BENCH_scale.json n=500:
#: 157.5 MB decoded / ~2.3 M fragments ~= 70 B/fragment)
DECODED_BYTES_PER_FRAGMENT = 70.0


@dataclass(frozen=True)
class CandidatePlan:
    """One point of the knob grid."""

    engine: str = "serial"  #: "serial" or "multiproc"
    use_index: bool = True
    use_sweep: bool = False
    sweep_cohort: int = 64
    stream: bool = False
    num_workers: int = 1
    query_blocks: int = 1
    start_method: Optional[str] = None  #: multiproc only ("fork"/"spawn")
    memory_budget_mb: Optional[float] = None

    @property
    def label(self) -> str:
        parts = [self.engine]
        if self.engine == "multiproc":
            parts.append(f"w={self.num_workers}")
            parts.append(f"blocks={self.query_blocks}")
            if self.start_method:
                parts.append(self.start_method)
        parts.append("index" if self.use_index else "direct")
        if self.use_sweep:
            parts.append(f"sweep/{self.sweep_cohort}")
        if self.stream:
            parts.append("streamed")
        return ":".join(parts)

    def to_config(self, base: SearchConfig) -> SearchConfig:
        """The plan's knobs applied onto a base SearchConfig."""
        return dataclasses.replace(
            base,
            use_index=self.use_index,
            use_sweep=self.use_sweep,
            sweep_cohort=self.sweep_cohort,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class WorkloadProfile:
    """Everything the predictor needs to know about one workload."""

    num_queries: int
    query_bytes: int
    db_sequences: int
    db_residues: int
    db_nbytes: int
    total_candidates: int
    relative_cost: float
    scorer_indexable: bool
    index_served_fraction: float  #: fraction of rows the index serves
    index_fragments: int  #: estimated whole-database fragment count
    index_nbytes: int  #: estimated decoded (resident) index bytes
    cohorts: Dict[int, int] = field(default_factory=dict)  #: cap -> count
    store: Optional[Dict[str, Any]] = None  #: partitioned-store geometry
    #: exact per-query candidate counts (count_each order) — lets the
    #: lower-bound projection compute rank-block skew exactly
    query_candidates: Tuple[int, ...] = ()
    #: per-sequence residue lengths — lets the projection reproduce the
    #: byte-balanced shard split and its per-step size dispersion
    seq_lengths: Tuple[int, ...] = ()

    @property
    def context_bytes(self) -> int:
        """Bytes the multiproc spawn initializer ships per worker."""
        return self.db_nbytes + self.query_bytes

    def cohorts_for(self, cap: int) -> int:
        """Cohort count at ``cap``, interpolating uncomputed caps."""
        if cap in self.cohorts:
            return self.cohorts[cap]
        if not self.cohorts:
            return self.num_queries
        nearest = min(self.cohorts, key=lambda c: abs(c - cap))
        return self.cohorts[nearest]


def _estimate_span_shape(lengths: np.ndarray, max_length: int) -> Tuple[int, int]:
    """Analytic (rows, fragment-weight) of the length-filtered span set.

    Prefix spans of a length-L sequence contribute lengths 2..min(L,
    max); suffixes 2..min(L-1, max); a span of length l weighs 2(l-1)
    fragments (b + y ladders).  Only *proportionality* matters: the
    profiler scales a measured sample build by the ratio of these
    weights, so constant factors in the weight cancel.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    k_pre = np.clip(lengths, 0, max_length)
    k_suf = np.clip(lengths - 1, 0, max_length)
    rows = np.clip(k_pre - 1, 0, None) + np.clip(k_suf - 1, 0, None)
    frags = k_pre * (k_pre - 1) + k_suf * (k_suf - 1)
    return int(rows.sum()), int(frags.sum())


def profile_workload(
    database,
    queries: Sequence,
    config: SearchConfig,
    *,
    sample_sequences: int = 160,
    sample_queries: int = 16,
    store=None,
) -> WorkloadProfile:
    """Measure the workload quantities the predictor consumes.

    Exact where exact is cheap (candidate totals via the vectorized
    counting kernels, cohort counts via the real coalescer on the real
    query masses); sampled where exact would cost a full run (the
    index-served row fraction and index shape come from a small
    prefix-database build, scaled analytically to full size).
    """
    count_config = dataclasses.replace(config, use_index=False)
    counter = ShardSearcher(database, count_config)
    query_counts = counter.count_each(list(queries))
    total_candidates = int(query_counts.sum())

    lows = np.array([mass_window(q, config.delta)[0] for q in queries])
    highs = lows + 2.0 * config.delta
    order = np.argsort(lows, kind="stable")
    lows, highs = lows[order], highs[order]
    cohorts = {
        cap: len(coalesce_windows(lows, highs, cap))
        for cap in (4, 16, 64, 256, 1024)
    }

    # index shape: build a small prefix-database index and scale by the
    # analytic span weights (generation-rule-exact, constant-free)
    sample_n = min(len(database), sample_sequences)
    sample_db = (
        database.slice_range(0, sample_n) if sample_n < len(database) else database
    )
    probe_config = dataclasses.replace(config, use_index=True)
    prober = ShardSearcher(sample_db, probe_config)
    scorer_indexable = prober.index is not None
    fraction = 0.0
    fragments = 0
    index_nbytes = 0
    if scorer_indexable:
        sample_rows, sample_frags = _estimate_span_shape(
            sample_db.lengths, config.index_max_length
        )
        full_rows, full_frags = _estimate_span_shape(
            database.lengths, config.index_max_length
        )
        scale = full_frags / sample_frags if sample_frags else 1.0
        fragments = int(prober.index.num_fragments * scale)
        index_nbytes = int(prober.index.nbytes * scale)
        probe_stats = prober.run(list(queries[: max(sample_queries, 1)]), {})
        if probe_stats.rows_scored:
            fraction = probe_stats.index_rows / probe_stats.rows_scored
    store_info = None
    if store is not None:
        store_info = {
            "blob_bytes": int(store.blob_bytes),
            "decoded_bytes": int(store.decoded_bytes),
            "num_partitions": int(store.num_partitions),
            "max_partition_bytes": int(store.max_partition_bytes),
        }
        index_nbytes = int(store.decoded_bytes)
    elif scorer_indexable and not index_nbytes:
        index_nbytes = int(fragments * DECODED_BYTES_PER_FRAGMENT)

    return WorkloadProfile(
        num_queries=len(queries),
        query_bytes=int(sum(q.nbytes for q in queries)),
        db_sequences=len(database),
        db_residues=int(database.total_residues),
        db_nbytes=int(database.nbytes),
        total_candidates=total_candidates,
        relative_cost=config.make_scorer(None).relative_cost,
        scorer_indexable=scorer_indexable,
        index_served_fraction=float(fraction),
        index_fragments=fragments,
        query_candidates=tuple(int(c) for c in query_counts),
        seq_lengths=tuple(int(l) for l in database.lengths),
        index_nbytes=index_nbytes,
        cohorts=cohorts,
        store=store_info,
    )


@dataclass
class PredictedMakespan:
    """Per-phase wall-second prediction for one plan."""

    total: float
    phases: Dict[str, float]

    def to_dict(self) -> Dict[str, Any]:
        return {"total_s": self.total, "phases": dict(self.phases)}


def predict_makespan(
    plan: CandidatePlan, profile: WorkloadProfile, cost: CostModel
) -> PredictedMakespan:
    """Wall-clock makespan prediction from calibrated terms.

    The phase decomposition mirrors what the engines charge: index build
    (amortized across workers), candidate evaluation split into
    index-served and direct rows, per-query vs. per-cohort overhead,
    streamed decode + exposed I/O, and — for multiproc — pool spin-up,
    context transport, and task dispatch.
    """
    rho = cost.rho_base * profile.relative_cost
    tau = cost.tau_cost
    m = profile.num_queries
    workers = max(plan.num_workers, 1) if plan.engine == "multiproc" else 1
    # wall-clock parallelism is bounded by the cores actually present:
    # extra workers on an oversubscribed host just time-slice, so CPU
    # work divides by the *effective* width, not the worker count
    eff = min(workers, os_cpu_count())

    serves_index = plan.use_index and profile.scorer_indexable
    index_rows = (
        profile.total_candidates * profile.index_served_fraction
        if serves_index
        else 0.0
    )
    direct_rows = profile.total_candidates - index_rows
    direct_rho = rho * (cost.sweep_eval_discount if plan.use_sweep else 1.0)
    evaluation = direct_rows * (direct_rho + tau) + index_rows * (
        rho * cost.index_probe_discount + tau
    )
    if plan.use_sweep:
        overhead = (
            cost.sweep_setup_per_query * m
            + cost.sweep_probe_per_cohort * profile.cohorts_for(plan.sweep_cohort)
        )
    else:
        overhead = cost.query_overhead * m

    # every worker runs *all* queries against its own database shard, so
    # per-query bookkeeping is paid once per worker — it parallelizes
    # only when spare cores absorb the duplication
    overhead_wall = overhead * workers / eff

    phases: Dict[str, float] = {}
    if plan.stream and profile.store is not None:
        decode = cost.partition_decode_time(profile.store["decoded_bytes"])
        io = cost.partition_io_time(
            profile.store["blob_bytes"], profile.store["num_partitions"]
        )
        phases["partition_decode"] = decode / eff
        phases["evaluation"] = evaluation / eff
        phases["query_overhead"] = overhead_wall
        phases["partition_exposed_io"] = cost.partition_exposed_io(
            io / eff, (decode + evaluation) / eff
        )
    else:
        if serves_index:
            # every worker builds its own shard's slice; the total build
            # work parallelizes like the shards do
            phases["index_build"] = (
                cost.index_build_time(profile.index_fragments) / eff
            )
        phases["evaluation"] = evaluation / eff
        phases["query_overhead"] = overhead_wall

    if plan.engine == "multiproc":
        method = plan.start_method or "fork"
        phases["worker_spinup"] = cost.worker_spinup_time(workers, method)
        if method == "spawn":
            # the spawn initializer re-ships the whole worker context to
            # every fresh interpreter; fork inherits it copy-on-write
            phases["transport"] = cost.transport_time(profile.context_bytes) * workers
        phases["task_dispatch"] = cost.task_dispatch_time(
            workers * max(plan.query_blocks, 1)
        )
    return PredictedMakespan(total=sum(phases.values()), phases=phases)


def enumerate_plans(
    profile: WorkloadProfile,
    *,
    engines: Sequence[str] = ("serial", "multiproc"),
    worker_choices: Optional[Sequence[int]] = None,
    query_blocks: Sequence[int] = (1, 4),
    sweep_cohorts: Sequence[int] = (16, 64, 256),
    start_methods: Optional[Sequence[str]] = None,
    memory_budget_mb: Optional[float] = None,
    allow_stream: bool = True,
) -> Tuple[List[CandidatePlan], List[Tuple[CandidatePlan, str]]]:
    """The feasible grid plus the pruned plans with their reasons.

    Feasibility is the advisor's memory-fit logic applied to real
    footprints: a resident plan must hold database + decoded index +
    queries inside the budget; a streamed plan only its two-partition
    double buffer (:func:`repro.core.advisor.streamed_residency_bytes`).
    """
    import multiprocessing as mp

    if start_methods is None:
        available = mp.get_all_start_methods()
        start_methods = [m for m in ("fork", "spawn") if m in available]
    cpus = os_cpu_count()
    if worker_choices is None:
        worker_choices = sorted({min(2, cpus), min(4, cpus)} - {0, 1})
    budget_bytes = (
        int(memory_budget_mb * 1024 * 1024) if memory_budget_mb is not None else None
    )

    plans: List[CandidatePlan] = []
    pruned: List[Tuple[CandidatePlan, str]] = []

    def consider(plan: CandidatePlan) -> None:
        if plan.use_index and not profile.scorer_indexable:
            pruned.append((plan, "scorer has no index kernel; identical to direct"))
            return
        if plan.engine == "multiproc" and plan.num_workers > cpus:
            pruned.append(
                (
                    plan,
                    f"{plan.num_workers} workers oversubscribe a {cpus}-core "
                    "host: they time-slice instead of parallelizing, and "
                    "still pay spin-up plus per-worker query bookkeeping",
                )
            )
            return
        if plan.stream:
            if profile.store is None:
                pruned.append((plan, "no partitioned store available to stream"))
                return
            need = streamed_residency_bytes(
                profile.store["max_partition_bytes"], profile.query_bytes
            )
            if not fits_in_budget(need, budget_bytes):
                pruned.append(
                    (plan, f"streamed double buffer ({need} B) exceeds budget")
                )
                return
        else:
            need = profile.db_nbytes + profile.query_bytes
            if plan.use_index and profile.scorer_indexable:
                need += profile.index_nbytes
            if not fits_in_budget(need, budget_bytes):
                pruned.append(
                    (plan, f"resident footprint ({need} B) exceeds budget")
                )
                return
        plans.append(plan)

    for engine in engines:
        if engine == "serial":
            worker_opts = [(1, 1, None)]
        else:
            worker_opts = [
                (w, b, s)
                for w in worker_choices
                for b in query_blocks
                for s in start_methods
            ]
            if not worker_opts:
                continue
        for workers, blocks, method in worker_opts:
            for use_index in (True, False):
                stream_opts = [False]
                if allow_stream and use_index:
                    stream_opts.append(True)
                for stream in stream_opts:
                    sweep_opts: List[Tuple[bool, int]] = [(False, 64)]
                    sweep_opts.extend((True, cap) for cap in sweep_cohorts)
                    for use_sweep, cap in sweep_opts:
                        consider(
                            CandidatePlan(
                                engine=engine,
                                use_index=use_index,
                                use_sweep=use_sweep,
                                sweep_cohort=cap,
                                stream=stream,
                                num_workers=workers,
                                query_blocks=blocks,
                                start_method=method,
                                memory_budget_mb=memory_budget_mb,
                            )
                        )
    return plans, pruned


def os_cpu_count() -> int:
    import os

    return os.cpu_count() or 1


def choose_plan(
    plans: Sequence[CandidatePlan], profile: WorkloadProfile, cost: CostModel
) -> Tuple[CandidatePlan, PredictedMakespan, List[Tuple[CandidatePlan, PredictedMakespan]]]:
    """Rank the feasible grid by predicted makespan; return the winner."""
    if not plans:
        raise ValueError("no feasible plans to choose from")
    ranked = sorted(
        ((p, predict_makespan(p, profile, cost)) for p in plans),
        key=lambda pair: pair[1].total,
    )
    best, prediction = ranked[0]
    return best, prediction, ranked
