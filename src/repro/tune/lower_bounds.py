"""Communication lower bounds: the analytic overlap projection.

Every configuration the tuner picks is judged against the theoretical
floor, not just the previous BENCH file.  The floor comes from the
paper's own complexity accounting for the Algorithm A rotation —
``O(lambda*p + mu*N)`` communication against ``O((N+m)/p + m/p*r*rho)``
compute — evaluated analytically at large simulated rank counts.

Why analytic: the event-driven simulator is O(p^2) in rotation steps
(p=512 costs ~80 s of host time, p=1024 ~500 s — measured), which is
far too slow for a per-run report.  The projection below reproduces the
same per-step charges the simulated rank program makes
(``core/algorithm_a.py``): per step, a rank computes
``iteration_overhead + scan(N/p) + eval/p^2 + overhead/p`` while the
next shard's one-sided fetch of ``N/p`` bytes is in flight; with
software RMA the step rendezvouses, so whatever wire time compute did
not cover becomes residual communication.  The event simulator at
p = 128 is cheap enough to run as a validation anchor
(:func:`simulate_anchor`).

Reported per rank count:

* ``residual_to_compute`` — the paper's headline overlap metric
  (measured 0.36 +/- 0.11 on their testbed).
* ``overlap_efficiency`` — compute / (compute + residual): the fraction
  of the critical path doing useful work.
* ``comm_floor_s`` / ``compute_floor_s`` — the two terms of the
  lower-bound makespan ``max(compute/p, lambda*p + mu*N)``: no schedule
  can beat whichever is larger.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

from repro.core.costmodel import CostModel
from repro.simmpi.network import NetworkModel
from repro.tune.plan import WorkloadProfile

#: simulated rank counts the tuning section reports (ROADMAP item 1:
#: "p = 128-1024 simulated ranks")
DEFAULT_PROJECTION_RANKS = (128, 512, 1024)


def _rotation_skew_total(profile: WorkloadProfile, cost: CostModel, p: int) -> float:
    """Total per-rank arrival deficit over one full rotation.

    Every rotation step rendezvouses, so each step costs every rank the
    gap to the step's *slowest* rank.  Two dispersion sources feed that
    gap: uneven contiguous query blocks (``partition_queries`` deals
    ceil/floor m/p queries per rank) and uneven byte-balanced shards
    (a shard's candidate weight grows ~quadratically in sequence length,
    so equal-residue shards are not equal-work shards).  With the exact
    per-query candidate counts and sequence lengths from the profile the
    p x p step matrix is computed outright — rank r scores shard
    (r + t) mod p at step t — and the summed max-minus-mean deficit
    falls out exactly.  O(p^2) vectorized: ~8 MB at p = 1024.
    """
    import numpy as np

    m = max(profile.num_queries, 1)
    per_cand = cost.rho_base * profile.relative_cost + cost.tau_cost
    counts = np.asarray(profile.query_candidates, dtype=float)
    if counts.size == 0:
        # degenerate profile: only the ceil/floor block-size gap remains
        mean_cand = profile.total_candidates / m
        per_query_vt = mean_cand * per_cand / p + cost.query_overhead
        return per_query_vt * (math.ceil(m / p) - m / p) * p

    qb = np.array([(counts.size * i) // p for i in range(p + 1)], dtype=np.int64)
    csum = np.concatenate([[0.0], np.cumsum(counts)])
    block_cand = csum[qb[1:]] - csum[qb[:-1]]  # candidates per rank block
    block_size = np.diff(qb).astype(float)

    lengths = np.asarray(profile.seq_lengths, dtype=float)
    if lengths.size and lengths.sum() > 0:
        # reproduce the byte-balanced contiguous split, weight each
        # sequence by its ~L^2 span count, and normalize to fractions
        res = np.concatenate([[0.0], np.cumsum(lengths)])
        targets = res[-1] * np.arange(p + 1) / p
        sb = np.searchsorted(res, targets)
        wsum = np.concatenate([[0.0], np.cumsum(lengths * lengths)])
        shard_w = wsum[sb[1:]] - wsum[sb[:-1]]
        total_w = shard_w.sum()
        shard_frac = shard_w / total_w if total_w > 0 else np.full(p, 1.0 / p)
    else:
        shard_frac = np.full(p, 1.0 / p)

    steps = np.arange(p)
    shard_idx = (steps[:, None] + steps[None, :]) % p  # [step, rank]
    vt = (
        block_cand[None, :] * shard_frac[shard_idx] * per_cand
        + cost.query_overhead * block_size[None, :]
    )
    return float((vt.max(axis=1) - vt.mean(axis=1)).sum())


def _project_point(
    profile: WorkloadProfile,
    cost: CostModel,
    network: NetworkModel,
    p: int,
) -> Dict[str, Any]:
    """One rank count's overlap projection (homogeneous-rank model)."""
    # the simulated machine charges the paper's C-struct footprint, and
    # ships raw shard bytes over the rotation ring
    db_bytes = cost.database_bytes(profile.db_sequences, profile.db_residues)
    shard_bytes = db_bytes / p
    wire_bytes = profile.db_nbytes / p

    eval_vt = profile.total_candidates * (
        cost.rho_base * profile.relative_cost + cost.tau_cost
    )
    overhead_vt = cost.query_overhead * profile.num_queries

    # per rotation step: each rank holds ~m/p queries against one N/p
    # shard — 1/p^2 of the candidate work — and re-pays its block's
    # per-query bookkeeping every step (algorithm_a charges
    # query_processing_overhead per iteration), while the next shard's
    # fetch is in flight
    compute_step = (
        cost.iteration_overhead
        + cost.scan_time(wire_bytes)
        + eval_vt / (p * p)
        + overhead_vt / p
    )
    comm_step = network.transfer_time(int(wire_bytes))
    residual_step = max(comm_step - compute_step, 0.0)
    if network.software_rma and p > 1:
        # Per-step rendezvous: the dissemination barrier itself is
        # unmaskable, and so is compute *skew* — everyone waits for the
        # step's slowest rank (scheduler.py charges arrival deficit plus
        # barrier_time(p) as "wait").
        residual_step += (
            network.barrier_time(p) + _rotation_skew_total(profile, cost, p) / p
        )

    compute_total = compute_step * p
    comm_issued = comm_step * p
    residual_total = residual_step * p
    makespan = (
        cost.load_time(shard_bytes, profile.num_queries / p)
        + compute_total
        + residual_total
    )
    comm_floor = network.latency * p + network.byte_cost * profile.db_nbytes
    compute_floor = eval_vt / p
    return {
        "ranks": p,
        "compute_s": compute_total,
        "comm_issued_s": comm_issued,
        "residual_s": residual_total,
        "makespan_s": makespan,
        "residual_to_compute": residual_total / compute_total if compute_total else 0.0,
        "masking_effectiveness": 1.0 - residual_total / comm_issued
        if comm_issued
        else 1.0,
        "overlap_efficiency": compute_total / (compute_total + residual_total)
        if compute_total + residual_total
        else 1.0,
        "compute_fraction": compute_total / makespan if makespan else 0.0,
        "comm_fraction": residual_total / makespan if makespan else 0.0,
        "idle_fraction": max(
            1.0
            - (compute_total + residual_total) / makespan
            if makespan
            else 0.0,
            0.0,
        ),
        "comm_floor_s": comm_floor,
        "compute_floor_s": compute_floor,
        "floor_makespan_s": max(comm_floor, compute_floor),
    }


def overlap_projection(
    profile: WorkloadProfile,
    cost: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    ranks: Sequence[int] = DEFAULT_PROJECTION_RANKS,
) -> Dict[str, Any]:
    """Overlap + lower-bound metrics at each simulated rank count.

    Uses the *paper-scaled* CostModel by default (the simulated
    machine's units), not the host-calibrated one: the floor is a
    property of the modeled cluster, and matching the event simulator's
    constants is what makes the p = 128 anchor comparable.
    """
    cost = cost if cost is not None else CostModel()
    network = network if network is not None else NetworkModel()
    return {
        "model": "algorithm_a rotation, LogGP"
        f"(lambda={network.latency:g}s, mu={network.byte_cost:g}s/B, "
        f"software_rma={network.software_rma})",
        "points": {
            str(p): _project_point(profile, cost, network, p) for p in ranks
        },
    }


def simulate_anchor(
    database,
    queries,
    config,
    num_ranks: int = 128,
) -> Dict[str, Any]:
    """Run the real event simulator once as a validation anchor.

    MODELED execution (exact candidate counts, no scoring) keeps this
    to a couple of seconds at p = 128.  The returned trace metrics are
    placed next to the projection so the report shows how closely the
    closed form tracks the event-driven machine.
    """
    import dataclasses

    from repro.core.config import ExecutionMode
    from repro.core.driver import run_search

    modeled = dataclasses.replace(
        config, execution=ExecutionMode.MODELED, use_index=False, use_sweep=False
    )
    report = run_search(database, queries, "algorithm_a", num_ranks, modeled)
    trace = report.trace
    return {
        "ranks": num_ranks,
        "makespan_s": report.virtual_time,
        "residual_to_compute": trace.mean_residual_to_compute if trace else None,
        "masking_effectiveness": trace.masking_effectiveness if trace else None,
        "compute_s": trace.total_compute if trace else None,
        "wait_s": trace.total_wait if trace else None,
    }
