"""Cost-model-driven autotuner (``repro tune`` / ``search --autotune``).

Three layers close the loop between the measurement half (``repro.obs``
spans) and the model half (:class:`~repro.core.costmodel.CostModel`):

1. **Calibration** (:mod:`repro.tune.calibrate`) — short seeded
   microbenchmarks fit the CostModel terms to *this* host from measured
   spans via least squares, cached on disk behind a machine fingerprint
   (:mod:`repro.tune.cache`).
2. **Planning** (:mod:`repro.tune.plan`) — enumerate the feasible knob
   grid (engine x index x sweep x cohort x blocks x start method x
   stream), prune with the advisor's memory-fit logic, and pick the
   configuration minimizing predicted makespan.
3. **Verification** (:mod:`repro.tune.tuner`) — run the chosen
   configuration, compare predicted vs. measured phase times
   span-by-span, and project the communication lower bounds
   (:mod:`repro.tune.lower_bounds`) at p = 128-1024 simulated ranks,
   all emitted as the RunReport ``tuning`` section.
"""

from repro.tune.cache import (  # noqa: F401
    CACHE_SCHEMA,
    load_calibration,
    machine_fingerprint,
    save_calibration,
)
from repro.tune.calibrate import Calibration, CalibrationSpec, calibrate  # noqa: F401
from repro.tune.lower_bounds import overlap_projection  # noqa: F401
from repro.tune.plan import (  # noqa: F401
    CandidatePlan,
    PredictedMakespan,
    WorkloadProfile,
    enumerate_plans,
    predict_makespan,
    profile_workload,
)
from repro.tune.tuner import TuneResult, autotune  # noqa: F401
