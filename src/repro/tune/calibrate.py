"""Calibration: fit CostModel terms to this host from measured spans.

A short, seeded battery of microbenchmarks exercises each hot path the
engines run — batch scoring kernels, the fragment-index probe, the
candidate-major sweep, partition read + decode, persisted-index load,
process transport and pool spin-up — under an enabled
:class:`~repro.obs.metrics.MetricsRegistry`.  The measured span
durations become the right-hand side of small least-squares systems
whose solutions are the CostModel terms, in *wall seconds on this
machine* (the shipped defaults are deliberately paper-scaled; see
``core/costmodel.py``).

The result is cached on disk (:mod:`repro.tune.cache`) behind a machine
fingerprint, so only the first ``repro tune`` on a host pays the
benchmark cost.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SearchConfig
from repro.core.costmodel import CostModel
from repro.core.search import ShardSearcher
from repro.obs.metrics import MetricsRegistry, get_metrics, use_registry
from repro.tune.cache import load_calibration, save_calibration
from repro.workloads.queries import generate_queries
from repro.workloads.synthetic import generate_database

#: CostModel fields a calibration is allowed to refit.  Anything else
#: (paper-scaled simulation constants like ``iteration_overhead``) is
#: out of scope on purpose: those model the paper's machine, not ours.
CALIBRATABLE_TERMS = (
    "rho_base",
    "tau_cost",
    "query_overhead",
    "index_probe_discount",
    "index_build_per_fragment",
    "index_load_per_byte",
    "index_open_overhead",
    "sweep_setup_per_query",
    "sweep_probe_per_cohort",
    "sweep_eval_discount",
    "partition_read_per_byte",
    "partition_decode_per_byte",
    "partition_open_overhead",
    "transport_ship_per_byte",
    "worker_spinup_fork",
    "worker_spinup_spawn",
    "task_dispatch_overhead",
)


@dataclass(frozen=True)
class CalibrationSpec:
    """Sizes and repeats of the microbenchmark battery.

    Defaults run the full battery in a few seconds; tests shrink them.
    """

    seed: int = 202
    db_size: int = 240  #: kernel/sweep benchmark database
    num_queries: int = 160
    store_db_size: int = 120  #: partition + persisted-store benchmarks
    repeats: int = 2  #: timed repetitions per point (min is kept)
    sweep_cohorts: Tuple[int, ...] = (4, 32, 128)
    partition_mb: float = 2.0
    transport_bytes: int = 1 << 22
    dispatch_tasks: int = 12
    include_spawn: bool = True  #: spawn spin-up costs ~0.5s to measure
    scorers: Tuple[str, ...] = ("likelihood", "shared_peaks")


@dataclass
class Calibration:
    """Fitted terms + fit diagnostics."""

    terms: Dict[str, float]
    details: Dict[str, Any] = field(default_factory=dict)
    source: str = "measured"  #: "measured" or "cache"
    cache_path: Optional[str] = None

    def cost_model(self, base: Optional[CostModel] = None) -> CostModel:
        """A CostModel with every fitted term replacing the default."""
        base = base if base is not None else CostModel()
        known = {f.name for f in dataclasses.fields(CostModel)}
        updates = {k: v for k, v in self.terms.items() if k in known}
        return dataclasses.replace(base, **updates)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "cache_path": self.cache_path,
            "terms": dict(self.terms),
            "details": dict(self.details),
        }


def _noop(_: int = 0) -> int:
    """Module-level so spawn can pickle it."""
    return 0


def _span_dur(registry: MetricsRegistry, name: str) -> float:
    """Total duration of all spans named ``name`` in ``registry``."""
    return sum(s["dur"] for s in registry.spans if s["name"] == name)


def _nonneg_lstsq(design: Sequence[Sequence[float]], rhs: Sequence[float]) -> np.ndarray:
    """Least squares with coefficients clipped to >= 0.

    Microbenchmark noise can pull a small coefficient slightly negative;
    a negative cost term is meaningless, so the fit is clipped.
    """
    a = np.asarray(design, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    x, *_ = np.linalg.lstsq(a, b, rcond=None)
    return np.clip(x, 0.0, None)


def _timed_search(
    db, queries, config: SearchConfig, repeats: int
) -> Tuple[float, Any, float, Any]:
    """Run one searcher workload ``repeats`` times; keep the fastest.

    Returns ``(search_dur, stats, index_build_dur, searcher)`` with
    durations read off the ``search.shard`` / ``index.build`` obs spans
    — the same spans the verification layer later compares against.
    """
    best = None
    for _ in range(max(repeats, 1)):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            searcher = ShardSearcher(db, config)
            stats = searcher.run(queries, {})
        dur = _span_dur(registry, "search.shard")
        build = _span_dur(registry, "index.build")
        if best is None or dur < best[0]:
            best = (dur, stats, build, searcher)
    return best


def _relative_cost(config: SearchConfig) -> float:
    return config.make_scorer(None).relative_cost


def _fit_kernel_terms(db, queries, spec: CalibrationSpec, details: Dict) -> Dict[str, float]:
    """rho_base / tau_cost / query_overhead from per-query direct runs.

    Each run obeys ``t = cand * (rho_base * rc + tau_cost) + qov * m``.
    Candidate counts scale linearly with the query count, so varying m
    would leave the candidate and query columns collinear (least-squares
    then splits per-candidate time arbitrarily into ``qov``, which
    poisons every downstream fit that subtracts it).  Instead the runs
    vary the scorer (different ``rc``) and the mass window ``delta``
    (different candidates-per-query) at a *fixed* query count.
    """
    rows: List[Dict[str, float]] = []
    m = spec.num_queries
    for scorer in spec.scorers:
        for delta in (3.0, 1.0):
            config = SearchConfig(
                delta=delta, tau=25, scorer=scorer, use_index=False, use_sweep=False
            )
            rc = _relative_cost(config)
            dur, stats, _, _ = _timed_search(db, queries[:m], config, spec.repeats)
            rows.append(
                {
                    "scorer": scorer,
                    "relative_cost": rc,
                    "delta": delta,
                    "queries": m,
                    "candidates": stats.candidates_evaluated,
                    "seconds": dur,
                }
            )
    design = [[r["candidates"] * r["relative_cost"], r["candidates"], r["queries"]] for r in rows]
    rhs = [r["seconds"] for r in rows]
    rho_base, tau_cost, query_overhead = _nonneg_lstsq(design, rhs)
    if rho_base <= 0.0:
        # degenerate fit (all scorers equal-cost): fall back to raw rate
        r = rows[-1]
        rho_base = r["seconds"] / max(r["candidates"] * r["relative_cost"], 1)
    details["kernel_runs"] = rows
    return {
        "rho_base": float(rho_base),
        "tau_cost": float(tau_cost),
        "query_overhead": float(query_overhead),
    }


def _fit_index_terms(
    db, queries, spec: CalibrationSpec, terms: Dict[str, float], details: Dict
) -> Dict[str, float]:
    """index_build_per_fragment + index_probe_discount from an indexed run."""
    config = SearchConfig(
        delta=3.0, tau=25, scorer="likelihood", use_index=True, use_sweep=False
    )
    rc = _relative_cost(config)
    dur, stats, build_dur, searcher = _timed_search(db, queries, config, spec.repeats)
    fragments = searcher.index.num_fragments if searcher.index is not None else 0
    out: Dict[str, float] = {}
    if fragments:
        out["index_build_per_fragment"] = build_dur / fragments
    rho = terms["rho_base"] * rc
    tau = terms["tau_cost"]
    qov = terms["query_overhead"]
    index_rows = stats.index_rows
    direct = stats.candidates_evaluated - index_rows
    if index_rows:
        residual = dur - qov * len(queries) - tau * stats.candidates_evaluated - rho * direct
        discount = residual / (rho * index_rows)
        out["index_probe_discount"] = float(np.clip(discount, 0.05, 1.5))
    details["index_run"] = {
        "seconds": dur,
        "build_seconds": build_dur,
        "num_fragments": fragments,
        "index_rows": index_rows,
        "candidates": stats.candidates_evaluated,
    }
    return out


def _fit_sweep_terms(
    db, queries, spec: CalibrationSpec, terms: Dict[str, float], details: Dict
) -> Dict[str, float]:
    """Sweep terms: t = cand*(rho*rc*d + tau) + setup*m + probe*cohorts.

    Candidate counts scale linearly with the query count, so varying m
    cannot separate per-candidate from per-query cost (the columns are
    collinear).  Varying the cohort *cap* barely moves the cohort count
    either: cohorts come from coalescing overlapping mass windows, and
    at realistic densities the merged-group count is set by the window
    layout, not the cap (measured: cap 4 vs 128 shifts cohorts by <10%,
    so a cap-contrast fit collapses ``probe`` into noise).  The mass
    window ``delta`` is the knob that conditions the system: widening it
    multiplies candidates-per-query severalfold while *merging* windows
    into fewer cohorts — the two columns move in opposite directions, so
    a joint least squares over a delta ladder (plus one narrow-cap run
    for extra cohort spread) separates all three terms.
    """
    rc = _relative_cost(SearchConfig(scorer="likelihood"))
    m = spec.num_queries

    def run(cap: int, delta: float) -> Dict[str, float]:
        config = SearchConfig(
            delta=delta,
            tau=25,
            scorer="likelihood",
            use_index=False,
            use_sweep=True,
            sweep_cohort=cap,
        )
        dur, stats, _, _ = _timed_search(db, queries[:m], config, spec.repeats)
        return {
            "cohort_cap": cap,
            "delta": delta,
            "queries": m,
            "cohorts": stats.sweep_cohorts,
            "candidates": stats.candidates_evaluated,
            "seconds": dur,
        }

    wide_cap = spec.sweep_cohorts[-1]
    rows = [run(wide_cap, delta) for delta in (1.0, 1.5, 3.0, 6.0)]
    rows.append(run(spec.sweep_cohorts[0], 3.0))
    per_cand, probe, setup = _nonneg_lstsq(
        [[r["candidates"], r["cohorts"], r["queries"]] for r in rows],
        [r["seconds"] for r in rows],
    )
    rho = terms["rho_base"] * rc
    discount = (per_cand - terms["tau_cost"]) / rho if rho > 0 else 1.0
    details["sweep_runs"] = rows
    return {
        "sweep_eval_discount": float(np.clip(discount, 0.05, 1.5)),
        "sweep_setup_per_query": float(setup),
        "sweep_probe_per_cohort": float(probe),
    }


def _fit_partition_terms(db_small, spec: CalibrationSpec, details: Dict) -> Dict[str, float]:
    """Partition read/open/decode costs from a throwaway partitioned store."""
    from repro.store import save_partitioned_index

    out: Dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="repro-tune-pstore-") as tmp:
        store = save_partitioned_index(
            db_small, os.path.join(tmp, "pstore"), partition_mb=spec.partition_mb
        )
        entries = store.partitions
        if not entries:
            return out
        # warm pass so the fit measures steady-state (page-cache) reads,
        # which is what repeated searches on one host actually see
        for i in range(len(entries)):
            store.read_partition_blob(i)
        read_rows: List[Tuple[float, float]] = []
        decode_rows: List[Tuple[float, float]] = []
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            for i, entry in enumerate(entries):
                t0 = time.perf_counter()
                blob = store.read_partition_blob(i)
                read_rows.append((float(entry.blob_bytes), time.perf_counter() - t0))
                t0 = time.perf_counter()
                store.decode_partition_blob(i, blob)
                decode_rows.append(
                    (float(entry.decoded_bytes), time.perf_counter() - t0)
                )
        open_overhead, read_per_byte = _nonneg_lstsq(
            [[1.0, nbytes] for nbytes, _ in read_rows],
            [dur for _, dur in read_rows],
        )
        decoded_total = sum(nbytes for nbytes, _ in decode_rows)
        if decoded_total:
            out["partition_decode_per_byte"] = float(
                sum(dur for _, dur in decode_rows) / decoded_total
            )
        out["partition_open_overhead"] = float(open_overhead)
        out["partition_read_per_byte"] = float(read_per_byte)
        details["partition_bench"] = {
            "num_partitions": len(entries),
            "blob_bytes": store.blob_bytes,
            "decoded_bytes": store.decoded_bytes,
        }
    return out


def _fit_store_load_terms(db_small, spec: CalibrationSpec, details: Dict) -> Dict[str, float]:
    """Persisted-index open + load costs from a throwaway resident store."""
    from repro.store import open_any_index, save_index

    out: Dict[str, float] = {}
    with tempfile.TemporaryDirectory(prefix="repro-tune-store-") as tmp:
        path = os.path.join(tmp, "store")
        save_index(db_small, path, num_shards=1)
        open_any_index(path).load_shard(0)  # warm the page cache
        t0 = time.perf_counter()
        store = open_any_index(path)
        open_dur = time.perf_counter() - t0
        t0 = time.perf_counter()
        loaded = store.load_shard(0)
        load_dur = time.perf_counter() - t0
        out["index_open_overhead"] = float(open_dur)
        if loaded.nbytes:
            out["index_load_per_byte"] = float(load_dur / loaded.nbytes)
        details["store_load_bench"] = {
            "open_seconds": open_dur,
            "load_seconds": load_dur,
            "nbytes": loaded.nbytes,
        }
    return out


def _fit_transport_terms(spec: CalibrationSpec, details: Dict) -> Dict[str, float]:
    """Pickle transport, pool spin-up (per start method), task dispatch."""
    import multiprocessing as mp

    out: Dict[str, float] = {}
    payload = np.random.default_rng(spec.seed).bytes(spec.transport_bytes)
    best = float("inf")
    for _ in range(max(spec.repeats, 1)):
        t0 = time.perf_counter()
        pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        best = min(best, time.perf_counter() - t0)
    out["transport_ship_per_byte"] = best / spec.transport_bytes

    available = mp.get_all_start_methods()
    spinups: Dict[str, float] = {}
    methods = [m for m in ("fork", "spawn") if m in available]
    if not spec.include_spawn:
        methods = [m for m in methods if m != "spawn"]
    for method in methods:
        ctx = mp.get_context(method)
        t0 = time.perf_counter()
        with ctx.Pool(1) as pool:
            pool.apply(_noop)
            spinups[method] = time.perf_counter() - t0
            # dispatch cost measured on the warm pool (fork preferred,
            # but whichever method ran last works)
            t0 = time.perf_counter()
            for _ in range(spec.dispatch_tasks):
                pool.apply(_noop)
            out["task_dispatch_overhead"] = (
                time.perf_counter() - t0
            ) / spec.dispatch_tasks
    if "fork" in spinups:
        out["worker_spinup_fork"] = spinups["fork"]
    if "spawn" in spinups:
        out["worker_spinup_spawn"] = spinups["spawn"]
    details["transport_bench"] = {
        "payload_bytes": spec.transport_bytes,
        "spinup_seconds": spinups,
        "start_methods": methods,
    }
    return out


def run_calibration(spec: Optional[CalibrationSpec] = None) -> Calibration:
    """Run the full microbenchmark battery and fit every term."""
    spec = spec or CalibrationSpec()
    obs = get_metrics()
    t_start = time.perf_counter()
    details: Dict[str, Any] = {"spec": dataclasses.asdict(spec)}
    with obs.span("tune.calibrate", category="tune"):
        db = generate_database(spec.db_size, seed=spec.seed)
        db_small = generate_database(spec.store_db_size, seed=spec.seed)
        queries = generate_queries(spec.num_queries, seed=spec.seed + 1)
        terms = _fit_kernel_terms(db, queries, spec, details)
        terms.update(_fit_index_terms(db, queries, spec, terms, details))
        terms.update(_fit_sweep_terms(db, queries, spec, terms, details))
        terms.update(_fit_partition_terms(db_small, spec, details))
        terms.update(_fit_store_load_terms(db_small, spec, details))
        terms.update(_fit_transport_terms(spec, details))
    details["calibration_seconds"] = time.perf_counter() - t_start
    obs.observe("tune.calibrate_seconds", details["calibration_seconds"])
    defaults = CostModel()
    details["vs_defaults"] = {
        name: {
            "default": getattr(defaults, name),
            "calibrated": terms[name],
            "ratio": terms[name] / getattr(defaults, name)
            if getattr(defaults, name)
            else None,
        }
        for name in terms
        if hasattr(defaults, name)
    }
    return Calibration(terms=terms, details=details, source="measured")


def calibrate(
    spec: Optional[CalibrationSpec] = None,
    cache_path: Optional[str] = None,
    force: bool = False,
) -> Calibration:
    """Calibration with the on-disk cache in front.

    A valid cache (same schema, same machine fingerprint, well-formed
    terms) short-circuits the benchmarks; anything else — including a
    torn or corrupt file — falls back to measuring and rewrites the
    cache atomically.
    """
    if cache_path and not force:
        payload = load_calibration(cache_path)
        if payload is not None:
            get_metrics().count("tune.calibration_cache_hits")
            return Calibration(
                terms=dict(payload["terms"]),
                details=dict(payload.get("details", {})),
                source="cache",
                cache_path=os.path.expanduser(cache_path),
            )
    result = run_calibration(spec)
    if cache_path:
        get_metrics().count("tune.calibration_cache_misses")
        result.cache_path = save_calibration(
            cache_path, result.terms, details={"calibration_seconds": result.details.get("calibration_seconds")}
        )
    return result
