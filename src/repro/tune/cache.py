"""On-disk calibration cache: fingerprinted, atomic, self-invalidating.

Calibration costs a few seconds of microbenchmarks, so repeat runs keep
the fitted terms on disk.  The cache borrows the two discipline points
of the ``repro.store`` header (store/index_store.py):

* **Atomic writes** — serialize to a hidden tmp sibling in the target
  directory, fsync, then ``os.replace``.  A reader never observes a
  torn file; a crash mid-write leaves the previous cache (or nothing)
  in place.
* **Fingerprint validation** — the payload embeds a machine fingerprint
  (platform, CPU count, python/numpy versions) and a schema tag.  Any
  mismatch — different host, different interpreter, corrupt or
  truncated JSON, terms that fail validation — makes :func:`load_calibration`
  return ``None`` and the caller re-calibrates.  A stale or damaged
  cache can cost one calibration pass, never a wrong answer or a crash.
"""

from __future__ import annotations

import json
import math
import os
import platform
from typing import Any, Dict, Optional

CACHE_SCHEMA = "repro.tune_calibration/1"

#: default cache location; overridable per call and via ``repro tune --cache``
DEFAULT_CACHE_PATH = os.path.join("~", ".cache", "repro", "calibration.json")


def machine_fingerprint() -> Dict[str, Any]:
    """Identity of the machine + toolchain the calibration measured.

    Anything that changes kernel timings materially belongs here: a
    cache fitted under numpy X on machine A must not predict makespans
    under numpy Y on machine B.
    """
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count() or 1,
    }


def _valid_terms(terms: Any) -> bool:
    """Terms must be a non-empty str->finite-nonnegative-float mapping."""
    if not isinstance(terms, dict) or not terms:
        return False
    for name, value in terms.items():
        if not isinstance(name, str):
            return False
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if not math.isfinite(value) or value < 0:
            return False
    return True


def save_calibration(
    path: str, terms: Dict[str, float], details: Optional[Dict[str, Any]] = None
) -> str:
    """Atomically persist fitted terms; returns the expanded path."""
    path = os.path.expanduser(path)
    payload = {
        "schema": CACHE_SCHEMA,
        "fingerprint": machine_fingerprint(),
        "terms": dict(terms),
        "details": details or {},
    }
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    tmp = os.path.join(parent, f".{os.path.basename(path)}.tmp-{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_calibration(path: str) -> Optional[Dict[str, Any]]:
    """Load a cached calibration, or ``None`` if it cannot be trusted.

    Every failure mode — missing file, torn/corrupt JSON, schema drift,
    fingerprint mismatch, invalid term values — degrades to ``None``
    (re-calibrate), never an exception.
    """
    path = os.path.expanduser(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != CACHE_SCHEMA:
        return None
    if payload.get("fingerprint") != machine_fingerprint():
        return None
    if not _valid_terms(payload.get("terms")):
        return None
    return payload
