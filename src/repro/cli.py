"""Command-line interface: ``python -m repro <command>`` or ``repro <command>``.

Commands:

* ``generate`` — write a synthetic database as FASTA.
* ``search``   — run a search with any engine and print the top hits
  (``--index-path`` serves it from a persisted index, see below).
* ``index``    — ``index build`` persists a fragment index to a
  directory (build once); ``index inspect`` prints its header.  A
  persisted index is fingerprint-bound to the exact database and build
  options that produced it and is memory-mapped read-only at search
  time (load many); see docs/index_persistence.md.
* ``scaling``  — regenerate a Table II-style run-time/speedup grid.
* ``validate`` — check that Algorithms A and B reproduce the serial
  engine's output exactly (the paper's validation experiment).
* ``calibrate`` — measure this host's per-candidate scoring cost.
* ``tune``     — calibrate the cost model against this host, search the
  configuration grid for the lowest predicted makespan, run the pick,
  and report predicted-vs-measured phase times plus overlap lower
  bounds (docs/autotuning.md).  ``search --autotune`` applies the same
  planner to a search; explicitly typed flags always win.
* ``trace``    — export one run's timeline as Chrome trace-event JSON
  (open in chrome://tracing or Perfetto) or an ascii gantt.
* ``serve``    — start the long-lived search service and replay a
  deterministic multi-client request storm against it (admission
  control, coalescing, deadlines, fault injection; docs/service.md).
* ``experiments`` — run/resume/report a declarative scenario grid
  (``scenarios/*.yaml``): every cell a checkpointed RunReport, one
  aggregate with speedup/efficiency tables and identity checks
  (docs/experiments.md).  ``repro experiments run
  scenarios/paper_tables.yaml`` reproduces the paper's tables.

``search --report-out report.json`` writes the schema-versioned
:class:`~repro.obs.report.RunReport` (trace, fault stats, extras and a
metrics snapshot in one document); see docs/observability.md.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import List, Optional

from repro.analysis.calibration import calibrate_rho
from repro.analysis.metrics import scaling_table
from repro.analysis.tables import format_runtime_table, format_scaling_rows
from repro.chem.fasta import read_fasta, write_fasta
from repro.core.config import ExecutionMode, SearchConfig
from repro.core.driver import ALGORITHMS, run_search
from repro.core.results import reports_equal
from repro.core.search import search_serial
from repro.errors import ReproError
from repro.utils.format import format_si
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_queries
from repro.workloads.synthetic import generate_database


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a value > 0, got {value}")
    return value


def _existing_file(text: str) -> str:
    if not os.path.isfile(text):
        raise argparse.ArgumentTypeError(f"file not found: {text}")
    return text


def _add_search_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--database-size", "-n", type=_positive_int, default=2000, help="number of synthetic proteins")
    p.add_argument("--queries", "-m", type=_positive_int, default=100, help="number of query spectra")
    p.add_argument("--seed", type=int, default=202, help="database seed")
    p.add_argument("--query-seed", type=int, default=17, help="query workload seed")
    p.add_argument("--delta", type=_positive_float, default=3.0, help="parent-mass tolerance (Da)")
    p.add_argument("--tau", type=_positive_int, default=50, help="top hits kept per query")
    p.add_argument("--scorer", default="likelihood", help="scoring model")
    p.add_argument(
        "--use-index",
        dest="use_index",
        action="store_true",
        default=True,
        help="serve unmodified candidates from the fragment-ion index (default)",
    )
    p.add_argument(
        "--no-index",
        dest="use_index",
        action="store_false",
        help="disable the fragment-ion index (direct batch scoring only)",
    )
    p.add_argument(
        "--use-sweep",
        dest="use_sweep",
        action="store_true",
        default=False,
        help="run the candidate-major sweep kernel (bitwise-identical hits)",
    )
    p.add_argument(
        "--no-sweep",
        dest="use_sweep",
        action="store_false",
        help="per-query candidate enumeration (default)",
    )
    p.add_argument(
        "--sweep-cohort",
        type=_positive_int,
        default=64,
        help="max queries coalesced into one sweep cohort",
    )


def _explicit_cli_options(argv: List[str]) -> set:
    """Option strings the user actually typed (``--flag`` / ``--flag=x`` / ``-f``).

    argparse cannot distinguish a default from an explicitly passed
    default, so ``--autotune`` precedence ("explicit wins") scans the
    raw argv instead.
    """
    seen = set()
    for token in argv:
        if token == "--":
            break
        if token.startswith("--"):
            seen.add(token.split("=", 1)[0])
        elif token.startswith("-") and len(token) > 1 and not token[1].isdigit():
            seen.add(token[:2])
    return seen


def _apply_autotune(args: argparse.Namespace, db, queries):
    """Let the autotuner pick engine/knobs; explicitly typed flags win.

    Mutates ``args`` in place for every knob the user did not type,
    warns (stderr) for each explicit flag that contradicts the
    autotuned choice, and returns the RunReport ``tuning`` section.
    """
    from repro.tune import autotune

    result = autotune(
        db,
        queries,
        _make_config(args),
        cache_path=args.tune_cache,
        run=False,
        lower_bounds=False,
    )
    plan = result.chosen
    explicit = _explicit_cli_options(getattr(args, "_cli_argv", []))
    knobs = [
        ("algorithm", {"--algorithm", "-a"},
         "multiproc" if plan.engine == "multiproc" else "serial"),
        ("ranks", {"--ranks", "-p"},
         plan.num_workers if plan.engine == "multiproc" else 1),
        ("use_index", {"--use-index", "--no-index"}, plan.use_index),
        ("use_sweep", {"--use-sweep", "--no-sweep"}, plan.use_sweep),
        ("sweep_cohort", {"--sweep-cohort"}, plan.sweep_cohort),
        ("query_blocks", {"--query-blocks"}, plan.query_blocks),
        ("start_method", {"--start-method"}, plan.start_method),
    ]
    for attr, options, value in knobs:
        typed = options & explicit
        if typed:
            if getattr(args, attr) != value:
                print(
                    f"warning: explicit {sorted(typed)[0]} overrides the "
                    f"autotuned choice ({value!r}); the predicted makespan "
                    f"no longer applies",
                    file=sys.stderr,
                )
        else:
            setattr(args, attr, value)
    print(
        f"autotune: chose {plan.label} (predicted "
        f"{result.prediction.total:.3f}s over {len(result.ranking)} "
        f"feasible configuration(s), calibration {result.calibration.source})"
    )
    return result.tuning


def _make_config(args: argparse.Namespace, execution: ExecutionMode = ExecutionMode.REAL) -> SearchConfig:
    return SearchConfig(
        delta=args.delta,
        tau=args.tau,
        scorer=args.scorer,
        execution=execution,
        use_index=getattr(args, "use_index", True),
        use_sweep=getattr(args, "use_sweep", False),
        sweep_cohort=getattr(args, "sweep_cohort", 64),
    )


def cmd_generate(args: argparse.Namespace) -> int:
    db = (
        load_dataset(args.dataset, n=args.database_size)
        if args.dataset
        else generate_database(args.database_size, seed=args.seed)
    )
    write_fasta(args.output, db)
    print(f"wrote {len(db)} sequences ({format_si(db.total_residues)} residues) to {args.output}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    db = (
        read_fasta(args.database)
        if args.database
        else generate_database(args.database_size, seed=args.seed)
    )
    queries = generate_queries(args.queries, seed=args.query_seed)
    tuning_section = None
    if args.autotune:
        tuning_section = _apply_autotune(args, db, queries)
    if args.memory_budget_mb is not None and not args.stream and not args.index_path:
        from repro.errors import ConfigError

        raise ConfigError(
            "--memory-budget-mb bounds streamed partition residency and is "
            "silently meaningless for resident runs; add --stream, or point "
            "--index-path at a partitioned store"
        )
    config = _make_config(args)
    index_path = args.index_path
    stream_tmp = None
    if args.stream and not index_path:
        # --stream without a store: build a throwaway partitioned store
        # next to nothing (temp dir) and stream the search from it — a
        # self-contained out-of-core run with no separate build step.
        import tempfile

        from repro.errors import IndexCompatError
        from repro.store import save_partitioned_index

        if args.algorithm not in ("serial", "multiproc"):
            raise IndexCompatError(
                f"--stream is served by the real engines (serial, multiproc); "
                f"the simulated engine {args.algorithm!r} models execution"
            )
        stream_tmp = tempfile.TemporaryDirectory(prefix="repro-pstore-")
        index_path = os.path.join(stream_tmp.name, "index")
        save_partitioned_index(
            db,
            index_path,
            partition_mb=args.partition_mb,
            fragment_tolerance=config.fragment_tolerance,
            max_length=config.index_max_length,
        )
    index_store = None
    if index_path:
        # Every misuse below is a *typed* ReproError: main() turns it
        # into a one-line `error: ...` message, never a traceback.
        from repro.core.search import index_compat_problems
        from repro.errors import IndexCompatError
        from repro.store import open_any_index
        from repro.store.partitioned import PartitionedIndex

        if args.algorithm not in ("serial", "multiproc"):
            raise IndexCompatError(
                f"--index-path is served by the real engines (serial, "
                f"multiproc); the simulated engine {args.algorithm!r} models "
                f"execution and cannot memory-map a persisted index"
            )
        # opened here so a missing/corrupt path fails before any work;
        # the engines fingerprint-validate it against the database
        store = open_any_index(index_path)
        if isinstance(store, PartitionedIndex):
            from repro.core.streaming import streaming_compat_problems

            problems = streaming_compat_problems(config)
            if problems:
                raise IndexCompatError(
                    "this search cannot be streamed from the partitioned "
                    "index: " + "; ".join(problems)
                )
        else:
            if args.stream:
                raise IndexCompatError(
                    f"--stream needs a partitioned store "
                    f"(`repro index build --partition-mb ...`); "
                    f"{index_path} holds a resident-format store"
                )
            if args.memory_budget_mb is not None:
                from repro.errors import ConfigError

                raise ConfigError(
                    f"--memory-budget-mb bounds streamed partition residency; "
                    f"{index_path} holds a resident-format store that is "
                    f"memory-mapped whole"
                )
            problems = index_compat_problems(config)
            if problems:
                raise IndexCompatError(
                    "this search cannot be served from the persisted index: "
                    + "; ".join(problems)
                )
        if args.algorithm == "serial":
            index_store = store
    registry = None
    if args.report_out:
        # collect runtime telemetry for the RunReport; search results are
        # bitwise identical with or without it
        from repro.obs.metrics import enable_metrics

        registry = enable_metrics()
        registry.reset()
    if args.algorithm == "multiproc":
        from repro.engines.multiproc import run_multiprocess_search
        from repro.faults.injector import FaultInjector, TaskFault

        injector = None
        if args.fault_plan:
            from repro.faults.plan import FaultPlan

            plan = FaultPlan.from_file(args.fault_plan)
            # map simulated rank crashes onto task crashes: a crash of
            # rank r becomes a single injected crash of task r
            injector = FaultInjector(
                tuple(TaskFault(c.rank, "crash", attempts=1) for c in plan.crashes)
            )
        report = run_multiprocess_search(
            db,
            queries,
            num_workers=args.ranks,
            config=config,
            query_blocks=args.query_blocks,
            start_method=args.start_method,
            max_retries=args.max_retries,
            task_timeout=args.task_timeout,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            fault_injector=injector,
            index_path=index_path,
            memory_budget_mb=args.memory_budget_mb,
        )
        if report.extras.get("degraded"):
            print(
                f"warning: {len(report.extras['failed_tasks'])} task(s) quarantined "
                f"after retries; results are partial",
                file=sys.stderr,
            )
        if report.extras.get("tasks_resumed"):
            print(
                f"resumed {report.extras['tasks_resumed']} completed task(s) from "
                f"{args.checkpoint}"
            )
    elif index_store is not None:
        from repro.errors import ConfigError

        if args.ranks != 1:
            raise ConfigError(
                f"serial engine requires num_ranks == 1, got {args.ranks}"
            )
        report = search_serial(
            db,
            queries,
            config,
            index_store=index_store,
            memory_budget_mb=args.memory_budget_mb,
        )
    else:
        cluster_config = None
        if args.fault_plan:
            from repro.faults.plan import FaultPlan
            from repro.simmpi.scheduler import ClusterConfig

            cluster_config = ClusterConfig(
                num_ranks=args.ranks, fault_plan=FaultPlan.from_file(args.fault_plan)
            )
        report = run_search(
            db, queries, args.algorithm, args.ranks, config, cluster_config=cluster_config
        )
        if report.extras.get("failed_ranks"):
            print(
                f"survived rank failure(s) {report.extras['failed_ranks']}: "
                f"{report.extras['recovery_fetches']} recovery fetches, "
                f"{report.extras['recovery_time']:.3f}s recovery time"
            )
    if registry is not None:
        from repro.obs.metrics import enable_metrics
        from repro.obs.report import RunReport

        enable_metrics(False)
        RunReport.from_search_report(
            report, metrics=registry.snapshot(), tuning=tuning_section
        ).write(args.report_out)
        print(f"wrote run report to {args.report_out}")
    if args.output:
        from repro.core.results import write_tsv

        write_tsv(report, args.output, database=db)
        print(f"wrote identifications to {args.output}")
    print(
        f"{report.algorithm} p={report.num_ranks}: simulated time "
        f"{report.virtual_time:.2f}s, {report.candidates_evaluated} candidate "
        f"evaluations ({report.candidates_per_second:.0f}/s)"
    )
    stream = report.extras.get("stream")
    if stream:
        print(
            f"  streamed {stream['partitions']} partition(s): "
            f"{format_si(stream['bytes_read'])}B read -> "
            f"{format_si(stream['bytes_decoded'])}B decoded, "
            f"{stream['prefetch_hits']} prefetch hit(s) / "
            f"{stream['prefetch_stalls']} stall(s), "
            f"exposed I/O {stream['partition_exposed_io']:.3f}s"
        )
    shown = 0
    for qid in sorted(report.hits):
        top = report.top_hit(qid)
        if top is None or shown >= args.show:
            continue
        print(
            f"  query {qid}: protein {top.protein_id} span "
            f"[{top.start},{top.stop}) mass {top.mass:.3f} score {top.score:.3f}"
        )
        shown += 1
    if stream_tmp is not None:
        stream_tmp.cleanup()
    return 0


def cmd_index_build(args: argparse.Namespace) -> int:
    """Build a persistent fragment-index store (build once, load many).

    With ``--partition-mb`` the store is the *partitioned* out-of-core
    format instead: mass-contiguous compressed partitions streamed at
    search time (``search --stream`` / ``--index-path``).
    """
    db = (
        read_fasta(args.database)
        if args.database
        else generate_database(args.database_size, seed=args.seed)
    )
    if args.partition_mb is not None:
        from repro.store import save_partitioned_index

        store = save_partitioned_index(
            db,
            args.output,
            partition_mb=args.partition_mb,
            fragment_tolerance=args.fragment_tolerance,
            max_length=args.index_max_length,
            overwrite=args.overwrite,
        )
        info = store.describe()
        print(
            f"built partitioned index for {len(db)} sequences "
            f"({format_si(db.total_residues)} residues): "
            f"{info['num_partitions']} partition(s), "
            f"{format_si(info['blob_bytes'])}B compressed "
            f"({format_si(info['decoded_bytes'])}B decoded, "
            f"{format_si(info['max_partition_bytes'])}B double-buffer unit) "
            f"at {args.output}"
        )
        print(f"fingerprint {store.fingerprint}")
        return 0
    from repro.store import save_index

    store = save_index(
        db,
        args.output,
        num_shards=args.shards,
        fragment_tolerance=args.fragment_tolerance,
        max_length=args.index_max_length,
        overwrite=args.overwrite,
    )
    info = store.describe()
    print(
        f"built index for {len(db)} sequences "
        f"({format_si(db.total_residues)} residues): {info['num_shards']} "
        f"shard(s), {format_si(info['total_bytes'])}B at {args.output}"
    )
    print(f"fingerprint {store.fingerprint}")
    return 0


def cmd_index_inspect(args: argparse.Namespace) -> int:
    """Print a persisted index's header: schema, fingerprint, manifests.

    Dispatches on the on-disk schema: resident stores list shards,
    partitioned stores list per-partition m/z ranges, postings counts
    and compressed/decoded sizes.
    """
    from repro.store import open_any_index
    from repro.store.partitioned import PartitionedIndex

    store = open_any_index(args.path)
    info = store.describe()
    if isinstance(store, PartitionedIndex):
        build = info["build"]
        print(f"partitioned index store {info['path']}")
        print(f"  schema       {info['schema']}")
        print(f"  fingerprint  {info['fingerprint']}")
        print(
            f"  build        fragment_tolerance={build['fragment_tolerance']} "
            f"max_length={build['max_length']} "
            f"monoisotopic={build['monoisotopic']} "
            f"partition_mb={build['partition_mb']}"
        )
        print(
            f"  bytes        compressed={format_si(info['blob_bytes'])}B "
            f"decoded={format_si(info['decoded_bytes'])}B "
            f"double_buffer_unit={format_si(info['max_partition_bytes'])}B"
        )
        print(
            f"  rows         {info['num_rows']} in {info['num_partitions']} "
            f"partition(s) + {info['overflow_spans']} overflow span(s)"
        )
        for p in info["partitions"]:
            print(
                f"  {p['name']}  m/z [{p['mass_lo']:.3f}, {p['mass_hi']:.3f}] "
                f"rows={p['num_rows']} postings={p['postings']} "
                f"compressed={format_si(p['blob_bytes'])}B "
                f"decoded={format_si(p['decoded_bytes'])}B"
            )
        return 0
    build = info["build"]
    print(f"index store {info['path']}")
    print(f"  schema       {info['schema']}")
    print(f"  fingerprint  {info['fingerprint']}")
    print(
        f"  build        fragment_tolerance={build['fragment_tolerance']} "
        f"max_length={build['max_length']} "
        f"monoisotopic={build['monoisotopic']} "
        f"shards={build['num_shards']}"
    )
    print(
        f"  bytes        total={format_si(info['total_bytes'])}B "
        f"index={format_si(info['index_bytes'])}B"
    )
    for shard in info["shards"]:
        print(
            f"  {shard['dir']}  rows={shard['num_rows']} "
            f"fragments={shard['num_fragments']} "
            f"bytes={format_si(shard['bytes'])}B"
        )
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    queries = generate_queries(args.queries, seed=args.query_seed)
    config = _make_config(args, ExecutionMode.MODELED)
    sizes = [int(s) for s in args.sizes.split(",")]
    ranks = [int(p) for p in args.ranks_list.split(",")]
    run_times = {}
    for n in sizes:
        db = generate_database(n, seed=args.seed)
        run_times[n] = {}
        for p in ranks:
            rep = run_search(db, queries, args.algorithm, p, config)
            run_times[n][p] = rep.virtual_time
    print(format_runtime_table(run_times, ranks, title=f"{args.algorithm} run-times (s)"))
    print()
    print(format_scaling_rows(scaling_table(run_times), title="speedup / efficiency"))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    db = generate_database(args.database_size, seed=args.seed)
    queries = generate_queries(args.queries, seed=args.query_seed)
    config = _make_config(args)
    reference = search_serial(db, queries, config)
    failed = False
    for algorithm in ("algorithm_a", "algorithm_b", "master_worker"):
        report = run_search(db, queries, algorithm, args.ranks, config)
        ok = reports_equal(reference, report)
        print(f"{algorithm} p={args.ranks}: {'OK — output identical to serial' if ok else 'MISMATCH'}")
        failed |= not ok
    return 1 if failed else 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run several engines on one workload; compare time, memory, quality."""
    from repro.analysis.quality import recovery
    from repro.workloads.queries import QueryWorkload

    db = generate_database(args.database_size, seed=args.seed)
    spectra, targets = QueryWorkload(
        num_queries=args.queries, seed=args.query_seed, source=db
    ).build()
    config = _make_config(args)
    algorithms = args.algorithms.split(",")
    rows = []
    for algorithm in algorithms:
        report = run_search(db, spectra, algorithm, args.ranks, config)
        quality = recovery(db, report, spectra, targets, k=min(args.tau, 10))
        rows.append(
            [
                algorithm,
                f"{report.virtual_time:.3f}",
                format_si(report.max_peak_memory),
                f"{report.candidates_evaluated}",
                f"{quality.recall_at_1:.2f}",
            ]
        )
    from repro.utils.format import render_table

    print(
        render_table(
            ["algorithm", "sim time (s)", "peak rank mem", "candidates", "recall@1"],
            rows,
            title=f"{args.database_size}-sequence DB, {args.queries} queries, p={args.ranks}",
        )
    )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Render a per-rank gantt of one simulated run."""
    from repro.analysis.timeline import ascii_gantt, utilization_table
    from repro.simmpi.scheduler import ClusterConfig

    db = generate_database(args.database_size, seed=args.seed)
    queries = generate_queries(args.queries, seed=args.query_seed)
    config = _make_config(args, ExecutionMode.MODELED)
    report = run_search(
        db, queries, args.algorithm, args.ranks, config,
        cluster_config=ClusterConfig(num_ranks=args.ranks, record_events=True),
    )
    assert report.trace is not None
    print(utilization_table(report.trace))
    print()
    print(ascii_gantt(report.trace, width=args.width))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Export one run's timeline for chrome://tracing / Perfetto.

    Simulated engines replay in MODELED execution with per-rank event
    recording on (one lane per rank, virtual time); the multiproc engine
    runs for real with the metrics registry enabled (one lane per worker
    process, wall time).
    """
    from repro.obs.chrome_trace import (
        events_from_metrics,
        events_from_summary,
        write_chrome_trace,
    )

    db = generate_database(args.database_size, seed=args.seed)
    queries = generate_queries(args.queries, seed=args.query_seed)
    if args.algorithm == "multiproc":
        if args.format == "ascii":
            print(
                "error: --format ascii needs a simulated engine "
                "(per-rank virtual timelines); multiproc exports chrome only",
                file=sys.stderr,
            )
            return 2
        from repro.engines.multiproc import run_multiprocess_search
        from repro.obs.metrics import enable_metrics

        registry = enable_metrics()
        registry.reset()
        try:
            report = run_multiprocess_search(
                db, queries, num_workers=args.ranks, config=_make_config(args)
            )
        finally:
            enable_metrics(False)
        events = events_from_metrics(registry.snapshot())
        metadata = {
            "algorithm": report.algorithm,
            "engine": "multiproc",
            "ranks": report.num_ranks,
            "wall_time": report.virtual_time,
        }
    else:
        from repro.simmpi.scheduler import ClusterConfig

        config = _make_config(args, ExecutionMode.MODELED)
        report = run_search(
            db, queries, args.algorithm, args.ranks, config,
            cluster_config=ClusterConfig(num_ranks=args.ranks, record_events=True),
        )
        if report.trace is None:
            print(
                f"error: {args.algorithm} produced no per-rank trace",
                file=sys.stderr,
            )
            return 2
        if args.format == "ascii":
            from repro.analysis.timeline import ascii_gantt

            print(ascii_gantt(report.trace, width=args.width))
            return 0
        events = events_from_summary(report.trace)
        metadata = {
            "algorithm": report.algorithm,
            "engine": "simmpi",
            "ranks": report.num_ranks,
            "virtual_time": report.virtual_time,
        }
    write_chrome_trace(args.out, events, metadata)
    print(
        f"wrote {len(events)} trace events to {args.out} "
        f"(open in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    """Recommend an engine for a workload (paper Section III.A guidance)."""
    from repro.core.advisor import advise

    advice = advise(
        num_sequences=args.sequences,
        total_residues=args.residues if args.residues > 0 else int(args.sequences * 314.44),
        num_ranks=args.ranks,
        ram_per_rank=args.ram,
    )
    print(f"recommended engine: {advice.summary}")
    for reason in advice.reasons:
        print(f"  - {reason}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Assemble benchmarks/output/*.txt into one reproduction report."""
    from pathlib import Path

    out_dir = Path(args.output_dir)
    if not out_dir.is_dir():
        print(
            f"{out_dir} not found - run `pytest benchmarks/ --benchmark-only` first"
        )
        return 1
    order = [
        "table1", "table2", "fig4", "table3", "table4", "fig1a", "fig1b",
        "masking", "memory", "validation", "xbang", "models", "extensions",
        "sensitivity",
    ]
    def section(name: str, path) -> str:
        body = path.read_text().rstrip()
        return f"## {name}\n\n```\n{body}\n```\n"

    sections = []
    for name in order:
        path = out_dir / f"{name}.txt"
        if path.exists():
            sections.append(section(name, path))
    for path in sorted(out_dir.glob("*.txt")):
        if path.stem not in order:
            sections.append(section(path.stem, path))
    report = (
        "# Reproduction report\n\n"
        "Regenerated tables/figures for Kulkarni et al., ICPP Workshops 2009.\n"
        "See EXPERIMENTS.md for the paper-vs-measured discussion.\n\n"
        + "\n".join(sections)
    )
    target = Path(args.output)
    if target.exists():
        # generated experiment-grid blocks survive a bench-report rebuild:
        # they are owned by `repro experiments report --update`, not by us
        report = _preserve_experiment_blocks(target.read_text(), report)
    target.write_text(report)
    print(f"wrote {target} ({len(sections)} sections)")
    return 0


def _preserve_experiment_blocks(old: str, new: str) -> str:
    """Carry ``<!-- experiments:NAME begin/end -->`` blocks from old to new."""
    import re

    from repro.experiments import extract_markdown, splice_markdown

    for name in re.findall(r"<!-- experiments:([\w.+-]+) begin -->", old):
        content = extract_markdown(old, name)
        if content is not None:
            new = splice_markdown(new, name, content)
    return new


def _experiments_out_dir(args: argparse.Namespace, spec) -> str:
    return args.out or os.path.join("runs", spec.name)


def _experiments_finish(args: argparse.Namespace, spec, out_dir: str, aggregate) -> int:
    """Shared tail of run/resume/report: emit, splice, decide exit status."""
    from repro.experiments import format_ascii, format_markdown, splice_markdown

    fmt = getattr(args, "format", "ascii")
    if fmt == "json":
        print(json.dumps(aggregate, indent=2, sort_keys=True))
    elif fmt == "markdown":
        print(format_markdown(aggregate))
    else:
        print(format_ascii(aggregate))
    if getattr(args, "report_out", None):
        with open(args.report_out, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(aggregate, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.report_out}")
    for target in getattr(args, "update", None) or []:
        try:
            with open(target, "r", encoding="utf-8") as fh:
                document = fh.read()
        except FileNotFoundError:
            document = ""
        section = getattr(args, "section", None) or spec.name
        document = splice_markdown(document, section, format_markdown(aggregate))
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(document)
        print(f"updated {target} (section experiments:{section})")
    bad_checks = [c["name"] for c in aggregate["checks"] if not c["ok"]]
    if aggregate["failed"]:
        print(
            f"\n{len(aggregate['failed'])} cell(s) FAILED; "
            f"`repro experiments resume {args.scenario} --out {out_dir}` retries them",
            file=sys.stderr,
        )
        return 1
    if bad_checks:
        print(f"\nidentity check(s) FAILED: {', '.join(bad_checks)}", file=sys.stderr)
        return 1
    return 0


def cmd_experiments_run(args: argparse.Namespace) -> int:
    """Execute a scenario grid (fresh, or continuing with ``resume``)."""
    from repro.experiments import ExperimentSpec, run_experiment

    spec = ExperimentSpec.from_file(args.scenario)
    out_dir = _experiments_out_dir(args, spec)
    say = (lambda line: None) if args.quiet else print
    say(
        f"scenario {spec.name}: {len(spec.cells())} cells -> {out_dir} "
        f"(workers={args.workers})"
    )
    aggregate = run_experiment(
        spec,
        out_dir,
        workers=args.workers,
        resume=args.resume,
        progress=say,
    )
    say("")
    return _experiments_finish(args, spec, out_dir, aggregate)


def cmd_experiments_report(args: argparse.Namespace) -> int:
    """Rebuild and print the aggregate from an existing run directory."""
    from repro.experiments import ExperimentSpec, aggregate_run

    spec = ExperimentSpec.from_file(args.scenario)
    out_dir = _experiments_out_dir(args, spec)
    if not os.path.isdir(os.path.join(out_dir, "cells")):
        print(
            f"error: {out_dir} holds no cell reports; run "
            f"`repro experiments run {args.scenario}` first",
            file=sys.stderr,
        )
        return 2
    aggregate = aggregate_run(spec, out_dir)
    return _experiments_finish(args, spec, out_dir, aggregate)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident search service under a deterministic storm.

    The storm comes from ``--fault-plan``'s ``service.storm`` section
    when present, else from the ``--clients``/``--requests`` flags; the
    plan's other service faults (worker crashes, stragglers, store
    outages) are injected into the run.  Exit status is non-zero if any
    admitted request failed to reach a terminal response (the soak
    criterion); typed rejections under overload are expected and
    reported, not errors.
    """
    from repro.faults.plan import FaultPlan, RequestStorm
    from repro.service import SearchService, ServiceConfig, run_storm
    from repro.store import open_any_index
    from repro.store.partitioned import PartitionedIndex

    config = _make_config(args)
    plan = FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
    storm = None
    if plan is not None and plan.service is not None:
        storm = plan.service.storm
    if storm is None:
        storm = RequestStorm(
            clients=args.clients,
            requests_per_client=args.requests,
            queries_per_request=args.queries_per_request,
            interval=args.interval,
            seed=args.storm_seed,
        )
    service_config = ServiceConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        backpressure=args.policy,
        admission_timeout=args.admission_timeout,
        default_deadline=args.deadline,
        coalesce=args.coalesce,
        chunk_queries=args.chunk_queries,
        max_worker_restarts=args.max_worker_restarts,
    )
    db = None
    if args.index_path:
        store = open_any_index(args.index_path)
        shards = (
            store.num_partitions
            if isinstance(store, PartitionedIndex)
            else store.num_shards
        )
        service = SearchService(
            config,
            service_config,
            store=store,
            fault_plan=plan,
            memory_budget_mb=args.memory_budget_mb,
        )
    else:
        db = (
            read_fasta(args.database)
            if args.database
            else generate_database(args.database_size, seed=args.seed)
        )
        service = SearchService(config, service_config, database=db, fault_plan=plan)
        shards = 1
    pool = generate_queries(args.queries, seed=args.query_seed, source=db)
    registry = None
    if args.report_out:
        from repro.obs.metrics import enable_metrics

        registry = enable_metrics()
        registry.reset()
    import time as _time

    t0 = _time.perf_counter()
    with service:
        result = run_storm(service, storm, pool, deadline=args.deadline or None)
        health = service.health()
        stats = service.stats()
    final_state = service.health()["state"]
    wall = _time.perf_counter() - t0
    counts = result.counts
    print(
        f"service: {args.workers} worker(s) over {shards} shard(s), "
        f"policy={args.policy} queue_limit={args.queue_limit} "
        f"coalesce={service_config.coalesce}"
    )
    print(
        f"storm: {storm.clients} client(s) x {storm.requests_per_client} "
        f"request(s) x {storm.queries_per_request} queries -> "
        f"{len(result.outcomes)} submissions in {result.wall_s:.2f}s "
        f"({result.completed_queries} queries completed)"
    )
    for status in sorted(counts):
        print(f"  {status}: {counts[status]}")
    print(
        f"supervision: {int(stats['batches'])} batches, "
        f"{int(stats['batch_retries'])} retries, "
        f"{int(stats['batches_failed'])} quarantined, "
        f"{int(stats['worker_restarts'])} worker restart(s), "
        f"max queue depth {int(stats['max_queue_depth'])}"
    )
    print(
        f"drained: state={final_state} degraded={health['degraded']} "
        f"({wall:.2f}s wall total)"
    )
    if registry is not None:
        from repro.core.results import SearchReport
        from repro.obs.metrics import enable_metrics
        from repro.obs.report import RunReport

        enable_metrics(False)
        snapshot = registry.snapshot()
        merged_hits = {}
        for o in result.admitted:
            if o.response is not None:
                merged_hits.update(o.response.hits)
        report = SearchReport(
            algorithm="service",
            num_ranks=args.workers,
            hits=merged_hits,
            candidates_evaluated=int(snapshot["counters"].get("search.candidates", 0)),
            virtual_time=wall,
            extras={"storm_counts": counts, "storm_wall": result.wall_s},
        )
        RunReport.from_search_report(
            report, metrics=snapshot, service={"health": health, "counters": stats,
                                               "config": service.service_report()["config"]}
        ).write(args.report_out)
        print(f"wrote run report to {args.report_out}")
    unanswered = [o for o in result.admitted if o.response is None]
    return 1 if unanswered else 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Calibrate, search the configuration grid, run the pick, verify.

    Prints the calibrated terms that moved furthest off their defaults,
    the predicted-makespan ranking, the chosen run's predicted-vs-
    measured phase table, and the overlap lower bounds at simulated
    rank counts.  ``--report-out`` writes the full RunReport with the
    ``tuning`` section attached.
    """
    from repro.tune import autotune
    from repro.tune.calibrate import CalibrationSpec

    db = (
        read_fasta(args.database)
        if args.database
        else generate_database(args.database_size, seed=args.seed)
    )
    queries = generate_queries(args.queries, seed=args.query_seed)
    config = _make_config(args)
    store = None
    if args.index_path:
        from repro.errors import IndexCompatError
        from repro.store import open_any_index
        from repro.store.partitioned import PartitionedIndex

        store = open_any_index(args.index_path)
        if not isinstance(store, PartitionedIndex):
            raise IndexCompatError(
                f"repro tune streams only from partitioned stores "
                f"(`repro index build --partition-mb ...`); "
                f"{args.index_path} holds a resident-format store"
            )
    spec = (
        CalibrationSpec(
            db_size=120, num_queries=80, store_db_size=60,
            repeats=1, include_spawn=False,
        )
        if args.quick
        else CalibrationSpec()
    )
    result = autotune(
        db,
        queries,
        config,
        cache_path=args.tune_cache,
        force_calibrate=args.force_calibrate,
        spec=spec,
        store=store,
        store_path=args.index_path,
        memory_budget_mb=args.memory_budget_mb,
        run=not args.plan_only,
        anchor_ranks=args.anchor_ranks if args.anchor_ranks > 0 else None,
    )

    cal = result.calibration
    print(f"calibration: {cal.source}" + (f" ({cal.cache_path})" if cal.cache_path else ""))
    vs = cal.details.get("vs_defaults") or {}
    moved = sorted(
        (k for k in vs if vs[k].get("ratio") is not None),
        key=lambda k: abs(math.log10(max(vs[k]["ratio"], 1e-12))),
        reverse=True,
    )
    for key in moved[: args.show_terms]:
        entry = vs[key]
        print(
            f"  {key:<26} {entry['calibrated']:.3e}  "
            f"(default {entry['default']:.3e}, x{entry['ratio']:.2f})"
        )
    print(
        f"grid: {len(result.ranking)} feasible, {len(result.pruned)} pruned; "
        f"chose {result.chosen.label} (predicted {result.prediction.total:.3f}s)"
    )
    for plan, pred in result.ranking[: args.show_plans]:
        marker = "->" if plan == result.chosen else "  "
        print(f"  {marker} {pred.total:9.3f}s  {plan.label}")
    if result.verification is not None:
        ver = result.verification
        err = ver["makespan_rel_error"]
        print(
            f"verification: measured {ver['measured_makespan_s']:.3f}s vs "
            f"predicted {ver['predicted_makespan_s']:.3f}s"
            + (f" ({err:+.0%})" if err is not None else "")
        )
        for name, phase in ver["phases"].items():
            measured = (
                f"{phase['measured_s']:.4f}s" if phase["measured_s"] is not None else "n/a"
            )
            rel = f" ({phase['rel_error']:+.0%})" if phase["rel_error"] is not None else ""
            print(f"  {name:<28} predicted {phase['predicted_s']:.4f}s measured {measured}{rel}")
        for name, term in ver["terms"].items():
            rel = f" ({term['rel_error']:+.0%})" if term["rel_error"] is not None else ""
            predicted = (
                f"{term['predicted']:.3e}" if term["predicted"] is not None else "n/a"
            )
            print(f"  {name:<34} predicted {predicted} measured {term['measured']:.3e}{rel}")
    if result.lower_bounds is not None:
        print(f"lower bounds: {result.lower_bounds['model']}")
        for p, point in result.lower_bounds["points"].items():
            print(
                f"  p={p:>5}: residual/compute {point['residual_to_compute']:.3f}, "
                f"overlap efficiency {point['overlap_efficiency']:.3f}, "
                f"floor {point['floor_makespan_s']:.3f}s "
                f"({'comm' if point['comm_floor_s'] >= point['compute_floor_s'] else 'compute'}-bound)"
            )
        anchor = result.lower_bounds.get("simulated_anchor")
        if anchor:
            print(
                f"  anchor (event simulator, p={anchor['ranks']}): makespan "
                f"{anchor['makespan_s']:.3f}s, residual/compute "
                f"{anchor['residual_to_compute']:.3f}"
            )
    if args.report_out:
        from repro.obs.report import RunReport

        if result.report is None:
            print(
                "error: --report-out needs the verification run; "
                "drop --plan-only",
                file=sys.stderr,
            )
            return 2
        RunReport.from_search_report(result.report, tuning=result.tuning).write(
            args.report_out
        )
        print(f"wrote run report to {args.report_out}")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    result = calibrate_rho()
    print(
        f"measured rho = {result.rho_measured * 1e6:.1f} us/candidate over "
        f"{result.candidates_timed} candidates ({result.wall_time:.2f}s wall)"
    )
    print(f"fitted CostModel.rho_base = {result.model.rho_base * 1e6:.2f} us")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable parallel peptide identification (ICPP 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write a synthetic protein database as FASTA")
    p_gen.add_argument("output", help="output FASTA path")
    p_gen.add_argument("--database-size", "-n", type=_positive_int, default=2000)
    p_gen.add_argument("--seed", type=int, default=202)
    p_gen.add_argument("--dataset", choices=["human", "microbial"], default=None)
    p_gen.set_defaults(func=cmd_generate)

    p_search = sub.add_parser("search", help="run one search and print top hits")
    _add_search_args(p_search)
    p_search.add_argument(
        "--algorithm", "-a", choices=sorted(ALGORITHMS) + ["multiproc"], default="algorithm_a"
    )
    p_search.add_argument("--ranks", "-p", type=_positive_int, default=4)
    p_search.add_argument("--show", type=int, default=5, help="queries to print")
    p_search.add_argument("--output", "-o", default=None, help="write hits as TSV")
    p_search.add_argument(
        "--database", type=_existing_file, default=None,
        help="search a FASTA file instead of a synthetic database",
    )
    p_search.add_argument(
        "--fault-plan", type=_existing_file, default=None,
        help="JSON fault plan injected into the run (see docs/fault_tolerance.md)",
    )
    p_search.add_argument(
        "--checkpoint", default=None,
        help="multiproc: persist completed-task state to this path",
    )
    p_search.add_argument(
        "--resume", action="store_true",
        help="multiproc: resume from --checkpoint, skipping completed tasks",
    )
    p_search.add_argument(
        "--max-retries", type=int, default=2,
        help="multiproc: retries per failing task before quarantine",
    )
    p_search.add_argument(
        "--task-timeout", type=_positive_float, default=None,
        help="multiproc: seconds before a hung task is resubmitted",
    )
    p_search.add_argument(
        "--index-path", default=None,
        help="serve the search from a persisted index directory built with "
        "`repro index build` (real engines only; fingerprint-validated "
        "against the database); a partitioned store streams out-of-core",
    )
    p_search.add_argument(
        "--stream", action="store_true",
        help="stream the search out-of-core from a partitioned store: with "
        "--index-path the store must be partitioned (built with "
        "--partition-mb); without it a temporary partitioned store is "
        "built first and discarded after the run",
    )
    p_search.add_argument(
        "--partition-mb", type=_positive_float, default=32.0,
        help="decoded partition size (MiB) for the temporary store that "
        "--stream builds when no --index-path is given",
    )
    p_search.add_argument(
        "--memory-budget-mb", type=_positive_float, default=None,
        help="bound each streaming reader's resident partition bytes "
        "(compressed + decoded); the prefetch thread blocks rather than "
        "exceed it",
    )
    p_search.add_argument(
        "--report-out", default=None,
        help="write a schema-versioned RunReport (JSON) with trace, fault "
        "stats and a metrics snapshot (see docs/observability.md)",
    )
    p_search.add_argument(
        "--query-blocks", type=_positive_int, default=1,
        help="multiproc: split each shard task into this many query "
        "sub-blocks (finer tasks, better balance)",
    )
    p_search.add_argument(
        "--start-method", choices=["fork", "spawn", "forkserver"], default=None,
        help="multiproc: worker start method (default: platform choice)",
    )
    p_search.add_argument(
        "--autotune", action="store_true",
        help="pick engine/knobs with the cost-model autotuner "
        "(docs/autotuning.md); flags you type explicitly always win",
    )
    p_search.add_argument(
        "--tune-cache", default=None,
        help="autotune calibration cache path (default: "
        "~/.cache/repro/calibration.json)",
    )
    p_search.set_defaults(func=cmd_search)

    p_index = sub.add_parser(
        "index", help="build or inspect a persistent fragment-index store"
    )
    index_sub = p_index.add_subparsers(dest="index_command", required=True)
    p_ib = index_sub.add_parser(
        "build", help="build an index store directory (build once, load many)"
    )
    p_ib.add_argument("output", help="index store directory to create")
    p_ib.add_argument(
        "--database", type=_existing_file, default=None,
        help="index a FASTA file instead of a synthetic database",
    )
    p_ib.add_argument("--database-size", "-n", type=_positive_int, default=2000)
    p_ib.add_argument("--seed", type=int, default=202)
    p_ib.add_argument(
        "--shards", type=_positive_int, default=1,
        help="shard count (1 for the serial engine; any count for multiproc)",
    )
    p_ib.add_argument(
        "--fragment-tolerance", type=_positive_float, default=0.5,
        help="fragment m/z tolerance the index bins are sized for (Da)",
    )
    p_ib.add_argument(
        "--index-max-length", type=_positive_int, default=48,
        help="longest candidate span the index covers",
    )
    p_ib.add_argument(
        "--partition-mb", type=_positive_float, default=None,
        help="build the *partitioned* out-of-core format instead: "
        "mass-contiguous compressed partitions of ~this decoded size "
        "(MiB), streamed with prefetch at search time",
    )
    p_ib.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing store at the output path",
    )
    p_ib.set_defaults(func=cmd_index_build)
    p_ii = index_sub.add_parser(
        "inspect", help="print a persisted index's header and manifests"
    )
    p_ii.add_argument("path", help="index store directory")
    p_ii.set_defaults(func=cmd_index_inspect)

    p_scaling = sub.add_parser("scaling", help="regenerate a run-time/speedup grid")
    _add_search_args(p_scaling)
    p_scaling.add_argument("--algorithm", "-a", choices=sorted(ALGORITHMS), default="algorithm_a")
    p_scaling.add_argument("--sizes", default="1000,2000,4000", help="comma-separated DB sizes")
    p_scaling.add_argument("--ranks-list", default="1,2,4,8,16", help="comma-separated rank counts")
    p_scaling.set_defaults(func=cmd_scaling)

    p_val = sub.add_parser("validate", help="check parallel output equals serial output")
    _add_search_args(p_val)
    p_val.add_argument("--ranks", "-p", type=_positive_int, default=4)
    p_val.set_defaults(func=cmd_validate)

    p_cal = sub.add_parser("calibrate", help="measure this host's scoring cost")
    p_cal.set_defaults(func=cmd_calibrate)

    p_tune = sub.add_parser(
        "tune",
        help="calibrate the cost model, pick the best configuration, verify it",
    )
    _add_search_args(p_tune)
    p_tune.add_argument(
        "--database", type=_existing_file, default=None,
        help="tune against a FASTA file instead of a synthetic database",
    )
    p_tune.add_argument(
        "--index-path", default=None,
        help="partitioned store to consider streamed plans against "
        "(resident-format stores are rejected)",
    )
    p_tune.add_argument(
        "--memory-budget-mb", type=_positive_float, default=None,
        help="prune configurations whose resident footprint exceeds this",
    )
    p_tune.add_argument(
        "--tune-cache", default=None,
        help="calibration cache path (default: ~/.cache/repro/calibration.json)",
    )
    p_tune.add_argument(
        "--force-calibrate", action="store_true",
        help="re-measure even when a valid cache exists",
    )
    p_tune.add_argument(
        "--quick", action="store_true",
        help="smaller calibration battery (seconds, less precise)",
    )
    p_tune.add_argument(
        "--plan-only", action="store_true",
        help="stop after planning; skip the verification run",
    )
    p_tune.add_argument(
        "--anchor-ranks", type=int, default=0,
        help="also run the event simulator once at this rank count as a "
        "lower-bound validation anchor (0 = off; 128 costs ~2s)",
    )
    p_tune.add_argument(
        "--show-terms", type=_positive_int, default=8,
        help="calibrated terms to print (furthest from defaults first)",
    )
    p_tune.add_argument(
        "--show-plans", type=_positive_int, default=5,
        help="ranked configurations to print",
    )
    p_tune.add_argument(
        "--report-out", default=None,
        help="write the verification run's RunReport with the tuning section",
    )
    p_tune.set_defaults(func=cmd_tune)

    p_rep = sub.add_parser("report", help="assemble bench outputs into one report")
    p_rep.add_argument("--output-dir", default="benchmarks/output")
    p_rep.add_argument("--output", default="REPRODUCTION_REPORT.md")
    p_rep.set_defaults(func=cmd_report)

    p_exp = sub.add_parser(
        "experiments",
        help="run/resume/report a declarative scenario grid (docs/experiments.md)",
    )
    exp_sub = p_exp.add_subparsers(dest="experiments_command", required=True)

    def _exp_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("scenario", help="scenario file (YAML or JSON)")
        p.add_argument(
            "--out", default=None,
            help="run directory (default: runs/<scenario name>)",
        )
        p.add_argument(
            "--format", choices=["ascii", "markdown", "json"], default="ascii",
            help="aggregate rendering printed to stdout",
        )
        p.add_argument(
            "--report-out", default=None,
            help="also write the aggregate JSON to this path",
        )
        p.add_argument(
            "--update", action="append", default=None, metavar="FILE",
            help="splice the markdown rendering into FILE between "
            "'<!-- experiments:NAME begin/end -->' markers (repeatable)",
        )
        p.add_argument(
            "--section", default=None,
            help="marker name for --update (default: the scenario name)",
        )

    p_exp_run = exp_sub.add_parser(
        "run", help="execute every cell of a scenario and aggregate"
    )
    _exp_common(p_exp_run)
    p_exp_run.add_argument(
        "--workers", "-j", type=_positive_int, default=1,
        help="cells executed concurrently (separate OS processes)",
    )
    p_exp_run.add_argument("--quiet", action="store_true", help="no per-cell progress")
    p_exp_run.set_defaults(func=cmd_experiments_run, resume=False)

    p_exp_res = exp_sub.add_parser(
        "resume",
        help="continue a killed/partial run; completed cells are not rerun",
    )
    _exp_common(p_exp_res)
    p_exp_res.add_argument(
        "--workers", "-j", type=_positive_int, default=1,
        help="cells executed concurrently (separate OS processes)",
    )
    p_exp_res.add_argument("--quiet", action="store_true", help="no per-cell progress")
    p_exp_res.set_defaults(func=cmd_experiments_run, resume=True)

    p_exp_rep = exp_sub.add_parser(
        "report", help="rebuild the aggregate from an existing run directory"
    )
    _exp_common(p_exp_rep)
    p_exp_rep.set_defaults(func=cmd_experiments_report)

    p_adv = sub.add_parser("advise", help="recommend an engine for a workload")
    p_adv.add_argument("--sequences", type=int, required=True, help="database sequence count")
    p_adv.add_argument("--residues", type=int, default=-1, help="total residues (default: 314.44/seq)")
    p_adv.add_argument("--ranks", "-p", type=_positive_int, default=8)
    p_adv.add_argument("--ram", type=int, default=1 << 30, help="bytes of RAM per rank")
    p_adv.set_defaults(func=cmd_advise)

    p_cmp = sub.add_parser("compare", help="compare engines on time/memory/quality")
    _add_search_args(p_cmp)
    p_cmp.add_argument(
        "--algorithms",
        default="algorithm_a,algorithm_b,master_worker,xbang",
        help="comma-separated engine names",
    )
    p_cmp.add_argument("--ranks", "-p", type=_positive_int, default=4)
    p_cmp.set_defaults(func=cmd_compare)

    p_tl = sub.add_parser("timeline", help="render a per-rank gantt of one run")
    _add_search_args(p_tl)
    p_tl.add_argument("--algorithm", "-a", choices=sorted(ALGORITHMS), default="algorithm_a")
    p_tl.add_argument("--ranks", "-p", type=_positive_int, default=4)
    p_tl.add_argument("--width", type=int, default=80)
    p_tl.set_defaults(func=cmd_timeline)

    p_trace = sub.add_parser(
        "trace", help="export one run's timeline as Chrome trace-event JSON"
    )
    _add_search_args(p_trace)
    p_trace.add_argument(
        "--algorithm", "-a", choices=sorted(ALGORITHMS) + ["multiproc"],
        default="algorithm_a",
    )
    p_trace.add_argument("--ranks", "-p", type=_positive_int, default=4)
    p_trace.add_argument(
        "--format", choices=["chrome", "ascii"], default="chrome",
        help="chrome: trace-event JSON for chrome://tracing/Perfetto; "
        "ascii: per-rank gantt on stdout (simulated engines only)",
    )
    p_trace.add_argument("--out", default="trace.json", help="chrome output path")
    p_trace.add_argument("--width", type=int, default=80, help="ascii gantt width")
    p_trace.set_defaults(func=cmd_trace)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived search service under a request storm",
    )
    _add_search_args(p_serve)
    p_serve.set_defaults(use_sweep=True)  # cross-request coalescing wants the sweep
    p_serve.add_argument(
        "--database", type=_existing_file, default=None,
        help="serve a FASTA file instead of a synthetic database",
    )
    p_serve.add_argument(
        "--index-path", default=None,
        help="serve from a persisted index directory (each worker memory-maps "
        "it; a partitioned store is streamed out-of-core per worker)",
    )
    p_serve.add_argument(
        "--memory-budget-mb", type=_positive_float, default=None,
        help="partitioned stores: bound each worker's resident partition "
        "bytes (compressed + decoded)",
    )
    p_serve.add_argument("--workers", type=_positive_int, default=2, help="worker threads")
    p_serve.add_argument(
        "--queue-limit", type=_positive_int, default=64,
        help="bounded admission queue depth",
    )
    p_serve.add_argument(
        "--policy", choices=["block", "shed"], default="block",
        help="backpressure at the queue bound: block (bounded wait) or "
        "shed (typed immediate rejection)",
    )
    p_serve.add_argument(
        "--admission-timeout", type=_positive_float, default=5.0,
        help="block policy: seconds to wait for queue space before rejecting",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=0.0,
        help="per-request deadline in seconds (0 = none); completed queries "
        "keep their hits when it expires (partial results)",
    )
    p_serve.add_argument(
        "--no-coalesce", dest="coalesce", action="store_false", default=True,
        help="execute each request alone instead of coalescing across requests",
    )
    p_serve.add_argument(
        "--chunk-queries", type=_positive_int, default=32,
        help="queries per execution chunk (deadline check granularity)",
    )
    p_serve.add_argument(
        "--max-worker-restarts", type=int, default=2,
        help="worker resurrections before degrading to reduced concurrency",
    )
    p_serve.add_argument(
        "--clients", type=_positive_int, default=8, help="storm client threads"
    )
    p_serve.add_argument(
        "--requests", type=_positive_int, default=4, help="requests per client"
    )
    p_serve.add_argument(
        "--queries-per-request", type=_positive_int, default=4,
        help="spectra per request (drawn seeded from the query pool)",
    )
    p_serve.add_argument(
        "--interval", type=float, default=0.0, help="client pause between requests (s)"
    )
    p_serve.add_argument("--storm-seed", type=int, default=0, help="storm workload seed")
    p_serve.add_argument(
        "--fault-plan", type=_existing_file, default=None,
        help="JSON fault plan; its service section drives injection and "
        "(if present) the storm spec (see docs/service.md)",
    )
    p_serve.add_argument(
        "--report-out", default=None,
        help="write a RunReport with a service section (health, counters)",
    )
    p_serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(raw_argv)
    # raw argv lets --autotune tell typed flags from argparse defaults
    args._cli_argv = raw_argv
    try:
        return args.func(args)
    except ReproError as exc:
        # typed library failures (bad FASTA, bad fault plan, checkpoint
        # mismatch, ...) become a clean one-line message, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
