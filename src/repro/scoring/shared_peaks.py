"""Shared-peak-count scorer: the cheapest useful model.

Counts experimental peaks explained by the candidate's b/y fragment
ladder within a fragment tolerance.  This is the classic prefilter score
(X!Tandem's first pass, SEQUEST's preliminary Sp core) — fast, crude,
and the unit against which other scorers' ``relative_cost`` is defined.
"""

from __future__ import annotations

import numpy as np

from repro.candidates.batch import CandidateBatch
from repro.spectra.binning import count_matches, count_matches_rows
from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import by_ion_ladder, by_ion_ladder_rows, modified_by_ion_ladder


class SharedPeakScorer:
    """Number of observed peaks matching the singly-charged b/y ladder."""

    name = "shared_peaks"
    relative_cost = 1.0

    def __init__(self, fragment_tolerance: float = 0.5):
        if fragment_tolerance <= 0:
            raise ValueError(f"fragment_tolerance must be > 0, got {fragment_tolerance}")
        self.fragment_tolerance = fragment_tolerance

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        ladder = by_ion_ladder(candidate)
        return float(count_matches(spectrum.mz, ladder, self.fragment_tolerance))

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        ladder = modified_by_ion_ladder(candidate, site, delta_mass)
        return float(count_matches(spectrum.mz, ladder, self.fragment_tolerance))

    def score_batch(self, spectrum: Spectrum, batch: CandidateBatch) -> np.ndarray:
        """Vectorized scoring; bitwise identical to the scalar path."""
        out = np.zeros(batch.num_rows, dtype=np.float64)
        for group in batch.length_groups():
            if group.length < 2:
                continue  # empty ladder matches nothing, score stays 0.0
            ladders = by_ion_ladder_rows(group.mass_rows())
            out[group.rows] = count_matches_rows(
                spectrum.mz, ladders, self.fragment_tolerance
            )
        return batch.reduce_rows(out)

    def score_index(self, spectrum: Spectrum, index, rows: np.ndarray) -> np.ndarray:
        """Index-served scoring; bitwise identical to :meth:`score_batch`.

        ``rows`` are :class:`~repro.index.FragmentIndex` rows of the
        candidates to score; the shared-peak count comes straight off the
        ladder posting list (same union-of-matches semantics as
        ``count_matches_rows``).
        """
        return index.shared_peak_counts(
            spectrum.mz, self.fragment_tolerance, rows
        ).astype(np.float64)

    def score_block(self, spectra, batch: CandidateBatch, selections):
        """Cohort scoring: ladders built once, queries share the matrices."""
        from repro.scoring.base import score_block_groups

        def prepare(group):
            if group.length < 2:
                return None  # empty ladder matches nothing, score stays 0.0
            return by_ion_ladder_rows(group.mass_rows())

        def kernel(spectrum, ladders, local):
            return count_matches_rows(spectrum.mz, ladders[local], self.fragment_tolerance)

        return score_block_groups(self, spectra, batch, selections, 0.0, prepare, kernel)

    def score_index_block(self, spectra, index, row_sets):
        """Index-served cohort scoring: one flat probe for all queries."""
        return [
            counts.astype(np.float64)
            for counts in index.shared_peak_counts_block(
                spectra, self.fragment_tolerance, row_sets
            )
        ]
