"""Likelihood-ratio scorer — the "slow, accurate" MSPolygraph-style model.

MSPolygraph scores a candidate by "generating two different spectra ...
one a model spectrum for the candidate and the other being a spectrum
generated for a random peptide — and then comparing both against the
experimental spectrum.  The result is a likelihood ratio score" (paper
Section II.A, after Cannon et al. 2005).

Our implementation follows that structure exactly:

* **Candidate hypothesis H1** — the candidate generated the spectrum.
  Each fragment position of the model spectrum is observed with
  probability ``p_detect`` (weighted by the model intensity, so strong
  y ions are more often expected than weak ones).
* **Null hypothesis H0 (random peptide)** — observed peaks land near a
  given fragment position only by chance.  The chance-match probability
  is estimated from the query's own peak density: a tolerance window of
  width ``2 * tol`` in an m/z range populated by ``P`` peaks is hit with
  probability ``min(1, 2 * tol * P / range)``.

The returned score is the log-likelihood ratio ``log P(obs | H1) -
log P(obs | H0)`` accumulated over fragment positions, so it is additive,
well-calibrated for ranking, and positive only when the candidate
explains the spectrum better than chance.

Cost: it touches every fragment of the model spectrum, computes the
library lookup / theoretical model, and does intensity-weighted work —
the library's calibrated ``relative_cost`` makes it roughly an order of
magnitude costlier than the shared-peak count, which is how the paper's
X!!Tandem-vs-MSPolygraph speed/quality trade-off shows up here.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.candidates.batch import CandidateBatch
from repro.scoring.base import score_batch_fallback
from repro.spectra.binning import match_peaks, match_peaks_many
from repro.spectra.library import SpectralLibrary
from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import (
    IonSeries,
    combine_fragment_rows,
    series_weight,
    theoretical_spectrum,
    theoretical_spectrum_rows,
)


class LikelihoodRatioScorer:
    """Poisson/Bernoulli log-likelihood ratio of candidate vs. random model."""

    name = "likelihood"
    relative_cost = 8.0

    def __init__(
        self,
        fragment_tolerance: float = 0.5,
        p_detect: float = 0.7,
        library: Optional[SpectralLibrary] = None,
    ):
        if fragment_tolerance <= 0:
            raise ValueError(f"fragment_tolerance must be > 0, got {fragment_tolerance}")
        if not 0.0 < p_detect < 1.0:
            raise ValueError(f"p_detect must be in (0, 1), got {p_detect}")
        self.fragment_tolerance = fragment_tolerance
        self.p_detect = p_detect
        self.library = library

    def _chance_match_probability(self, spectrum: Spectrum) -> float:
        """Probability a random tolerance window contains >= 1 observed peak."""
        if spectrum.num_peaks == 0:
            return 1e-9
        span = float(spectrum.mz[-1] - spectrum.mz[0])
        if span <= 0:
            return 1e-9
        density = spectrum.num_peaks / span
        p0 = 2.0 * self.fragment_tolerance * density
        return float(min(max(p0, 1e-9), 0.999))

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        if self.library is not None:
            model_mz, model_int = self.library.model_spectrum(candidate)
        else:
            model_mz, model_int = theoretical_spectrum(candidate)
        return self._score_model(spectrum, model_mz, model_int)

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        # spectral libraries hold unmodified references; modified
        # candidates always use the shifted on-the-fly model
        model_mz, model_int = theoretical_spectrum(
            candidate, mod_site=site, mod_delta=delta_mass
        )
        return self._score_model(spectrum, model_mz, model_int)

    def _score_model(
        self, spectrum: Spectrum, model_mz, model_int
    ) -> float:
        if len(model_mz) == 0 or spectrum.num_peaks == 0:
            return -math.inf

        p0 = self._chance_match_probability(spectrum)
        # Per-fragment detection probability under H1, scaled by model
        # intensity (max-normalised): dominant ions are expected, weak
        # ions are optional.
        rel = model_int / model_int.max()
        p1 = np.clip(self.p_detect * rel, 1e-6, 0.999)

        # Which model fragments are matched by an observed peak?
        matched = match_peaks(model_mz, np.ascontiguousarray(spectrum.mz), self.fragment_tolerance)

        # Bernoulli log-likelihood ratio per fragment position.
        llr_matched = np.log(p1 / p0)
        llr_unmatched = np.log((1.0 - p1) / (1.0 - p0))
        return float(np.where(matched, llr_matched, llr_unmatched).sum())

    @property
    def indexable(self) -> bool:
        """Library-backed models need per-candidate lookups; no index then."""
        return self.library is None

    def _model_rows_scores(
        self,
        observed: np.ndarray,
        p0: float,
        model_mz: np.ndarray,
        model_int: np.ndarray,
    ) -> np.ndarray:
        """Per-row log-likelihood ratios for dense model-spectrum rows.

        Shared by the direct batch path and the index-served path, which
        feed it identical model rows (regenerated vs. assembled from
        cached fragment matrices), keeping both bitwise identical.
        """
        rel = model_int / model_int.max(axis=1, keepdims=True)
        p1 = np.clip(self.p_detect * rel, 1e-6, 0.999)
        matched = match_peaks_many(model_mz, observed, self.fragment_tolerance)
        llr_matched = np.log(p1 / p0)
        llr_unmatched = np.log((1.0 - p1) / (1.0 - p0))
        return np.where(matched, llr_matched, llr_unmatched).sum(axis=1)

    def score_batch(self, spectrum: Spectrum, batch: CandidateBatch) -> np.ndarray:
        """Vectorized scoring; bitwise identical to the scalar path.

        With a spectral library configured, unmodified candidates need a
        per-candidate library lookup, so the batch falls back to the
        scalar oracle; the on-the-fly theoretical model (the common case,
        and the only model PTM rows ever use) is fully vectorized.
        """
        if self.library is not None:
            return score_batch_fallback(self, spectrum, batch)
        out = np.full(batch.num_rows, -math.inf)
        if spectrum.num_peaks > 0:
            p0 = self._chance_match_probability(spectrum)
            observed = np.ascontiguousarray(spectrum.mz)
            for group in batch.length_groups():
                if group.length < 2:
                    continue  # empty model spectrum, score stays -inf
                model_mz, model_int = theoretical_spectrum_rows(group.mass_rows())
                out[group.rows] = self._model_rows_scores(
                    observed, p0, model_mz, model_int
                )
        return batch.reduce_rows(out)

    def score_block(self, spectra, batch: CandidateBatch, selections):
        """Cohort scoring: model spectra generated once per length group.

        Library-backed scoring needs per-candidate lookups, so it routes
        through the per-query block fallback (itself the scalar oracle).
        """
        from repro.scoring.base import score_block_fallback, score_block_groups

        if self.library is not None:
            return score_block_fallback(self, spectra, batch, selections)

        def prepare(group):
            if group.length < 2:
                return None  # empty model spectrum, score stays -inf
            return theoretical_spectrum_rows(group.mass_rows())

        def kernel(spectrum, prep, local):
            if spectrum.num_peaks == 0:
                return np.full(len(local), -math.inf)
            model_mz, model_int = prep
            p0 = self._chance_match_probability(spectrum)
            observed = np.ascontiguousarray(spectrum.mz)
            return self._model_rows_scores(
                observed, p0, model_mz[local], model_int[local]
            )

        return score_block_groups(self, spectra, batch, selections, -math.inf, prepare, kernel)

    def score_index(self, spectrum: Spectrum, index, rows: np.ndarray) -> np.ndarray:
        """Index-served scoring; bitwise identical to :meth:`score_batch`.

        Model-spectrum rows are assembled from the cached b/y fragment
        matrices with :func:`combine_fragment_rows` — the same merge the
        batched kernel runs on freshly generated fragments.
        """
        out = np.full(len(rows), -math.inf)
        if spectrum.num_peaks == 0 or len(rows) == 0:
            return out
        p0 = self._chance_match_probability(spectrum)
        observed = np.ascontiguousarray(spectrum.mz)
        for positions, group, local in index.iter_row_groups(rows):
            model_mz, model_int = combine_fragment_rows(
                [
                    (group.b[local], series_weight(IonSeries.B)),
                    (group.y[local], series_weight(IonSeries.Y)),
                ],
                len(positions),
            )
            out[positions] = self._model_rows_scores(observed, p0, model_mz, model_int)
        return out
