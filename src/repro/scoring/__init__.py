"""Statistical scoring models and hit bookkeeping."""

from repro.scoring.base import Scorer, batch_scores, score_batch_fallback
from repro.scoring.hits import Hit, TopHitList, merge_hit_lists
from repro.scoring.shared_peaks import SharedPeakScorer
from repro.scoring.likelihood import LikelihoodRatioScorer
from repro.scoring.hypergeometric import HypergeometricScorer
from repro.scoring.hyperscore import HyperScorer
from repro.scoring.xcorr import XCorrScorer
from repro.scoring.registry import make_scorer, SCORER_NAMES
from repro.scoring.evalue import SurvivalFit, expect_value, fit_survival
from repro.scoring.statistics import (
    ScoredIdentification,
    accepted_at_fdr,
    fdr_curve,
    score_threshold_at_fdr,
    top_hits_with_labels,
)

__all__ = [
    "Scorer",
    "batch_scores",
    "score_batch_fallback",
    "Hit",
    "TopHitList",
    "merge_hit_lists",
    "SharedPeakScorer",
    "LikelihoodRatioScorer",
    "HyperScorer",
    "HypergeometricScorer",
    "XCorrScorer",
    "make_scorer",
    "SCORER_NAMES",
    "ScoredIdentification",
    "accepted_at_fdr",
    "fdr_curve",
    "score_threshold_at_fdr",
    "top_hits_with_labels",
    "SurvivalFit",
    "expect_value",
    "fit_survival",
]
