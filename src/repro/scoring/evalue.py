"""Expectation values from a query's own score distribution.

Complementary to target-decoy FDR (:mod:`repro.scoring.statistics`),
the X!Tandem-family *expect value* needs no decoy database: for one
query, the scores of its (overwhelmingly incorrect) candidates form an
empirical null; the high-score tail is fit by a survival function
``log10 S(x) ~ a - b*x`` (hyperscore tails are near-exponential), and a
top hit's e-value is the expected number of candidates at or above its
score::

    E(x) = n_candidates * S(x)

An identification with ``E << 1`` is unlikely to be a chance match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SurvivalFit:
    """Linear fit of the log10 survival function of candidate scores."""

    slope: float  #: b (per score unit); > 0 for a decaying tail
    intercept: float  #: a
    n_candidates: int
    fit_points: int

    def log10_survival(self, score: float) -> float:
        return self.intercept - self.slope * score

    def expect(self, score: float) -> float:
        """E-value for a hit scoring ``score``."""
        return float(self.n_candidates * 10.0 ** self.log10_survival(score))


def fit_survival(
    scores: Sequence[float],
    tail_fraction: float = 0.5,
    min_points: int = 8,
) -> SurvivalFit:
    """Fit the high-score tail of a query's candidate score distribution.

    Args:
        scores: all candidate scores for one query (finite values only
            are used; -inf "no match" scores are common and dropped).
        tail_fraction: fraction of the (finite) distribution, from the
            top, used for the linear fit.
        min_points: minimum distinct points required; below this the
            distribution is too thin to extrapolate and ValueError is
            raised (callers fall back to reporting no e-value).
    """
    finite = np.asarray([s for s in scores if np.isfinite(s)], dtype=np.float64)
    if not 0 < tail_fraction <= 1:
        raise ValueError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
    if len(finite) < min_points:
        raise ValueError(
            f"need >= {min_points} finite scores to fit a survival tail, got {len(finite)}"
        )
    order = np.sort(finite)
    n = len(order)
    # survival: S(order[i]) = (n - i) / n ; use the top tail_fraction
    start = int(np.floor(n * (1.0 - tail_fraction)))
    start = min(start, n - min_points)
    xs = order[start:]
    survival = (n - np.arange(start, n)) / n
    ys = np.log10(survival)
    # collapse duplicate scores (equal x values break nothing but add weight)
    slope, intercept = np.polyfit(xs, ys, 1)
    if slope >= 0:
        # a non-decaying tail means the null model is useless; report a
        # flat (uninformative) fit rather than negative e-values
        slope, intercept = 0.0, 0.0
    return SurvivalFit(
        slope=float(-slope), intercept=float(intercept), n_candidates=n, fit_points=n - start
    )


def expect_value(top_score: float, candidate_scores: Sequence[float]) -> float:
    """Convenience: fit the tail and return the top hit's e-value."""
    fit = fit_survival(candidate_scores)
    return fit.expect(top_score)
