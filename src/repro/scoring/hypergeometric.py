"""Hypergeometric probability scorer.

The study behind MSPolygraph (Cannon et al. 2005, the paper's reference
[5]) compared *probability* models against *likelihood* models for
peptide identification.  This is the classic probability model: treat
the spectrum's m/z axis as ``B`` tolerance-sized bins of which ``b`` are
occupied by observed peaks; a candidate with ``F`` fragments matching
``k`` of them scores the hypergeometric tail probability

    P(X >= k),  X ~ Hypergeometric(B, b, F)

— the chance a random candidate would match at least as well.  Reported
as ``-log10 P`` so larger is better, like every other scorer here.

Including it lets the library reproduce the *model comparison* that
justified MSPolygraph's likelihood approach (see
``benchmarks/bench_models.py``).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.candidates.batch import CandidateBatch
from repro.spectra.binning import count_matches, match_peaks_many
from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import by_ion_ladder, by_ion_ladder_rows, modified_by_ion_ladder


class HypergeometricScorer:
    """-log10 hypergeometric tail probability of the shared peak count."""

    name = "hypergeometric"
    relative_cost = 4.0

    def __init__(self, fragment_tolerance: float = 0.5, mz_range: float = 2000.0):
        if fragment_tolerance <= 0:
            raise ValueError(f"fragment_tolerance must be > 0, got {fragment_tolerance}")
        if mz_range <= 0:
            raise ValueError(f"mz_range must be > 0, got {mz_range}")
        self.fragment_tolerance = fragment_tolerance
        self.mz_range = mz_range

    def _score_ladder(self, spectrum: Spectrum, ladder: np.ndarray) -> float:
        if spectrum.num_peaks == 0 or len(ladder) == 0:
            return -math.inf
        # bins on the observed m/z axis
        span = max(float(spectrum.mz[-1] - spectrum.mz[0]), self.mz_range)
        total_bins = max(int(span / (2.0 * self.fragment_tolerance)), 1)
        occupied = min(spectrum.num_peaks, total_bins)
        draws = min(len(ladder), total_bins)
        matched = count_matches(ladder, np.ascontiguousarray(spectrum.mz), self.fragment_tolerance)
        matched = min(matched, draws, occupied)
        # P(X >= matched) with X ~ Hypergeom(M=total_bins, n=occupied, N=draws)
        tail = stats.hypergeom.sf(matched - 1, total_bins, occupied, draws)
        tail = max(float(tail), 1e-300)
        return -math.log10(tail)

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        return self._score_ladder(spectrum, by_ion_ladder(candidate))

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        return self._score_ladder(
            spectrum, modified_by_ion_ladder(candidate, site, delta_mass)
        )

    def score_batch(self, spectrum: Spectrum, batch: CandidateBatch) -> np.ndarray:
        """Vectorized scoring; bitwise identical to the scalar path.

        Matched-fragment counts are computed for the whole batch at once;
        the scipy tail probability is then evaluated once per *distinct*
        (matched, draws) pair — within a length group every candidate
        shares the same ``draws``, and matched counts repeat heavily, so
        the expensive ``hypergeom.sf`` call count collapses from
        O(candidates) to O(distinct counts).
        """
        out = np.full(batch.num_rows, -math.inf)
        if spectrum.num_peaks == 0:
            return batch.reduce_rows(out)
        span = max(float(spectrum.mz[-1] - spectrum.mz[0]), self.mz_range)
        total_bins = max(int(span / (2.0 * self.fragment_tolerance)), 1)
        occupied = min(spectrum.num_peaks, total_bins)
        observed = np.ascontiguousarray(spectrum.mz)
        for group in batch.length_groups():
            if group.length < 2:
                continue  # empty ladder, score stays -inf
            ladders = by_ion_ladder_rows(group.mass_rows())
            draws = min(ladders.shape[1], total_bins)
            matched = match_peaks_many(
                ladders, observed, self.fragment_tolerance
            ).sum(axis=1)
            matched = np.minimum(matched, min(draws, occupied))
            for m in np.unique(matched):
                tail = stats.hypergeom.sf(int(m) - 1, total_bins, occupied, draws)
                tail = max(float(tail), 1e-300)
                out[group.rows[matched == m]] = -math.log10(tail)
        return batch.reduce_rows(out)
