"""Hit records and the bounded top-tau hit list.

"Each worker ... report[s] at most tau hits per query" and every
algorithm "keeps a separate running list of the tau topmost hits for
every query" (paper Sections II.A and II.B).  :class:`TopHitList` is that
running list: a bounded min-heap with a *deterministic total order*, so
that the same candidate set always yields the same tau hits regardless of
evaluation order — the property the paper's validation experiment
(parallel output == serial output) rests on.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, NamedTuple, Sequence, Tuple


import numpy as np


class Hit(NamedTuple):
    """One candidate match reported for a query.

    Candidates are prefixes or suffixes of database sequences (paper
    Section II.A), so a hit is identified by the parent sequence's global
    id plus the residue span ``[start, stop)`` within it.  ``mod_delta``
    carries the total variable-PTM mass applied, 0.0 for unmodified.

    ``mass`` is informational and excluded from equality (custom
    ``__eq__``/``__hash__`` below): span masses are computed from
    per-shard cumulative sums, so the same span reached via different
    database partitionings can differ in the last float bits.  Scores do
    not share this caveat — they are recomputed from the raw residues
    and are bitwise partition-independent.

    A tuple subclass (not a dataclass) because hot search loops create
    one instance per retained hit: ``tuple.__new__`` is several times
    cheaper than a frozen dataclass ``__init__``.
    """

    query_id: int
    score: float
    protein_id: int
    start: int
    stop: int
    mass: float
    mod_delta: float = 0.0

    def sort_key(self) -> Tuple[float, int, int, int, float]:
        """Total order: higher score first, then stable structural tie-break."""
        return (-self.score, self.protein_id, self.start, self.stop, self.mod_delta)

    @property
    def length(self) -> int:
        return self.stop - self.start

    def __eq__(self, other) -> bool:
        if other.__class__ is Hit:
            return (
                self.query_id == other.query_id
                and self.score == other.score
                and self.protein_id == other.protein_id
                and self.start == other.start
                and self.stop == other.stop
                and self.mod_delta == other.mod_delta
            )
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash(
            (
                self.query_id,
                self.score,
                self.protein_id,
                self.start,
                self.stop,
                self.mod_delta,
            )
        )


class TopHitList:
    """Bounded container keeping the tau best hits for one query.

    ``add`` is O(log tau); ``sorted_hits`` is O(tau log tau).  Ties at the
    cutoff are resolved by :meth:`Hit.sort_key`, never by insertion
    order.
    """

    __slots__ = ("tau", "_heap", "_pending", "_counter", "evaluated")

    def __init__(self, tau: int):
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        self.tau = tau
        # heap entries are (neg_sort_key_inverted,) — we need a *min*-heap
        # whose root is the currently-worst retained hit, so we store
        # inverted keys: tuples that compare smaller for worse hits.
        self._heap: List[Tuple[Tuple, Hit]] = []
        # columnar fast path: the first batch's retained top-tau parks
        # here as plain lists (query_id, scores, proteins, starts, stops,
        # masses, mod_deltas, best_first) and only becomes Hit objects
        # when something actually needs them — a later batch, a scalar
        # add, or sorted_hits.  Invariant: _pending implies empty _heap.
        self._pending = None
        self.evaluated = 0  #: total candidates offered (for candidates/sec metrics)

    @staticmethod
    def _heap_key(hit: Hit) -> Tuple:
        # Min-heap must evict the *worst* hit, so the root must be the
        # worst => key orders "worse" < "better".  Worse = lower score,
        # then *larger* structural tie-break fields (sort_key ascending
        # means better, so negate its ordering elementwise).
        k = hit.sort_key()
        return (-k[0], -k[1], -k[2], -k[3], -k[4])

    def _materialize(self) -> None:
        """Turn a parked columnar batch into real heap entries."""
        parked = self._pending
        if parked is None:
            return
        self._pending = None
        qid, sc, pr, st, sp, ms, md, _best_first = parked
        new = tuple.__new__
        self._heap = [
            ((a, -b, -c, -d, -e), new(Hit, (qid, a, b, c, d, f, e)))
            for a, b, c, d, f, e in zip(sc, pr, st, sp, ms, md)
        ]
        heapq.heapify(self._heap)

    def add(self, hit: Hit) -> bool:
        """Offer a hit; returns True if retained in the top tau."""
        self.evaluated += 1
        self._materialize()
        return self._push(hit)

    def _push(self, hit: Hit) -> bool:
        key = self._heap_key(hit)
        if len(self._heap) < self.tau:
            heapq.heappush(self._heap, (key, hit))
            return True
        if key > self._heap[0][0]:
            heapq.heapreplace(self._heap, (key, hit))
            return True
        return False

    def add_batch(
        self,
        query_id: int,
        scores: np.ndarray,
        protein_ids: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        masses: np.ndarray,
        mod_deltas: np.ndarray,
    ) -> int:
        """Offer a whole array of scored candidates; returns the number retained.

        The retained set is *provably identical* to offering the
        candidates one at a time through :meth:`add`, but Hit objects are
        only materialised for the at-most-tau that can still matter:

        * candidates scoring strictly below the currently-worst retained
          hit (with a full list) can never enter — ties are kept, because
          the structural tie-break may still admit them;
        * of the survivors, only the batch's top tau under the *full*
          total order (:meth:`Hit.sort_key`, computed by one vectorized
          lexsort) are pushed: any other survivor is outranked by tau
          batch-mates, each of which either stays retained or is evicted
          by something better still — so it can never end in the top tau
          no matter the offer order or prior heap contents.

        Survivors go through the same deterministic heap as the scalar
        path; the heap's outcome is order-independent (total order, no
        duplicate keys within a batch), so tie resolution is unchanged.
        """
        n = len(scores)
        if n == 0:
            self.evaluated += n
            return 0
        idx = np.arange(n)
        if len(self._heap) >= self.tau:
            idx = idx[scores >= self._heap[0][1].score]
        if len(idx) > self.tau:
            order = np.lexsort(
                (
                    mod_deltas[idx],
                    stops[idx],
                    starts[idx],
                    protein_ids[idx],
                    -scores[idx],
                )
            )
            idx = idx[order[: self.tau]]
        return self.add_top_sorted(
            query_id,
            scores[idx].tolist(),
            protein_ids[idx].tolist(),
            starts[idx].tolist(),
            stops[idx].tolist(),
            masses[idx].tolist(),
            mod_deltas[idx].tolist(),
            n,
            best_first=len(idx) > self.tau,
        )

    def add_top_sorted(
        self,
        query_id: int,
        scores: list,
        protein_ids: list,
        starts: list,
        stops: list,
        masses: list,
        mod_deltas: list,
        offered: int,
        best_first: bool = True,
    ) -> int:
        """Offer a batch represented by its pre-selected top tau.

        The column lists hold the batch's top ``min(tau, n)`` candidates
        under the full total order (:meth:`Hit.sort_key`) — exactly the
        selection :meth:`add_batch` computes internally, so the outcome
        is identical to offering the whole batch (see the eviction
        argument there).  ``offered`` is the full batch size, counted
        into ``evaluated``; ``best_first`` records whether the columns
        are sorted best-first (they are whenever a top-tau truncation
        actually happened), which lets :meth:`sorted_hits` skip its
        final sort.  Used by the candidate-major sweep, which performs
        the top-tau selection for a whole cohort in one vectorized pass.

        On the first batch for a query the columns are parked as-is and
        Hit objects are not built at all until something needs them —
        the common serial case materializes exactly once, in
        :meth:`sorted_hits`, already in output order.
        """
        self.evaluated += offered
        if not self._heap:
            if self._pending is None:
                self._pending = (
                    query_id,
                    scores,
                    protein_ids,
                    starts,
                    stops,
                    masses,
                    mod_deltas,
                    best_first,
                )
                return len(scores)
            self._materialize()
        retained = 0
        new = tuple.__new__
        for row in zip(scores, protein_ids, starts, stops, masses, mod_deltas):
            sc, pr, st, sp, ms, md = row
            if self._push(new(Hit, (query_id, sc, pr, st, sp, ms, md))):
                retained += 1
        return retained

    def would_retain(self, score: float) -> bool:
        """Cheap pre-check: could any hit with this score enter the list?

        Used to skip building Hit objects for hopeless candidates; ties
        must still go through :meth:`add` for deterministic resolution,
        so this returns True on equality.
        """
        self._materialize()
        if len(self._heap) < self.tau:
            return True
        return score >= self._heap[0][1].score

    def __len__(self) -> int:
        if self._pending is not None:
            return len(self._pending[1])
        return len(self._heap)

    def sorted_hits(self) -> List[Hit]:
        """Retained hits, best first, deterministic order."""
        if self._pending is not None:
            qid, sc, pr, st, sp, ms, md, best_first = self._pending
            new = tuple.__new__
            hits = [
                new(Hit, (qid, a, b, c, d, f, e))
                for a, b, c, d, f, e in zip(sc, pr, st, sp, ms, md)
            ]
            # a parked batch sorted best-first is already in output
            # order (same total order as sort_key, no duplicate keys)
            return hits if best_first else sorted(hits, key=Hit.sort_key)
        return sorted((h for _k, h in self._heap), key=Hit.sort_key)

    def merge(self, other: "TopHitList") -> None:
        """Fold another list's hits into this one (keeps max of tau)."""
        if other.tau != self.tau:
            raise ValueError(f"tau mismatch: {self.tau} vs {other.tau}")
        evaluated = self.evaluated + other.evaluated
        other._materialize()
        for _k, hit in other._heap:
            self.add(hit)
        self.evaluated = evaluated  # merging is not re-evaluating


def hit_to_payload(hit: Hit) -> dict:
    """JSON-representable form of one hit (query id carried by the caller).

    The flat schema is shared by :meth:`repro.core.results.SearchReport.to_json`
    and the checkpoint format (docs/fault_tolerance.md), so checkpointed
    hits round-trip bit-for-bit: floats pass through ``json`` unchanged
    (``repr``-based, exact for binary64).
    """
    return {
        "score": hit.score,
        "protein_id": hit.protein_id,
        "start": hit.start,
        "stop": hit.stop,
        "mass": hit.mass,
        "mod_delta": hit.mod_delta,
    }


def hit_from_payload(query_id: int, payload: dict) -> Hit:
    """Inverse of :func:`hit_to_payload`."""
    return Hit(
        query_id=query_id,
        score=payload["score"],
        protein_id=payload["protein_id"],
        start=payload["start"],
        stop=payload["stop"],
        mass=payload["mass"],
        mod_delta=payload.get("mod_delta", 0.0),
    )


def hits_to_payload(hits: "dict[int, List[Hit]]") -> dict:
    """Serialize a per-query hit mapping (keys become strings for JSON)."""
    return {str(qid): [hit_to_payload(h) for h in hs] for qid, hs in hits.items()}


def hits_from_payload(payload: dict) -> "dict[int, List[Hit]]":
    """Inverse of :func:`hits_to_payload`."""
    return {
        int(qid): [hit_from_payload(int(qid), h) for h in hs]
        for qid, hs in payload.items()
    }


def merge_hit_lists(lists: Iterable[Sequence[Hit]], tau: int) -> List[Hit]:
    """Merge per-shard hit lists for one query into the global top tau.

    Deterministic regardless of input order; used when the same query was
    scored against different database shards (every parallel algorithm)
    and by the query-transport design alternative the paper discusses.
    """
    merged = TopHitList(tau)
    for hits in lists:
        for hit in hits:
            merged.add(hit)
    return merged.sorted_hits()
