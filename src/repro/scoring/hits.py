"""Hit records and the bounded top-tau hit list.

"Each worker ... report[s] at most tau hits per query" and every
algorithm "keeps a separate running list of the tau topmost hits for
every query" (paper Sections II.A and II.B).  :class:`TopHitList` is that
running list: a bounded min-heap with a *deterministic total order*, so
that the same candidate set always yields the same tau hits regardless of
evaluation order — the property the paper's validation experiment
(parallel output == serial output) rests on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, order=False)
class Hit:
    """One candidate match reported for a query.

    Candidates are prefixes or suffixes of database sequences (paper
    Section II.A), so a hit is identified by the parent sequence's global
    id plus the residue span ``[start, stop)`` within it.  ``mod_delta``
    carries the total variable-PTM mass applied, 0.0 for unmodified.

    ``mass`` is informational and excluded from equality: span masses are
    computed from per-shard cumulative sums, so the same span reached via
    different database partitionings can differ in the last float bits.
    Scores do not share this caveat — they are recomputed from the raw
    residues and are bitwise partition-independent.
    """

    query_id: int
    score: float
    protein_id: int
    start: int
    stop: int
    mass: float = field(compare=False)
    mod_delta: float = 0.0

    def sort_key(self) -> Tuple[float, int, int, int, float]:
        """Total order: higher score first, then stable structural tie-break."""
        return (-self.score, self.protein_id, self.start, self.stop, self.mod_delta)

    @property
    def length(self) -> int:
        return self.stop - self.start


class TopHitList:
    """Bounded container keeping the tau best hits for one query.

    ``add`` is O(log tau); ``sorted_hits`` is O(tau log tau).  Ties at the
    cutoff are resolved by :meth:`Hit.sort_key`, never by insertion
    order.
    """

    __slots__ = ("tau", "_heap", "_counter", "evaluated")

    def __init__(self, tau: int):
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        self.tau = tau
        # heap entries are (neg_sort_key_inverted,) — we need a *min*-heap
        # whose root is the currently-worst retained hit, so we store
        # inverted keys: tuples that compare smaller for worse hits.
        self._heap: List[Tuple[Tuple, Hit]] = []
        self.evaluated = 0  #: total candidates offered (for candidates/sec metrics)

    @staticmethod
    def _heap_key(hit: Hit) -> Tuple:
        # Min-heap must evict the *worst* hit, so the root must be the
        # worst => key orders "worse" < "better".  Worse = lower score,
        # then *larger* structural tie-break fields (sort_key ascending
        # means better, so negate its ordering elementwise).
        k = hit.sort_key()
        return (-k[0], -k[1], -k[2], -k[3], -k[4])

    def add(self, hit: Hit) -> bool:
        """Offer a hit; returns True if retained in the top tau."""
        self.evaluated += 1
        return self._push(hit)

    def _push(self, hit: Hit) -> bool:
        key = self._heap_key(hit)
        if len(self._heap) < self.tau:
            heapq.heappush(self._heap, (key, hit))
            return True
        if key > self._heap[0][0]:
            heapq.heapreplace(self._heap, (key, hit))
            return True
        return False

    def add_batch(
        self,
        query_id: int,
        scores: np.ndarray,
        protein_ids: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        masses: np.ndarray,
        mod_deltas: np.ndarray,
    ) -> int:
        """Offer a whole array of scored candidates; returns the number retained.

        The retained set is *provably identical* to offering the
        candidates one at a time through :meth:`add`, but Hit objects are
        only materialised for the few that can still matter:

        * candidates scoring strictly below the currently-worst retained
          hit (with a full list) can never enter — ties are kept, because
          the structural tie-break may still admit them;
        * if more than tau survivors remain, a candidate scoring strictly
          below the batch's tau-th highest score is evicted by those tau
          better batch members no matter the offer order, so only
          ``score >= tau-th highest`` survivors (ties again kept) are
          pushed.

        Survivors go through the same deterministic heap as the scalar
        path, in candidate order, so tie resolution is unchanged.
        """
        n = len(scores)
        self.evaluated += n
        if n == 0:
            return 0
        idx = np.arange(n)
        if len(self._heap) >= self.tau:
            idx = idx[scores >= self._heap[0][1].score]
        if len(idx) > self.tau:
            kept = scores[idx]
            threshold = np.partition(kept, len(kept) - self.tau)[len(kept) - self.tau]
            idx = idx[kept >= threshold]
        retained = 0
        for i in idx:
            i = int(i)
            hit = Hit(
                query_id=query_id,
                score=float(scores[i]),
                protein_id=int(protein_ids[i]),
                start=int(starts[i]),
                stop=int(stops[i]),
                mass=float(masses[i]),
                mod_delta=float(mod_deltas[i]),
            )
            if self._push(hit):
                retained += 1
        return retained

    def would_retain(self, score: float) -> bool:
        """Cheap pre-check: could any hit with this score enter the list?

        Used to skip building Hit objects for hopeless candidates; ties
        must still go through :meth:`add` for deterministic resolution,
        so this returns True on equality.
        """
        if len(self._heap) < self.tau:
            return True
        return score >= self._heap[0][1].score

    def __len__(self) -> int:
        return len(self._heap)

    def sorted_hits(self) -> List[Hit]:
        """Retained hits, best first, deterministic order."""
        return sorted((h for _k, h in self._heap), key=Hit.sort_key)

    def merge(self, other: "TopHitList") -> None:
        """Fold another list's hits into this one (keeps max of tau)."""
        if other.tau != self.tau:
            raise ValueError(f"tau mismatch: {self.tau} vs {other.tau}")
        evaluated = self.evaluated + other.evaluated
        for _k, hit in other._heap:
            self.add(hit)
        self.evaluated = evaluated  # merging is not re-evaluating


def hit_to_payload(hit: Hit) -> dict:
    """JSON-representable form of one hit (query id carried by the caller).

    The flat schema is shared by :meth:`repro.core.results.SearchReport.to_json`
    and the checkpoint format (docs/fault_tolerance.md), so checkpointed
    hits round-trip bit-for-bit: floats pass through ``json`` unchanged
    (``repr``-based, exact for binary64).
    """
    return {
        "score": hit.score,
        "protein_id": hit.protein_id,
        "start": hit.start,
        "stop": hit.stop,
        "mass": hit.mass,
        "mod_delta": hit.mod_delta,
    }


def hit_from_payload(query_id: int, payload: dict) -> Hit:
    """Inverse of :func:`hit_to_payload`."""
    return Hit(
        query_id=query_id,
        score=payload["score"],
        protein_id=payload["protein_id"],
        start=payload["start"],
        stop=payload["stop"],
        mass=payload["mass"],
        mod_delta=payload.get("mod_delta", 0.0),
    )


def hits_to_payload(hits: "dict[int, List[Hit]]") -> dict:
    """Serialize a per-query hit mapping (keys become strings for JSON)."""
    return {str(qid): [hit_to_payload(h) for h in hs] for qid, hs in hits.items()}


def hits_from_payload(payload: dict) -> "dict[int, List[Hit]]":
    """Inverse of :func:`hits_to_payload`."""
    return {
        int(qid): [hit_from_payload(int(qid), h) for h in hs]
        for qid, hs in payload.items()
    }


def merge_hit_lists(lists: Iterable[Sequence[Hit]], tau: int) -> List[Hit]:
    """Merge per-shard hit lists for one query into the global top tau.

    Deterministic regardless of input order; used when the same query was
    scored against different database shards (every parallel algorithm)
    and by the query-transport design alternative the paper discusses.
    """
    merged = TopHitList(tau)
    for hits in lists:
        for hit in hits:
            merged.add(hit)
    return merged.sorted_hits()
