"""SEQUEST-style cross-correlation (Xcorr) scorer.

SEQUEST (Eng, McCormack & Yates 1994 — the paper's reference [11])
correlates a binned experimental spectrum with a binned theoretical
spectrum and subtracts the mean correlation over displaced offsets,
rewarding alignment at zero shift specifically.

We use the standard fast reformulation: preprocess the observed binned
vector once per query as ``y' = y - mean(y shifted by -75..+75 bins)``,
after which each candidate's Xcorr is a single sparse dot product against
the candidate's fragment bins.  The preprocessing is cached on the
spectrum object (keyed by id) because one query is scored against many
thousands of candidates.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.candidates.batch import CandidateBatch
from repro.spectra.binning import bin_spectrum, row_segment_sums
from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import by_ion_ladder, by_ion_ladder_rows, modified_by_ion_ladder


class XCorrScorer:
    """Fast Xcorr over unit-width m/z bins."""

    name = "xcorr"
    relative_cost = 3.0

    def __init__(self, bin_width: float = 1.0005, offset_range: int = 75):
        if bin_width <= 0:
            raise ValueError(f"bin_width must be > 0, got {bin_width}")
        if offset_range < 1:
            raise ValueError(f"offset_range must be >= 1, got {offset_range}")
        self.bin_width = bin_width
        self.offset_range = offset_range
        self._cache: Dict[int, Tuple[int, np.ndarray]] = {}

    def _preprocessed(self, spectrum: Spectrum) -> np.ndarray:
        key = id(spectrum)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == spectrum.num_peaks:
            return cached[1]
        mz_max = float(max(spectrum.precursor_mz * spectrum.charge, spectrum.mz[-1] if spectrum.num_peaks else 1.0)) + 2.0
        binned = bin_spectrum(spectrum.mz, np.sqrt(spectrum.intensity), self.bin_width, mz_max)
        # y' = y - mean of y over +/- offset_range bins (excluding self),
        # computed with a cumulative sum for O(n).
        w = self.offset_range
        csum = np.concatenate(([0.0], np.cumsum(binned)))
        n = len(binned)
        lo = np.clip(np.arange(n) - w, 0, n)
        hi = np.clip(np.arange(n) + w + 1, 0, n)
        window_sum = csum[hi] - csum[lo] - binned
        window_len = (hi - lo - 1).astype(np.float64)
        mean = np.divide(window_sum, window_len, out=np.zeros(n), where=window_len > 0)
        processed = binned - mean
        if len(self._cache) > 64:  # one query is live at a time per engine
            self._cache.clear()
        self._cache[key] = (spectrum.num_peaks, processed)
        return processed

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        return self._score_ladder(spectrum, by_ion_ladder(candidate))

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        return self._score_ladder(
            spectrum, modified_by_ion_ladder(candidate, site, delta_mass)
        )

    def _score_ladder(self, spectrum: Spectrum, ladder: np.ndarray) -> float:
        if spectrum.num_peaks == 0:
            return float("-inf")
        processed = self._preprocessed(spectrum)
        if len(ladder) == 0:
            return float("-inf")
        bins = (ladder / self.bin_width).astype(np.int64)
        bins = np.unique(bins[(bins >= 0) & (bins < len(processed))])
        if len(bins) == 0:
            return float("-inf")
        # Xcorr is conventionally scaled by 1e-4 of the raw correlation.
        return float(processed[bins].sum()) * 1e-2

    def _ladder_matrix_scores(
        self, processed: np.ndarray, ladders: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-row Xcorr sums and unique-bin counts for a ladder matrix.

        Shared by the direct batch path and the index-served path, which
        feed it the same ladder rows (regenerated vs. cached), so both
        produce bitwise-identical scores.
        """
        nbins = len(processed)
        sentinel = np.iinfo(np.int64).max
        bins = (ladders / self.bin_width).astype(np.int64)
        bins[(bins < 0) | (bins >= nbins)] = sentinel
        bins.sort(axis=1)
        # First occurrence of each value per row == np.unique per row.
        keep = np.ones(bins.shape, dtype=bool)
        keep[:, 1:] = bins[:, 1:] != bins[:, :-1]
        keep &= bins != sentinel
        counts = keep.sum(axis=1)
        row_offsets = np.concatenate(([0], np.cumsum(counts)))
        flat_bins = bins[keep]  # row-major => sorted unique bins per row
        sums = row_segment_sums(processed, flat_bins, row_offsets)
        return sums, counts

    def score_batch(self, spectrum: Spectrum, batch: CandidateBatch) -> np.ndarray:
        """Vectorized scoring; bitwise identical to the scalar path."""
        out = np.full(batch.num_rows, -np.inf)
        if spectrum.num_peaks == 0:
            return batch.reduce_rows(out)
        processed = self._preprocessed(spectrum)
        for group in batch.length_groups():
            if group.length < 2:
                continue  # empty ladder, score stays -inf
            ladders = by_ion_ladder_rows(group.mass_rows())
            sums, counts = self._ladder_matrix_scores(processed, ladders)
            scored = np.nonzero(counts > 0)[0]
            out[group.rows[scored]] = sums[scored] * 1e-2
        return batch.reduce_rows(out)

    def score_block(self, spectra, batch: CandidateBatch, selections):
        """Cohort scoring: ladders built once, queries share the matrices."""
        from repro.scoring.base import score_block_groups

        def prepare(group):
            if group.length < 2:
                return None  # empty ladder, score stays -inf
            return by_ion_ladder_rows(group.mass_rows())

        def kernel(spectrum, ladders, local):
            out = np.full(len(local), -np.inf)
            if spectrum.num_peaks == 0:
                return out
            processed = self._preprocessed(spectrum)
            sums, counts = self._ladder_matrix_scores(processed, ladders[local])
            scored = np.nonzero(counts > 0)[0]
            out[scored] = sums[scored] * 1e-2
            return out

        return score_block_groups(self, spectra, batch, selections, -np.inf, prepare, kernel)

    def score_index(self, spectrum: Spectrum, index, rows: np.ndarray) -> np.ndarray:
        """Index-served scoring; bitwise identical to :meth:`score_batch`.

        Gathers the cached per-length ladder matrices instead of
        regenerating them; binning, dedup, and segment sums run through
        the same `_ladder_matrix_scores` kernel.
        """
        out = np.full(len(rows), -np.inf)
        if spectrum.num_peaks == 0 or len(rows) == 0:
            return out
        processed = self._preprocessed(spectrum)
        for positions, group, local in index.iter_row_groups(rows):
            sums, counts = self._ladder_matrix_scores(processed, group.ladder[local])
            scored = np.nonzero(counts > 0)[0]
            out[positions[scored]] = sums[scored] * 1e-2
        return out
