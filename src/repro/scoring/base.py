"""The Scorer protocol shared by all statistical models.

A scorer maps ``(experimental spectrum, candidate peptide)`` to a single
real number where larger means a better match.  The paper's quality
argument (Section I.A) contrasts *cheap* models (X!!Tandem's "fairly
simple, fast statistical model") with *expensive, accurate* ones
(MSPolygraph's likelihood models); we expose both behind one interface so
every search algorithm can run with either, and so the cost model can
attribute a per-candidate compute cost ``rho`` that differs by scorer.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.candidates.batch import CandidateBatch
from repro.spectra.spectrum import Spectrum


@runtime_checkable
class Scorer(Protocol):
    """Protocol for match scorers.

    Attributes:
        name: stable identifier used in configs and reports.
        relative_cost: approximate cost of one candidate evaluation
            relative to the shared-peak-count scorer (1.0).  The virtual
            time model multiplies this into the calibrated per-candidate
            cost ``rho``, so switching to a heavier model slows simulated
            runs exactly as the paper argues it slows real ones.
    """

    name: str
    relative_cost: float

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        """Score an encoded candidate peptide against a spectrum.

        Must be deterministic and side-effect free: the paper's
        validation experiment requires parallel runs to reproduce the
        serial engine's output exactly, whatever the order in which
        candidates are evaluated.
        """
        ...

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        """Score a candidate carrying a variable PTM at ``site``.

        The fragment model must shift every ion containing the modified
        residue by ``delta_mass``.  The search kernel evaluates every
        admissible site and keeps the best, so this too must be
        deterministic.
        """
        ...

    def score_batch(self, spectrum: Spectrum, batch: CandidateBatch) -> np.ndarray:
        """Score every candidate of a batch against one spectrum.

        Returns a float64 array of per-candidate scores (PTM candidates
        already reduced to their best site).  Entry ``i`` MUST be bitwise
        identical to what the per-candidate :meth:`score` /
        :meth:`score_modified` path produces for candidate ``i`` — the
        scalar path is the correctness oracle, and the paper's validation
        property (parallel == serial, exactly) extends to batched
        execution only under that contract.

        Scorers without a vectorized implementation may omit this method;
        :func:`batch_scores` falls back to the scalar loop.
        """
        ...


def score_batch_fallback(
    scorer: Scorer, spectrum: Spectrum, batch: CandidateBatch
) -> np.ndarray:
    """Per-candidate oracle: score a batch through the scalar interface.

    This is the reference implementation every ``score_batch`` must match
    bitwise.  It is also the fallback for scorers that never got a
    vectorized kernel (e.g. the scipy-based hypergeometric model).
    """
    row_scores = np.empty(batch.num_rows, dtype=np.float64)
    for r in range(batch.num_rows):
        residues = batch.row_residues(r)
        site = int(batch.row_site[r])
        if site >= 0:
            row_scores[r] = scorer.score_modified(
                spectrum, residues, site, float(batch.row_delta[r])
            )
        else:
            row_scores[r] = scorer.score(spectrum, residues)
    return batch.reduce_rows(row_scores)


def batch_scores(
    scorer: Scorer, spectrum: Spectrum, batch: CandidateBatch
) -> np.ndarray:
    """Dispatch to a scorer's ``score_batch``, or the scalar fallback."""
    if len(batch) == 0:
        return np.empty(0, dtype=np.float64)
    impl = getattr(scorer, "score_batch", None)
    if impl is not None:
        return impl(spectrum, batch)
    return score_batch_fallback(scorer, spectrum, batch)
