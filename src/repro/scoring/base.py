"""The Scorer protocol shared by all statistical models.

A scorer maps ``(experimental spectrum, candidate peptide)`` to a single
real number where larger means a better match.  The paper's quality
argument (Section I.A) contrasts *cheap* models (X!!Tandem's "fairly
simple, fast statistical model") with *expensive, accurate* ones
(MSPolygraph's likelihood models); we expose both behind one interface so
every search algorithm can run with either, and so the cost model can
attribute a per-candidate compute cost ``rho`` that differs by scorer.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.spectra.spectrum import Spectrum


@runtime_checkable
class Scorer(Protocol):
    """Protocol for match scorers.

    Attributes:
        name: stable identifier used in configs and reports.
        relative_cost: approximate cost of one candidate evaluation
            relative to the shared-peak-count scorer (1.0).  The virtual
            time model multiplies this into the calibrated per-candidate
            cost ``rho``, so switching to a heavier model slows simulated
            runs exactly as the paper argues it slows real ones.
    """

    name: str
    relative_cost: float

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        """Score an encoded candidate peptide against a spectrum.

        Must be deterministic and side-effect free: the paper's
        validation experiment requires parallel runs to reproduce the
        serial engine's output exactly, whatever the order in which
        candidates are evaluated.
        """
        ...

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        """Score a candidate carrying a variable PTM at ``site``.

        The fragment model must shift every ion containing the modified
        residue by ``delta_mass``.  The search kernel evaluates every
        admissible site and keeps the best, so this too must be
        deterministic.
        """
        ...
