"""The Scorer protocol shared by all statistical models.

A scorer maps ``(experimental spectrum, candidate peptide)`` to a single
real number where larger means a better match.  The paper's quality
argument (Section I.A) contrasts *cheap* models (X!!Tandem's "fairly
simple, fast statistical model") with *expensive, accurate* ones
(MSPolygraph's likelihood models); we expose both behind one interface so
every search algorithm can run with either, and so the cost model can
attribute a per-candidate compute cost ``rho`` that differs by scorer.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.candidates.batch import CandidateBatch, LengthGroup
from repro.spectra.spectrum import Spectrum
from repro.spectra.spectrum_batch import SpectrumBatch


@runtime_checkable
class Scorer(Protocol):
    """Protocol for match scorers.

    Attributes:
        name: stable identifier used in configs and reports.
        relative_cost: approximate cost of one candidate evaluation
            relative to the shared-peak-count scorer (1.0).  The virtual
            time model multiplies this into the calibrated per-candidate
            cost ``rho``, so switching to a heavier model slows simulated
            runs exactly as the paper argues it slows real ones.
    """

    name: str
    relative_cost: float

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        """Score an encoded candidate peptide against a spectrum.

        Must be deterministic and side-effect free: the paper's
        validation experiment requires parallel runs to reproduce the
        serial engine's output exactly, whatever the order in which
        candidates are evaluated.
        """
        ...

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        """Score a candidate carrying a variable PTM at ``site``.

        The fragment model must shift every ion containing the modified
        residue by ``delta_mass``.  The search kernel evaluates every
        admissible site and keeps the best, so this too must be
        deterministic.
        """
        ...

    def score_batch(self, spectrum: Spectrum, batch: CandidateBatch) -> np.ndarray:
        """Score every candidate of a batch against one spectrum.

        Returns a float64 array of per-candidate scores (PTM candidates
        already reduced to their best site).  Entry ``i`` MUST be bitwise
        identical to what the per-candidate :meth:`score` /
        :meth:`score_modified` path produces for candidate ``i`` — the
        scalar path is the correctness oracle, and the paper's validation
        property (parallel == serial, exactly) extends to batched
        execution only under that contract.

        Scorers without a vectorized implementation may omit this method;
        :func:`batch_scores` falls back to the scalar loop.
        """
        ...


def score_batch_fallback(
    scorer: Scorer, spectrum: Spectrum, batch: CandidateBatch
) -> np.ndarray:
    """Per-candidate oracle: score a batch through the scalar interface.

    This is the reference implementation every ``score_batch`` must match
    bitwise.  It is also the fallback for scorers that never got a
    vectorized kernel (e.g. the scipy-based hypergeometric model).
    """
    row_scores = np.empty(batch.num_rows, dtype=np.float64)
    for r in range(batch.num_rows):
        residues = batch.row_residues(r)
        site = int(batch.row_site[r])
        if site >= 0:
            row_scores[r] = scorer.score_modified(
                spectrum, residues, site, float(batch.row_delta[r])
            )
        else:
            row_scores[r] = scorer.score(spectrum, residues)
    return batch.reduce_rows(row_scores)


def batch_scores(
    scorer: Scorer, spectrum: Spectrum, batch: CandidateBatch
) -> np.ndarray:
    """Dispatch to a scorer's ``score_batch``, or the scalar fallback."""
    if len(batch) == 0:
        return np.empty(0, dtype=np.float64)
    impl = getattr(scorer, "score_batch", None)
    if impl is not None:
        return impl(spectrum, batch)
    return score_batch_fallback(scorer, spectrum, batch)


# -- multi-spectrum (cohort) scoring ------------------------------------
#
# The candidate-major sweep scores one shared CandidateBatch against a
# whole SpectrumBatch of queries whose precursor windows overlap.  The
# bitwise contract carries over because every per-length preparation
# (ladder matrices, fragment m/z rows, model spectra) is a *row-wise*
# product of the group's residue matrix: preparing the cohort's rows once
# and gathering each query's subset with ``prep[local]`` yields the exact
# rows a per-query batch would have built, and every kernel below reduces
# along the last axis only.


def score_block_groups(
    scorer: Scorer,
    spectra: SpectrumBatch,
    batch: CandidateBatch,
    selections: Sequence[np.ndarray],
    default: float,
    prepare: Callable[[LengthGroup], Optional[object]],
    kernel: Callable[[Spectrum, object, np.ndarray], np.ndarray],
) -> List[np.ndarray]:
    """Shared driver for per-scorer ``score_block`` implementations.

    ``selections[k]`` lists the candidate indices (into ``batch``) that
    query ``k`` owns.  ``prepare`` runs ONCE per length group for the
    whole cohort (returning ``None`` marks the group unscoreable, leaving
    its rows at ``default`` — e.g. length < 2); ``kernel(spectrum, prep,
    local_rows)`` scores the selected rows of a prepared group against
    one member spectrum.  Returns per-query candidate scores, each
    bitwise identical to ``score_batch`` on that query's own batch.
    """
    groups = batch.length_groups()
    preps = [prepare(group) for group in groups]
    row_group, row_local = batch.group_positions()
    out: List[np.ndarray] = []
    for k, sel in enumerate(selections):
        sel = np.asarray(sel, dtype=np.int64)
        if len(sel) == 0:
            out.append(np.empty(0, dtype=np.float64))
            continue
        rows = batch.rows_of(sel)
        row_scores = np.full(len(rows), default, dtype=np.float64)
        gid = row_group[rows]
        spectrum = spectra.spectra[k]
        for g, prep in enumerate(preps):
            if prep is None:
                continue
            pos = np.nonzero(gid == g)[0]
            if len(pos):
                row_scores[pos] = kernel(spectrum, prep, row_local[rows[pos]])
        out.append(batch.reduce_selected(row_scores, sel))
    return out


def score_block_fallback(
    scorer: Scorer,
    spectra: SpectrumBatch,
    batch: CandidateBatch,
    selections: Sequence[np.ndarray],
) -> List[np.ndarray]:
    """Block oracle: score each query's sub-batch through ``batch_scores``.

    Used by scorers without a ``score_block`` kernel; also the reference
    the vectorized block kernels must match bitwise.
    """
    return [
        batch_scores(scorer, spectra.spectra[k], batch.take(np.asarray(sel, dtype=np.int64)))
        for k, sel in enumerate(selections)
    ]


def block_scores(
    scorer: Scorer,
    spectra: SpectrumBatch,
    batch: CandidateBatch,
    selections: Sequence[np.ndarray],
) -> List[np.ndarray]:
    """Dispatch to a scorer's ``score_block``, or the per-query fallback."""
    if len(batch) == 0:
        return [np.empty(0, dtype=np.float64) for _ in selections]
    impl = getattr(scorer, "score_block", None)
    if impl is not None:
        return impl(spectra, batch, selections)
    return score_block_fallback(scorer, spectra, batch, selections)
