"""Score statistics: target-decoy FDR estimation and q-values.

MSPolygraph's value proposition (Cannon et al. 2005, carried into the
paper) is statistical accuracy; this module provides the machinery to
*measure* it.  Searching a target+decoy database yields, per query, a
top hit that is either a target or a decoy match; at any score
threshold ``t``:

    FDR(t) ~= #decoy_hits(score >= t) / #target_hits(score >= t)

(the standard concatenated-search estimator).  ``q``-values are the
monotone hull of the FDR curve; ``accepted_at_fdr`` returns the
identifications surviving a given rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.chem.decoy import is_decoy_id
from repro.scoring.hits import Hit


@dataclass(frozen=True)
class ScoredIdentification:
    """One query's top hit, labelled target/decoy, with its q-value."""

    query_id: int
    score: float
    is_decoy: bool
    q_value: float


def top_hits_with_labels(hits: Dict[int, List[Hit]]) -> List[Tuple[int, float, bool]]:
    """Per-query (query_id, top score, is_decoy) triples."""
    out = []
    for qid, hit_list in hits.items():
        if hit_list:
            top = hit_list[0]
            out.append((qid, top.score, is_decoy_id(top.protein_id)))
    return out


def fdr_curve(labels: Sequence[Tuple[int, float, bool]]) -> List[ScoredIdentification]:
    """Estimate q-values over a set of labelled top hits.

    Returns identifications sorted by decreasing score with the
    monotone-hulled FDR (q-value) attached.
    """
    ordered = sorted(labels, key=lambda x: (-x[1], x[0]))
    decoys = 0
    targets = 0
    raw_fdr = []
    for _qid, _score, is_decoy in ordered:
        if is_decoy:
            decoys += 1
        else:
            targets += 1
        raw_fdr.append(decoys / max(targets, 1))
    # q-value: minimum FDR at this score or any more permissive threshold
    q = np.minimum.accumulate(np.array(raw_fdr)[::-1])[::-1]
    return [
        ScoredIdentification(qid, score, is_decoy, float(qv))
        for (qid, score, is_decoy), qv in zip(ordered, q)
    ]


def accepted_at_fdr(
    identifications: Sequence[ScoredIdentification], fdr: float = 0.01
) -> List[ScoredIdentification]:
    """Target identifications whose q-value is at or below ``fdr``."""
    if fdr < 0:
        raise ValueError(f"fdr must be >= 0, got {fdr}")
    return [ident for ident in identifications if not ident.is_decoy and ident.q_value <= fdr]


def score_threshold_at_fdr(
    identifications: Sequence[ScoredIdentification], fdr: float = 0.01
) -> float:
    """Lowest score still accepted at the given FDR (inf if none)."""
    accepted = accepted_at_fdr(identifications, fdr)
    return min((a.score for a in accepted), default=float("inf"))
