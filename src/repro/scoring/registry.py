"""Name-based scorer construction for configs and the CLI."""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.scoring.base import Scorer
from repro.scoring.hypergeometric import HypergeometricScorer
from repro.scoring.hyperscore import HyperScorer
from repro.scoring.likelihood import LikelihoodRatioScorer
from repro.scoring.shared_peaks import SharedPeakScorer
from repro.scoring.xcorr import XCorrScorer
from repro.spectra.library import SpectralLibrary

SCORER_NAMES = ("shared_peaks", "likelihood", "hyperscore", "xcorr", "hypergeometric")


def make_scorer(
    name: str,
    fragment_tolerance: float = 0.5,
    library: Optional[SpectralLibrary] = None,
) -> Scorer:
    """Instantiate a scorer by name.

    ``library`` is honoured only by the likelihood scorer (MSPolygraph's
    spectral-library path); other scorers ignore it.
    """
    if name == "shared_peaks":
        return SharedPeakScorer(fragment_tolerance)
    if name == "likelihood":
        return LikelihoodRatioScorer(fragment_tolerance, library=library)
    if name == "hyperscore":
        return HyperScorer(fragment_tolerance)
    if name == "xcorr":
        return XCorrScorer()
    if name == "hypergeometric":
        return HypergeometricScorer(fragment_tolerance)
    raise ConfigError(f"unknown scorer {name!r}; expected one of {SCORER_NAMES}")
