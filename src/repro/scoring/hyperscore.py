"""X!Tandem-style hyperscore — the "fast, simple" model.

X!!Tandem's speed (paper Section I.A: 2.65 M peptides against 1,210
spectra in under 2 minutes on 8 processors) comes from a cheap dot-product
score.  The hyperscore is::

    hyperscore = (sum of matched peak intensities) * Nb! * Ny!

reported in log form.  We count b- and y-series matches separately and
apply Stirling-exact ``lgamma`` factorials, as X!Tandem does.
"""

from __future__ import annotations

import math

import numpy as np

from repro.spectra.binning import matched_intensity
from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import IonSeries, fragment_mz


class HyperScorer:
    """log10 hyperscore over singly-charged b and y series."""

    name = "hyperscore"
    relative_cost = 1.5

    def __init__(self, fragment_tolerance: float = 0.5):
        if fragment_tolerance <= 0:
            raise ValueError(f"fragment_tolerance must be > 0, got {fragment_tolerance}")
        self.fragment_tolerance = fragment_tolerance

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        return self._score(spectrum, candidate, -1, 0.0)

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        return self._score(spectrum, candidate, site, delta_mass)

    def _score(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta: float
    ) -> float:
        if spectrum.num_peaks == 0:
            return -math.inf
        mz = np.ascontiguousarray(spectrum.mz)
        intensity = np.ascontiguousarray(spectrum.intensity)
        nb, b_int = matched_intensity(
            mz, intensity,
            fragment_mz(candidate, IonSeries.B, mod_site=site, mod_delta=delta),
            self.fragment_tolerance,
        )
        ny, y_int = matched_intensity(
            mz, intensity,
            fragment_mz(candidate, IonSeries.Y, mod_site=site, mod_delta=delta),
            self.fragment_tolerance,
        )
        dot = b_int + y_int
        if dot <= 0.0 or (nb == 0 and ny == 0):
            return -math.inf
        ln = math.log(dot) + math.lgamma(nb + 1) + math.lgamma(ny + 1)
        return ln / math.log(10.0)
