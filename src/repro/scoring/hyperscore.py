"""X!Tandem-style hyperscore — the "fast, simple" model.

X!!Tandem's speed (paper Section I.A: 2.65 M peptides against 1,210
spectra in under 2 minutes on 8 processors) comes from a cheap dot-product
score.  The hyperscore is::

    hyperscore = (sum of matched peak intensities) * Nb! * Ny!

reported in log form.  We count b- and y-series matches separately and
apply Stirling-exact ``lgamma`` factorials, as X!Tandem does.
"""

from __future__ import annotations

import math

import numpy as np

from repro.candidates.batch import CandidateBatch
from repro.spectra.binning import matched_intensity, matched_intensity_rows
from repro.spectra.spectrum import Spectrum
from repro.spectra.theoretical import IonSeries, fragment_mz, fragment_mz_rows

#: log(10), the hyperscore's reporting base.
_LOG10 = math.log(10.0)

#: lgamma(k + 1) lookup, grown on demand.  ``math.lgamma`` of an integer
#: argument is deterministic, so table entries equal the scalar path's
#: per-candidate calls exactly.
_LGAMMA_FACTORIAL = np.array([math.lgamma(k + 1) for k in range(128)])


def _lgamma_factorial(n_max: int) -> np.ndarray:
    """Table ``t`` with ``t[k] == math.lgamma(k + 1)`` for ``k <= n_max``."""
    global _LGAMMA_FACTORIAL
    if n_max >= len(_LGAMMA_FACTORIAL):
        _LGAMMA_FACTORIAL = np.array([math.lgamma(k + 1) for k in range(n_max + 1)])
    return _LGAMMA_FACTORIAL


class HyperScorer:
    """log10 hyperscore over singly-charged b and y series."""

    name = "hyperscore"
    relative_cost = 1.5

    def __init__(self, fragment_tolerance: float = 0.5):
        if fragment_tolerance <= 0:
            raise ValueError(f"fragment_tolerance must be > 0, got {fragment_tolerance}")
        self.fragment_tolerance = fragment_tolerance

    def score(self, spectrum: Spectrum, candidate: np.ndarray) -> float:
        return self._score(spectrum, candidate, -1, 0.0)

    def score_modified(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta_mass: float
    ) -> float:
        return self._score(spectrum, candidate, site, delta_mass)

    def _score(
        self, spectrum: Spectrum, candidate: np.ndarray, site: int, delta: float
    ) -> float:
        if spectrum.num_peaks == 0:
            return -math.inf
        mz = np.ascontiguousarray(spectrum.mz)
        intensity = np.ascontiguousarray(spectrum.intensity)
        nb, b_int = matched_intensity(
            mz, intensity,
            fragment_mz(candidate, IonSeries.B, mod_site=site, mod_delta=delta),
            self.fragment_tolerance,
        )
        ny, y_int = matched_intensity(
            mz, intensity,
            fragment_mz(candidate, IonSeries.Y, mod_site=site, mod_delta=delta),
            self.fragment_tolerance,
        )
        dot = b_int + y_int
        if dot <= 0.0 or (nb == 0 and ny == 0):
            return -math.inf
        # np.log rather than math.log: the two differ in the last bit for
        # some inputs, and the batched path must reproduce this score
        # exactly.
        ln = float(np.log(dot)) + math.lgamma(nb + 1) + math.lgamma(ny + 1)
        return ln / _LOG10

    def score_batch(self, spectrum: Spectrum, batch: CandidateBatch) -> np.ndarray:
        """Vectorized scoring; bitwise identical to the scalar path."""
        out = np.full(batch.num_rows, -math.inf)
        if spectrum.num_peaks == 0:
            return batch.reduce_rows(out)
        mz = np.ascontiguousarray(spectrum.mz)
        intensity = np.ascontiguousarray(spectrum.intensity)
        for group in batch.length_groups():
            masses = group.mass_rows()
            nb, b_int = matched_intensity_rows(
                mz, intensity, fragment_mz_rows(masses, IonSeries.B), self.fragment_tolerance
            )
            ny, y_int = matched_intensity_rows(
                mz, intensity, fragment_mz_rows(masses, IonSeries.Y), self.fragment_tolerance
            )
            dot = b_int + y_int
            valid = np.nonzero((dot > 0.0) & ((nb > 0) | (ny > 0)))[0]
            if len(valid) == 0:
                continue
            table = _lgamma_factorial(int(max(nb.max(), ny.max())))
            ln = np.log(dot[valid]) + table[nb[valid]] + table[ny[valid]]
            out[group.rows[valid]] = ln / _LOG10
        return batch.reduce_rows(out)

    def score_index(self, spectrum: Spectrum, index, rows: np.ndarray) -> np.ndarray:
        """Index-served scoring; bitwise identical to :meth:`score_batch`.

        The per-series matched-peak segments come from the b/y posting
        list instead of regenerated fragment matrices; counts and
        intensity sums then feed the exact final arithmetic of the
        batched path.
        """
        out = np.full(len(rows), -math.inf)
        if spectrum.num_peaks == 0 or len(rows) == 0:
            return out
        mz = np.ascontiguousarray(spectrum.mz)
        intensity = np.ascontiguousarray(spectrum.intensity)
        nb, b_int = index.matched_intensity(
            mz, intensity, self.fragment_tolerance, rows, "b"
        )
        ny, y_int = index.matched_intensity(
            mz, intensity, self.fragment_tolerance, rows, "y"
        )
        dot = b_int + y_int
        valid = np.nonzero((dot > 0.0) & ((nb > 0) | (ny > 0)))[0]
        if len(valid) == 0:
            return out
        table = _lgamma_factorial(int(max(nb.max(), ny.max())))
        ln = np.log(dot[valid]) + table[nb[valid]] + table[ny[valid]]
        out[valid] = ln / _LOG10
        return out

    @staticmethod
    def _finalize(nb, b_int, ny, y_int):
        """Counts and sums -> log10 hyperscore (the batched arithmetic)."""
        out = np.full(len(nb), -math.inf)
        dot = b_int + y_int
        valid = np.nonzero((dot > 0.0) & ((nb > 0) | (ny > 0)))[0]
        if len(valid) == 0:
            return out
        table = _lgamma_factorial(int(max(nb.max(), ny.max())))
        ln = np.log(dot[valid]) + table[nb[valid]] + table[ny[valid]]
        out[valid] = ln / _LOG10
        return out

    def score_block(self, spectra, batch: CandidateBatch, selections):
        """Cohort scoring: fragment matrices built once per length group."""
        from repro.scoring.base import score_block_groups

        def prepare(group):
            masses = group.mass_rows()
            return (
                fragment_mz_rows(masses, IonSeries.B),
                fragment_mz_rows(masses, IonSeries.Y),
            )

        def kernel(spectrum, prep, local):
            if spectrum.num_peaks == 0:
                return np.full(len(local), -math.inf)
            b_rows, y_rows = prep
            mz = np.ascontiguousarray(spectrum.mz)
            intensity = np.ascontiguousarray(spectrum.intensity)
            nb, b_int = matched_intensity_rows(
                mz, intensity, b_rows[local], self.fragment_tolerance
            )
            ny, y_int = matched_intensity_rows(
                mz, intensity, y_rows[local], self.fragment_tolerance
            )
            return self._finalize(nb, b_int, ny, y_int)

        return score_block_groups(self, spectra, batch, selections, -math.inf, prepare, kernel)

    def score_index_block(self, spectra, index, row_sets):
        """Index-served cohort scoring: one flat b/y probe for all queries."""
        return [
            self._finalize(nb, b_int, ny, y_int)
            for nb, b_int, ny, y_int in index.matched_intensity_block(
                spectra, self.fragment_tolerance, row_sets
            )
        ]
