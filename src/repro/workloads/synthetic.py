"""Seeded synthetic protein database generator.

Stands in for the paper's NCBI GenBank downloads (offline substitution;
see DESIGN.md).  What the search pipeline is sensitive to is matched to
the real data:

* amino-acid composition follows natural frequencies, so tryptic site
  density (~K/R frequency), span-mass density (which sets candidate
  counts per Da of tolerance) and parent-m/z distribution are realistic;
* sequence lengths are log-normal around the paper's Table I means
  (301.66 residues for the human set, 314.44 for microbial);
* generation is vectorized and streamed in blocks so million-sequence
  databases build in seconds, and sequence ``k`` is identical regardless
  of the total requested — so the paper's nested subsets (1K c 2K c 4K
  ... c 2.65M) are literally prefixes of one deterministic stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.protein import ProteinDatabase
from repro.constants import AMINO_ACIDS, NATURAL_FREQUENCY
from repro.utils.rng import make_rng

_AA_CODES = np.frombuffer(AMINO_ACIDS.encode("ascii"), dtype=np.uint8)
_AA_PROBS = np.array([NATURAL_FREQUENCY[a] for a in AMINO_ACIDS])
_AA_CUM = np.cumsum(_AA_PROBS)
_AA_CUM[-1] = 1.0  # guard against floating-point undershoot


def _sample_residues(rng: np.random.Generator, length: int) -> np.ndarray:
    """Draw ``length`` residues from the natural composition, vectorized.

    Inverse-CDF sampling via searchsorted is ~10x faster than
    ``Generator.choice`` with probabilities for the many small draws the
    database builder makes.
    """
    return _AA_CODES[np.searchsorted(_AA_CUM, rng.random(length), side="right")]


@dataclass(frozen=True)
class SyntheticProteinGenerator:
    """Deterministic generator of natural-composition protein sequences.

    Attributes:
        seed: master seed; with the same seed, ``database(n)`` returns a
            prefix-consistent database for every n.
        mean_length: target mean sequence length (residues).
        sigma: sigma of the log-normal length distribution.
        min_length: lengths are clipped below at this value.
    """

    seed: int = 0
    mean_length: float = 314.44
    sigma: float = 0.45
    min_length: int = 30

    def __post_init__(self) -> None:
        if self.mean_length <= self.min_length:
            raise ValueError("mean_length must exceed min_length")
        if not 0 < self.sigma < 2:
            raise ValueError(f"sigma must be in (0, 2), got {self.sigma}")

    def lengths(self, start: int, stop: int) -> np.ndarray:
        """Sequence lengths for indices [start, stop), order-independent.

        Log-normal with mean ``mean_length``: mu = ln(mean) - sigma^2/2.
        Each index draws from its own derived stream, so subsets agree.
        Drawn in one vectorized batch keyed by block, for speed, with
        blocks aligned to absolute indices (block size 8192).
        """
        if not 0 <= start <= stop:
            raise ValueError(f"invalid index range [{start}, {stop})")
        mu = np.log(self.mean_length) - 0.5 * self.sigma**2
        out = np.empty(stop - start, dtype=np.int64)
        block = 8192
        first_block, last_block = start // block, (stop - 1) // block if stop > start else start // block
        for b in range(first_block, last_block + 1):
            rng = make_rng(self.seed, "lengths", b)
            vals = np.maximum(
                np.rint(rng.lognormal(mu, self.sigma, block)).astype(np.int64),
                self.min_length,
            )
            lo = max(start, b * block)
            hi = min(stop, (b + 1) * block)
            out[lo - start : hi - start] = vals[lo - b * block : hi - b * block]
        return out

    def sequence(self, index: int) -> np.ndarray:
        """Encoded residues of sequence ``index`` (deterministic)."""
        length = int(self.lengths(index, index + 1)[0])
        rng = make_rng(self.seed, "residues", index)
        return _sample_residues(rng, length)

    def database(self, n: int, name_prefix: str = "syn") -> ProteinDatabase:
        """Build the first ``n`` sequences as a :class:`ProteinDatabase`."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n == 0:
            return ProteinDatabase.empty()
        lengths = self.lengths(0, n)
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        residues = np.empty(int(offsets[-1]), dtype=np.uint8)
        for i in range(n):
            rng = make_rng(self.seed, "residues", i)
            residues[offsets[i] : offsets[i + 1]] = _sample_residues(rng, int(lengths[i]))
        names = [f"{name_prefix}{i:07d}" for i in range(n)]
        return ProteinDatabase(residues, offsets, names=names)


def generate_database(
    n: int, seed: int = 0, mean_length: float = 314.44, name_prefix: str = "syn"
) -> ProteinDatabase:
    """Convenience wrapper: ``SyntheticProteinGenerator(...).database(n)``."""
    return SyntheticProteinGenerator(seed=seed, mean_length=mean_length).database(
        n, name_prefix
    )


#: Named scale tiers over the paper's Table I microbial size grid
#: ("arbitrary subsets of sizes 1K, 2K, 4K, ... up to 2.65 million").
#: Because sequence ``k`` is identical regardless of the total
#: requested, every tier's databases are literal prefixes of the next
#: tier's — and of the full 2,655,064-sequence Table I set — so scaling
#: experiments across tiers measure size, never content drift.  "full"
#: is the paper's grid at full size; out-of-core runs (the partitioned
#: store) are what make its top end searchable without holding the
#: fragment index resident.
SCALE_TIERS = {
    "smoke": (1_000, 2_000),
    "small": (1_000, 2_000, 4_000, 8_000),
    "medium": (1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000),
    "large": (1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000,
              100_000, 200_000, 400_000, 800_000),
    "full": (1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000,
             100_000, 200_000, 400_000, 800_000, 1_000_000, 2_000_000,
             2_655_064),
}


def scale_tier_sizes(tier: str) -> list:
    """Database sizes (ascending) for a named Table I scale tier."""
    try:
        return list(SCALE_TIERS[tier])
    except KeyError:
        raise KeyError(
            f"unknown scale tier {tier!r}; expected {sorted(SCALE_TIERS)}"
        ) from None


def tier_database(n: int) -> ProteinDatabase:
    """The first ``n`` sequences of the Table I microbial stand-in.

    Prefix-consistent across every ``n`` (and identical to
    ``load_dataset("microbial", n=n)``), so all tier sizes share their
    common prefix byte-for-byte.
    """
    from repro.workloads.datasets import MICROBIAL  # deferred: datasets imports us

    return MICROBIAL.build(n=n)
