"""Figure 1b: candidate counts per spectrum by source class.

The paper's Figure 1b shows "the number of peptide candidates required
to be examined for every experimental spectrum generated from different
source[s] — if the spectrum's protein family or genome source is known
or if it is from an environmental microbial community.  As can be
observed the number of candidates for evaluation rapidly increases as
the unknowns in the source also increases."

We reproduce this by *measuring*, not asserting: each source class maps
to a database scope (a protein family of tens of proteins, one genome of
thousands, a metagenomic community of hundreds of thousands+), we build
each scope synthetically, and count exact candidates per query with the
production candidate generator — optionally with PTMs, which multiply
counts further (the paper's other Figure 1b message).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.candidates.generator import CandidateGenerator
from repro.chem.amino_acids import Modification
from repro.spectra.spectrum import Spectrum
from repro.workloads.synthetic import generate_database

#: source class -> number of proteins in scope (paper's qualitative axis,
#: scaled to laptop-buildable sizes; ratios between classes are what the
#: figure conveys)
SOURCE_CLASSES: Dict[str, int] = {
    "protein_family": 50,
    "single_genome": 4_000,
    "microbial_community": 120_000,
}


@dataclass(frozen=True)
class CandidateCountRow:
    """One bar of Figure 1b."""

    source: str
    num_proteins: int
    mean_candidates: float
    median_candidates: float
    max_candidates: int


def candidate_count_by_source(
    queries: Sequence[Spectrum],
    delta: float = 3.0,
    modifications: Tuple[Modification, ...] = (),
    seed: int = 7,
    class_sizes: Dict[str, int] = SOURCE_CLASSES,
) -> List[CandidateCountRow]:
    """Measure per-query candidate counts at each source-class scope."""
    rows: List[CandidateCountRow] = []
    masses = np.array([q.parent_mass for q in queries])
    for source, n_proteins in class_sizes.items():
        database = generate_database(n_proteins, seed=seed)
        generator = CandidateGenerator(database, delta, modifications)
        if modifications:
            counts = np.array([generator.count(q) for q in queries], dtype=np.int64)
        else:
            counts = generator.count_unmodified_many(masses)
        rows.append(
            CandidateCountRow(
                source=source,
                num_proteins=n_proteins,
                mean_candidates=float(counts.mean()) if len(counts) else 0.0,
                median_candidates=float(np.median(counts)) if len(counts) else 0.0,
                max_candidates=int(counts.max()) if len(counts) else 0,
            )
        )
    return rows
