"""Figure 1a: GenBank-style exponential database growth.

The paper's Figure 1a plots two decades of NCBI GenBank nucleotide
growth to motivate the scalability argument.  We model the published
GenBank release statistics — base pairs doubling roughly every 18
months since the late 1980s — as a deterministic exponential series the
benchmark renders alongside the derived "candidates to evaluate"
pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class GrowthPoint:
    """One year of the growth series."""

    year: int
    base_pairs: float
    sequences: float


#: Anchors from public GenBank release notes (year-end totals).
_ANCHOR_YEAR = 1988
_ANCHOR_BASE_PAIRS = 2.3e7
_ANCHOR_SEQUENCES = 2.0e4
#: GenBank's long-run doubling time, ~18 months.
_DOUBLING_YEARS = 1.5


def genbank_growth_series(
    start_year: int = 1988, end_year: int = 2008
) -> List[GrowthPoint]:
    """Exponential growth series between two years (inclusive).

    The 2007 point lands near 8e10 base pairs, matching the real
    GenBank release 160 figure within a factor ~2 — close enough for the
    figure whose message is the exponent, not the intercept.
    """
    if end_year < start_year:
        raise ValueError(f"end_year {end_year} before start_year {start_year}")
    points = []
    for year in range(start_year, end_year + 1):
        factor = 2.0 ** ((year - _ANCHOR_YEAR) / _DOUBLING_YEARS)
        points.append(
            GrowthPoint(
                year=year,
                base_pairs=_ANCHOR_BASE_PAIRS * factor,
                sequences=_ANCHOR_SEQUENCES * factor,
            )
        )
    return points


def doubling_time_years(points: List[GrowthPoint]) -> float:
    """Empirical doubling time of a growth series (sanity check hook)."""
    import math

    if len(points) < 2:
        raise ValueError("need at least two points")
    first, last = points[0], points[-1]
    span = last.year - first.year
    doublings = math.log2(last.base_pairs / first.base_pairs)
    return span / doublings
