"""Query workload generator: simulated experimental spectra.

Stands in for the paper's "collection of 1,210 human experimental
spectra ... used as queries in all experiments".  Target peptides are
tryptic fragments drawn from a *source* protein set (by default a
human-statistics synthetic database, distinct from the searched
database, mirroring the paper's human-queries-vs-microbial-database
setup), then pushed through the instrument simulator.

A configurable fraction of decoy queries is generated from random
(non-database) peptides, exercising the false-positive side of the
statistical models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.chem.amino_acids import Modification
from repro.chem.digest import cleavage_sites
from repro.chem.protein import ProteinDatabase
from repro.spectra.experimental import SimulatorConfig, SpectrumSimulator
from repro.spectra.spectrum import Spectrum
from repro.utils.rng import make_rng
from repro.workloads.synthetic import SyntheticProteinGenerator, _sample_residues


@dataclass(frozen=True)
class QueryWorkload:
    """Configuration of a query set.

    Attributes:
        num_queries: how many spectra (the paper used 1,210).
        seed: master seed (independent of the database seed).
        source: protein set target peptides are cut from; None builds a
            human-statistics synthetic source.
        source_size: number of source proteins when ``source`` is None.
        min_length / max_length: target peptide length bounds.
        decoy_fraction: fraction of queries whose target peptide is
            random (not derived from any source protein).
        charges: charge states sampled uniformly per query (repeat a
            value to weight it; the default approximates tryptic ESI
            charge distributions, 2+ dominant).
        simulator: instrument noise/dropout model.
    """

    num_queries: int = 1210
    seed: int = 17
    source: Optional[ProteinDatabase] = None
    source_size: int = 500
    min_length: int = 8
    max_length: int = 25
    decoy_fraction: float = 0.0
    charges: Tuple[int, ...] = (1, 2, 2, 3)
    modifications: Tuple[Modification, ...] = ()
    modified_fraction: float = 0.0
    simulator: SimulatorConfig = field(default_factory=SimulatorConfig)

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise ValueError("num_queries must be >= 0")
        if not 0 <= self.decoy_fraction <= 1:
            raise ValueError("decoy_fraction must be in [0, 1]")
        if not 1 <= self.min_length <= self.max_length:
            raise ValueError("need 1 <= min_length <= max_length")
        if not self.charges or any(z < 1 for z in self.charges):
            raise ValueError("charges must be a non-empty tuple of ints >= 1")
        if not 0 <= self.modified_fraction <= 1:
            raise ValueError("modified_fraction must be in [0, 1]")
        if self.modified_fraction > 0 and not self.modifications:
            raise ValueError("modified_fraction > 0 requires modifications")

    def build(self) -> Tuple[List[Spectrum], List[np.ndarray]]:
        """Generate ``(spectra, target_peptides)``.

        ``target_peptides[k]`` is the encoded true peptide behind
        ``spectra[k]`` — ground truth for quality experiments (never
        shown to the search engines).  When ``modified_fraction > 0``,
        that fraction of targets (containing an eligible residue) carries
        one variable PTM: fragment ladder and precursor mass shift, so
        the spectrum is only identifiable by a PTM-aware search.
        """
        source = self.source
        if source is None:
            source = SyntheticProteinGenerator(
                seed=self.seed + 1, mean_length=301.66
            ).database(self.source_size, name_prefix="src")
        sim = SpectrumSimulator(self.simulator, seed=self.seed)
        spectra: List[Spectrum] = []
        peptides: List[np.ndarray] = []
        for qid in range(self.num_queries):
            rng = make_rng(self.seed, "target", qid)
            if rng.random() < self.decoy_fraction:
                length = int(rng.integers(self.min_length, self.max_length + 1))
                pep = _sample_residues(rng, length)
            else:
                pep = self._tryptic_target(source, rng)
            # real instruments observe peptides at a mix of charge states
            # (2+ dominates tryptic peptides; 1+ and 3+ are common)
            charge = int(self.charges[int(rng.integers(0, len(self.charges)))])
            mod_site, mod_delta = -1, 0.0
            if self.modifications and rng.random() < self.modified_fraction:
                mod = self.modifications[int(rng.integers(0, len(self.modifications)))]
                sites = np.nonzero(pep == ord(mod.target))[0]
                if len(sites):
                    mod_site = int(sites[int(rng.integers(0, len(sites)))])
                    mod_delta = mod.delta_mass
            spectra.append(
                sim.simulate(
                    pep, query_id=qid, charge=charge, mod_site=mod_site, mod_delta=mod_delta
                )
            )
            peptides.append(pep)
        return spectra, peptides

    def _tryptic_target(self, source: ProteinDatabase, rng: np.random.Generator) -> np.ndarray:
        """Pick a length-bounded *terminal* tryptic span from the source.

        The paper's candidate rule matches prefixes/suffixes of database
        sequences (Section II.A), so recoverable targets must be terminal
        spans.  We cut at tryptic boundaries: a prefix ending at a
        cleavage site, or a suffix starting after one — i.e. the first or
        last peptide of the protein, with however many missed cleavages
        the length bounds imply.  Such targets are exactly findable by
        the prefix/suffix engines, while a tryptic-only prefilter (the
        X!!Tandem-like baseline) misses those containing more internal
        sites than its missed-cleavage budget — reproducing the paper's
        quality argument.
        """
        for _attempt in range(64):
            idx = int(rng.integers(0, len(source)))
            seq = source.sequence(idx)
            sites = cleavage_sites(seq)
            want_prefix = bool(rng.integers(0, 2))
            if want_prefix:
                lengths = sites + 1  # prefix ends at a site (inclusive)
            else:
                lengths = len(seq) - (sites + 1)  # suffix starts after a site
            ok = lengths[(lengths >= self.min_length) & (lengths <= self.max_length)]
            if len(ok) == 0:
                continue
            length = int(ok[int(rng.integers(0, len(ok)))])
            span = seq[:length] if want_prefix else seq[-length:]
            return span.copy()
        # Degenerate source (no suitable site): fall back to a plain
        # terminal span so workload generation never fails.
        idx = int(rng.integers(0, len(source)))
        seq = source.sequence(idx)
        length = min(len(seq), int(rng.integers(self.min_length, self.max_length + 1)))
        return (seq[:length] if rng.integers(0, 2) else seq[-length:]).copy()


def generate_queries(
    num_queries: int,
    seed: int = 17,
    source: Optional[ProteinDatabase] = None,
    decoy_fraction: float = 0.0,
) -> List[Spectrum]:
    """Convenience wrapper returning spectra only."""
    spectra, _targets = QueryWorkload(
        num_queries=num_queries, seed=seed, source=source, decoy_fraction=decoy_fraction
    ).build()
    return spectra
