"""Workload generators: synthetic databases, query sets, figure data."""

from repro.workloads.synthetic import SyntheticProteinGenerator, generate_database
from repro.workloads.queries import QueryWorkload, generate_queries
from repro.workloads.datasets import (
    DatasetSpec,
    HUMAN,
    MICROBIAL,
    load_dataset,
    microbial_subset_sizes,
)
from repro.workloads.community import (
    Community,
    CommunitySpec,
    build_community,
    community_queries,
)
from repro.workloads.growth import genbank_growth_series
from repro.workloads.candidate_counts import candidate_count_by_source, SOURCE_CLASSES

__all__ = [
    "SyntheticProteinGenerator",
    "generate_database",
    "QueryWorkload",
    "generate_queries",
    "DatasetSpec",
    "HUMAN",
    "MICROBIAL",
    "load_dataset",
    "microbial_subset_sizes",
    "Community",
    "CommunitySpec",
    "build_community",
    "community_queries",
    "genbank_growth_series",
    "candidate_count_by_source",
    "SOURCE_CLASSES",
]
