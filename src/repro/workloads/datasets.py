"""Named datasets: scaled stand-ins for the paper's Table I inputs.

The paper used two GenBank downloads (Table I):

=====================  ==========  ============
statistic              Human       Microbial
=====================  ==========  ============
#protein sequences     88,333      2,655,064
total residues         26,647,093  834,866,454
avg. sequence length   301.66      314.44
=====================  ==========  ============

We reproduce these *statistically* with the synthetic generator and
*geometrically* at a configurable scale factor, because building an
835M-residue database in RAM is possible (~0.8 GB) but every benchmark
over it would dominate CI time.  ``scale=1.0`` gives the paper's full
sizes; the benchmark defaults use ``scale`` chosen per experiment and
record it in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.chem.protein import ProteinDatabase
from repro.constants import (
    PAPER_HUMAN_AVG_LENGTH,
    PAPER_HUMAN_SEQUENCES,
    PAPER_MICROBIAL_AVG_LENGTH,
    PAPER_MICROBIAL_SEQUENCES,
)
from repro.workloads.synthetic import SyntheticProteinGenerator


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset matching a paper input's statistics."""

    name: str
    full_sequences: int
    mean_length: float
    seed: int

    def size_at_scale(self, scale: float) -> int:
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        return max(1, int(round(self.full_sequences * scale)))

    def generator(self) -> SyntheticProteinGenerator:
        return SyntheticProteinGenerator(seed=self.seed, mean_length=self.mean_length)

    def build(self, scale: float = 1.0, n: int = -1) -> ProteinDatabase:
        """Build the dataset at ``scale``, or with an explicit size ``n``."""
        count = n if n >= 0 else self.size_at_scale(scale)
        return self.generator().database(count, name_prefix=self.name[:3])


HUMAN = DatasetSpec(
    name="human",
    full_sequences=PAPER_HUMAN_SEQUENCES,
    mean_length=PAPER_HUMAN_AVG_LENGTH,
    seed=101,
)

MICROBIAL = DatasetSpec(
    name="microbial",
    full_sequences=PAPER_MICROBIAL_SEQUENCES,
    mean_length=PAPER_MICROBIAL_AVG_LENGTH,
    seed=202,
)

_DATASETS = {d.name: d for d in (HUMAN, MICROBIAL)}


def load_dataset(name: str, scale: float = 1.0, n: int = -1) -> ProteinDatabase:
    """Build a named dataset ("human" or "microbial")."""
    try:
        spec = _DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; expected {sorted(_DATASETS)}") from None
    return spec.build(scale=scale, n=n)


def microbial_subset_sizes(max_size: int = PAPER_MICROBIAL_SEQUENCES) -> List[int]:
    """The paper's Table II size grid: 1K, 2K, 4K, ..., capped at max_size.

    The paper extracted "arbitrary subsets of sizes 1K, 2K, 4K, ... up to
    2.65 million", with named rows 100K, 200K, 400K, 800K, 1M, 2M, 2.6M
    after the doubling prefix.
    """
    grid = [1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 100_000, 200_000,
            400_000, 800_000, 1_000_000, 2_000_000, 2_600_000]
    return [g for g in grid if g <= max_size]
