"""Metagenomic community workload.

The paper's motivating frontier is environmental/metagenomic data
(Section I, Figure 1b; the Sorcerer II ocean survey added 17M ORFs in
one 2007 project).  A community sample is not one proteome: it is a
*mixture of organisms* with

* wildly skewed abundances (a few dominant taxa, a long rare tail —
  modeled log-normal, as microbial ecology observes),
* per-organism amino-acid composition biases (GC-content and thermal
  adaptation shift proteome composition between taxa),
* queries drawn from organisms *proportionally to abundance*, including
  organisms missing from the reference database (unsequenced taxa — the
  reason candidate evaluation explodes).

:func:`build_community` produces the reference database (the sequenced
fraction) and a query workload sampled from the full community, with
ground truth labelling which queries are from unsequenced organisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.chem.protein import ProteinDatabase
from repro.spectra.experimental import SimulatorConfig
from repro.spectra.spectrum import Spectrum
from repro.utils.rng import make_rng
from repro.workloads.queries import QueryWorkload
from repro.workloads.synthetic import SyntheticProteinGenerator


@dataclass(frozen=True)
class CommunitySpec:
    """Shape of a synthetic microbial community.

    Attributes:
        num_organisms: taxa in the community.
        proteins_per_organism: mean proteome size per taxon.
        sequenced_fraction: fraction of taxa present in the reference
            database (the rest are "unsequenced" — their peptides have no
            exact database counterpart).
        abundance_sigma: sigma of the log-normal abundance distribution
            (larger = more skew).
        seed: master seed.
    """

    num_organisms: int = 20
    proteins_per_organism: int = 400
    sequenced_fraction: float = 0.7
    abundance_sigma: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_organisms < 1:
            raise ValueError("num_organisms must be >= 1")
        if not 0.0 < self.sequenced_fraction <= 1.0:
            raise ValueError("sequenced_fraction must be in (0, 1]")
        if self.proteins_per_organism < 1:
            raise ValueError("proteins_per_organism must be >= 1")


@dataclass(frozen=True)
class Community:
    """A built community: reference database + per-organism bookkeeping."""

    reference: ProteinDatabase  #: the sequenced fraction (what is searched)
    organisms: List[ProteinDatabase]  #: every taxon's proteome (ground truth)
    abundances: np.ndarray  #: normalized abundance per taxon
    sequenced: np.ndarray  #: bool per taxon: in the reference database?


def build_community(spec: CommunitySpec = CommunitySpec()) -> Community:
    """Generate the community and its (partial) reference database."""
    rng = make_rng(spec.seed, "community")
    abundances = rng.lognormal(0.0, spec.abundance_sigma, spec.num_organisms)
    abundances = abundances / abundances.sum()
    n_sequenced = max(1, int(round(spec.num_organisms * spec.sequenced_fraction)))
    # the most abundant taxa are the ones most likely to have been
    # sequenced — pick the reference set by abundance rank
    order = np.argsort(-abundances)
    sequenced = np.zeros(spec.num_organisms, dtype=bool)
    sequenced[order[:n_sequenced]] = True

    organisms: List[ProteinDatabase] = []
    for taxon in range(spec.num_organisms):
        taxon_rng = make_rng(spec.seed, "taxon", taxon)
        size = max(10, int(taxon_rng.normal(spec.proteins_per_organism,
                                            spec.proteins_per_organism * 0.2)))
        generator = SyntheticProteinGenerator(
            seed=int(taxon_rng.integers(0, 2**31)),
            mean_length=float(taxon_rng.uniform(280.0, 350.0)),
        )
        organisms.append(generator.database(size, name_prefix=f"t{taxon:02d}_"))

    # rebuild global ids so reference sequences are unique across taxa
    reference_parts = []
    next_id = 0
    for taxon, proteome in enumerate(organisms):
        if sequenced[taxon]:
            ids = np.arange(next_id, next_id + len(proteome), dtype=np.int64)
            reference_parts.append(
                ProteinDatabase(proteome.residues, proteome.offsets, ids)
            )
        next_id += len(proteome)
    reference = ProteinDatabase.concat(reference_parts)
    return Community(reference, organisms, abundances, sequenced)


def community_queries(
    community: Community,
    num_queries: int,
    seed: int = 1,
    simulator: SimulatorConfig = SimulatorConfig(),
) -> Tuple[List[Spectrum], List[np.ndarray], np.ndarray]:
    """Sample queries from the community by abundance.

    Returns ``(spectra, target_peptides, from_sequenced)`` where
    ``from_sequenced[k]`` says whether query k's organism is in the
    reference database (identifiable) or not (the metagenomic dark
    matter that inflates candidate evaluation without yielding hits).
    """
    rng = make_rng(seed, "community_queries")
    spectra: List[Spectrum] = []
    targets: List[np.ndarray] = []
    from_sequenced = np.zeros(num_queries, dtype=bool)
    cumulative = np.cumsum(community.abundances)
    for qid in range(num_queries):
        taxon = int(np.searchsorted(cumulative, rng.random()))
        taxon = min(taxon, len(community.organisms) - 1)
        from_sequenced[qid] = bool(community.sequenced[taxon])
        workload = QueryWorkload(
            num_queries=1,
            seed=int(make_rng(seed, "q", qid).integers(0, 2**31)),
            source=community.organisms[taxon],
            simulator=simulator,
        )
        one_spectrum, one_target = workload.build()
        # renumber to the global query id
        s = one_spectrum[0]
        spectra.append(Spectrum(s.mz, s.intensity, s.precursor_mz, s.charge, qid))
        targets.append(one_target[0])
    return spectra, targets, from_sequenced
