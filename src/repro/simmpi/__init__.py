"""simmpi: a deterministic simulated distributed-memory machine.

The paper's experiments ran C/MPI on a 24-node gigabit-ethernet cluster
with up to 128 MPI processes and 1 GB RAM per process.  Offline and on a
laptop we reproduce that *machine* rather than require it: rank programs
are written against an mpi4py-flavoured API (:class:`SimComm`) and run as
coroutines under a discrete-event scheduler (:class:`SimCluster`) that
maintains a virtual clock, a latency/bandwidth network model, one-sided
RMA windows, rendezvous collectives, and per-rank memory accounting.

What is *real* in a simulated run: every byte of application data, every
candidate generated, every score computed, every hit reported — results
are bitwise products of real execution.  What is *modeled*: time.
Computation charges virtual seconds through a calibrated cost model and
communication charges the LogGP-style network, which is how a single
laptop process reports 128-rank timings deterministically.

Approximations (documented, deliberate):

* Transfers resolve eagerly at issue time in scheduler order; since the
  scheduler always advances the lowest-clock runnable rank, causality
  errors are bounded by one run burst and vanish for the bulk-synchronous
  patterns the paper's algorithms use.
* NIC contention serializes transfers per endpoint (store-and-forward);
  no switch topology is modeled.
"""

from repro.simmpi.network import NetworkModel
from repro.simmpi.memory import MemoryTracker
from repro.simmpi.request import SimRequest
from repro.simmpi.comm import SimComm
from repro.simmpi.scheduler import SimCluster, ClusterConfig, RankOutcome
from repro.simmpi.trace import RankTrace, TraceSummary

__all__ = [
    "NetworkModel",
    "MemoryTracker",
    "SimRequest",
    "SimComm",
    "SimCluster",
    "ClusterConfig",
    "RankOutcome",
    "RankTrace",
    "TraceSummary",
]
