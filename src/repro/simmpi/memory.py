"""Per-rank memory accounting.

The paper's space claims are the heart of its contribution: the
master-worker baseline stores the whole database per rank (O(N)) and
"resorts to swap space or crashes out of memory" past ~1.27 M sequences
at 1 GB/rank, while Algorithms A and B keep three O(N/p) buffers each.
:class:`MemoryTracker` enforces a configurable per-rank cap so those
claims are *testable*: the baseline really does raise
:class:`~repro.errors.OutOfMemoryError` where the paper says it dies,
and a property test asserts A/B peak usage stays within the O((N+m)/p)
bound.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import OutOfMemoryError


class MemoryTracker:
    """Tracks labelled allocations for one simulated rank."""

    __slots__ = ("rank", "limit", "in_use", "peak", "_allocations")

    def __init__(self, rank: int, limit: int):
        if limit <= 0:
            raise ValueError(f"memory limit must be > 0, got {limit}")
        self.rank = rank
        self.limit = limit
        self.in_use = 0
        self.peak = 0
        self._allocations: Dict[str, int] = {}

    def alloc(self, label: str, nbytes: int) -> None:
        """Record an allocation; raises OutOfMemoryError past the cap.

        Re-allocating an existing label replaces it (the paper's Drecv
        and Dcomp buffers are "over-written at every iteration").
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        previous = self._allocations.get(label, 0)
        new_total = self.in_use - previous + nbytes
        if new_total > self.limit:
            raise OutOfMemoryError(self.rank, nbytes, self.in_use - previous, self.limit)
        self._allocations[label] = nbytes
        self.in_use = new_total
        if new_total > self.peak:
            self.peak = new_total

    def free(self, label: str) -> None:
        """Release a labelled allocation (missing label is an error)."""
        nbytes = self._allocations.pop(label, None)
        if nbytes is None:
            raise KeyError(f"rank {self.rank}: no allocation labelled {label!r}")
        self.in_use -= nbytes

    def usage(self, label: str) -> int:
        return self._allocations.get(label, 0)

    def labels(self) -> Dict[str, int]:
        return dict(self._allocations)
