"""Non-blocking operation handles.

Mirrors the mpi4py Request idiom (``req = comm.isend(...); req.wait()``)
for the one operation the paper leans on: the non-blocking one-sided
``MPI_Get`` that prefetches the next database shard while the current one
is being scored (Algorithms A and B, "the non-blocking request ... is for
masking communication with computation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class SimRequest:
    """Handle for an in-flight one-sided transfer.

    Attributes:
        origin: issuing rank.
        target: rank whose window is being read.
        window: window name on the target.
        nbytes: transfer volume charged to the network.
        issue_time: origin's virtual clock when the Get was posted.
        completion_time: virtual time the data is fully landed at the
            origin (resolved eagerly at issue; see package docstring).
        payload: the transferred object, available after completion.
    """

    origin: int
    target: int
    window: str
    nbytes: int
    issue_time: float
    completion_time: float
    payload: Any = field(default=None, repr=False)
    completed: bool = False

    def test(self, now: float) -> bool:
        """mpi4py-style Request.test: has the transfer landed by ``now``?"""
        return now >= self.completion_time
