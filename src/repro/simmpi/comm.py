"""SimComm: the rank-facing communication API.

Rank programs are generator functions taking a :class:`SimComm`.  The
API mirrors mpi4py's split between *immediate* calls (plain method
calls: ``compute``, ``iget``, ``wait``, ``send``, memory management) and
*rendezvous* calls, which must be yielded so the scheduler can
coordinate ranks::

    def program(comm: SimComm):
        comm.alloc("Di", shard.nbytes)
        comm.expose("Di", shard, shard.nbytes)
        yield comm.barrier_op()                      # all windows exposed
        req = comm.iget(target, "Di")                # non-blocking MPI_Get
        comm.compute(cost_model.score_time(...))     # masks the transfer
        remote = comm.wait(req)                      # residual comm, if any
        total = yield comm.allreduce_op(x, "sum")
        return hits                                  # collected by the cluster

Only ``recv_op`` and the collectives are yields; one-sided transfers
resolve eagerly at issue (see the package docstring for the causality
argument), so ``wait`` is a plain call that merely advances the local
clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CommunicationError
from repro.simmpi.memory import MemoryTracker
from repro.simmpi.request import SimRequest
from repro.simmpi.trace import RankTrace


#: wildcard source for recv_op, mirroring MPI.ANY_SOURCE
ANY_SOURCE: int = -1


@dataclass(frozen=True)
class RecvOp:
    """Yielded to block until a message from ``source`` (or any) arrives."""

    rank: int
    source: int  # ANY_SOURCE for wildcard
    tag: int


@dataclass(frozen=True)
class CollectiveOp:
    """Yielded to enter a rendezvous collective.

    ``instance`` is the per-rank collective sequence number; the
    scheduler asserts every rank's n-th collective has the same ``kind``,
    catching mismatched-collective bugs the way a real MPI would hang.
    """

    rank: int
    kind: str  # "barrier" | "allreduce" | "alltoallv" | "bcast" | "gather"
    instance: int
    payload: Any
    nbytes: int
    op: Optional[str] = None  # reduce operator for allreduce
    root: int = 0  # for bcast/gather


_REDUCE_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
}


class SimComm:
    """Per-rank communicator handle.

    Created by :class:`~repro.simmpi.scheduler.SimCluster`; rank programs
    receive one and must not share it across ranks.
    """

    def __init__(self, rank: int, size: int, cluster: "Any"):
        self.rank = rank
        self.size = size
        self._cluster = cluster
        self.clock = 0.0
        self.memory: MemoryTracker = cluster.memory[rank]
        self.trace: RankTrace = cluster.traces[rank]
        self._collective_counter = 0
        #: consistent failure snapshot — ordered tuple of crashed ranks,
        #: stamped by the scheduler at every collective release so all
        #: survivors of a rendezvous agree on who has failed.
        self.sync_failures: Tuple[int, ...] = ()

    # -- local time ------------------------------------------------------

    def compute(self, seconds: float, detail: str = "") -> None:
        """Advance the local clock by modeled computation time.

        On a heterogeneous machine (``ClusterConfig.rank_speeds``) the
        nominal time is divided by this rank's speed factor.
        """
        if seconds < 0:
            raise ValueError(f"compute time must be >= 0, got {seconds}")
        seconds = seconds / self._cluster.effective_speed(self.rank, self.clock)
        self.trace.add("compute", self.clock, seconds, detail)
        self.clock += seconds

    def index_build(self, seconds: float, detail: str = "") -> None:
        """Like :meth:`compute`, but traced as ``index`` — the one-time
        fragment-ion index construction, kept out of query-processing
        compute so residual-communication metrics are unaffected."""
        if seconds < 0:
            raise ValueError(f"index build time must be >= 0, got {seconds}")
        seconds = seconds / self._cluster.effective_speed(self.rank, self.clock)
        self.trace.add("index", self.clock, seconds, detail)
        self.clock += seconds

    def sweep_setup(self, seconds: float, detail: str = "") -> None:
        """Like :meth:`compute`, but traced as ``sweep`` — the
        candidate-major path's per-query/per-cohort bookkeeping, kept
        separate so summaries show the amortized setup directly."""
        if seconds < 0:
            raise ValueError(f"sweep setup time must be >= 0, got {seconds}")
        seconds = seconds / self._cluster.effective_speed(self.rank, self.clock)
        self.trace.add("sweep", self.clock, seconds, detail)
        self.clock += seconds

    # -- fault tolerance ---------------------------------------------------

    @property
    def fault_tolerant(self) -> bool:
        """True when the machine runs under a fault plan; rank programs
        use this to decide whether to run their recovery protocol."""
        return self._cluster.config.fault_plan is not None

    def recovery_compute(self, seconds: float, detail: str = "") -> None:
        """Like :meth:`compute`, but traced as ``recovery`` so fault-free
        metrics (residual-to-compute, masking) stay untouched."""
        if seconds < 0:
            raise ValueError(f"recovery time must be >= 0, got {seconds}")
        seconds = seconds / self._cluster.effective_speed(self.rank, self.clock)
        self.trace.add("recovery", self.clock, seconds, detail)
        self.clock += seconds

    def recovery_fetch(self, owner: int, nbytes: int, detail: str = "") -> None:
        """Re-fetch a lost shard's bytes from a surviving holder.

        ``owner`` is the rank that *owned* the data; the scheduler
        charges the wire time from the deterministic surviving holder
        (see ``SimCluster.charge_recovery_fetch``) and the elapsed time
        is traced as ``recovery``.
        """
        if not 0 <= owner < self.size:
            raise CommunicationError(f"recovery owner {owner} out of range 0..{self.size - 1}")
        end = self._cluster.charge_recovery_fetch(self.rank, owner, nbytes, self.clock)
        if end > self.clock:
            self.trace.add("recovery", self.clock, end - self.clock, detail or f"refetch D{owner}")
            self.clock = end

    def salvage_window(self, owner: int, window: str) -> Any:
        """Read ``owner``'s window payload even if ``owner`` has failed.

        Recovery-only companion to :meth:`recovery_fetch` (which charges
        the wire time): the payload physically survives on the ring
        successor that fetched it last.
        """
        return self._cluster.salvage_window(owner, window)

    # -- memory ------------------------------------------------------------

    def alloc(self, label: str, nbytes: int) -> None:
        """Charge ``nbytes`` against this rank's RAM cap under ``label``."""
        self.memory.alloc(label, nbytes)

    def free(self, label: str) -> None:
        self.memory.free(label)

    # -- one-sided RMA -----------------------------------------------------

    def expose(self, name: str, payload: Any, nbytes: int) -> None:
        """Publish an immutable buffer other ranks may Get.

        Exposure is instantaneous in virtual time; programs must still
        synchronize (barrier) before peers may Get, as with MPI_Win_fence.
        """
        self._cluster.expose_window(self.rank, name, payload, nbytes)

    def unexpose(self, name: str) -> None:
        self._cluster.unexpose_window(self.rank, name)

    def iget(self, target: int, window: str) -> SimRequest:
        """Post a non-blocking one-sided Get of ``target``'s window.

        Returns immediately; the transfer proceeds "without disturbing
        the remote processor" (paper Section II.B).  Call :meth:`wait`
        (or poll ``req.test``) before touching the payload.
        """
        if not 0 <= target < self.size:
            raise CommunicationError(f"iget target {target} out of range 0..{self.size - 1}")
        return self._cluster.issue_get(self.rank, target, window, self.clock)

    def get_local(self, window: str) -> Any:
        """Read own window without network cost (target == origin)."""
        return self._cluster.read_window(self.rank, window)

    def wait(self, request: SimRequest) -> Any:
        """Block until a Get lands; records residual communication."""
        if request.origin != self.rank:
            raise CommunicationError(
                f"rank {self.rank} waiting on rank {request.origin}'s request"
            )
        if request.completion_time > self.clock:
            self.trace.add(
                "wait", self.clock, request.completion_time - self.clock, request.window
            )
            self.clock = request.completion_time
        request.completed = True
        return request.payload

    # -- point-to-point -----------------------------------------------------

    def send(self, dest: int, payload: Any, nbytes: int, tag: int = 0) -> None:
        """Eager send; the local clock advances by the sender overhead only."""
        if not 0 <= dest < self.size:
            raise CommunicationError(f"send dest {dest} out of range 0..{self.size - 1}")
        self._cluster.post_send(self.rank, dest, payload, nbytes, tag, self.clock)

    def recv_op(self, source: int = ANY_SOURCE, tag: int = 0) -> RecvOp:
        """Descriptor to yield; resumes with ``(source, payload)``."""
        return RecvOp(self.rank, source, tag)

    # -- collectives ---------------------------------------------------------

    def _next_collective(self, kind: str, payload: Any, nbytes: int, **kw: Any) -> CollectiveOp:
        op = CollectiveOp(
            rank=self.rank,
            kind=kind,
            instance=self._collective_counter,
            payload=payload,
            nbytes=nbytes,
            **kw,
        )
        self._collective_counter += 1
        return op

    def barrier_op(self) -> CollectiveOp:
        return self._next_collective("barrier", None, 0)

    def rendezvous_op(self) -> CollectiveOp:
        """A barrier whose blocked time is traced as *residual communication*.

        Used by the rotation algorithms to model software one-sided
        progress (see :class:`~repro.simmpi.network.NetworkModel`): the
        time a rank spends here is time it waited on peers' data
        engagement, i.e. the paper's residual communication, not
        collective algorithm cost.
        """
        return self._next_collective("rendezvous", None, 0)

    @property
    def network(self):
        """The machine's network model (for algorithm-level decisions)."""
        return self._cluster.config.network

    def allreduce_op(self, value: Any, op: str = "sum", nbytes: Optional[int] = None) -> CollectiveOp:
        """MPI_Allreduce descriptor (paper: global m/z max and count array)."""
        if op not in _REDUCE_OPS:
            raise CommunicationError(f"unknown reduce op {op!r}; expected {sorted(_REDUCE_OPS)}")
        if nbytes is None:
            nbytes = _payload_nbytes(value)
        return self._next_collective("allreduce", value, nbytes, op=op)

    def alltoallv_op(self, payloads: Sequence[Tuple[Any, int]]) -> CollectiveOp:
        """MPI_Alltoallv descriptor: one ``(payload, nbytes)`` per destination.

        Resumes with the list of ``p`` payloads received (one per source,
        in rank order).  Used by Algorithm B's parallel counting sort to
        redistribute database sequences.
        """
        if len(payloads) != self.size:
            raise CommunicationError(
                f"alltoallv needs {self.size} payloads, got {len(payloads)}"
            )
        total = sum(int(n) for _p, n in payloads)
        return self._next_collective("alltoallv", list(payloads), total)

    def bcast_op(self, value: Any = None, root: int = 0, nbytes: Optional[int] = None) -> CollectiveOp:
        if nbytes is None:
            nbytes = _payload_nbytes(value) if self.rank == root else 0
        return self._next_collective("bcast", value, nbytes, root=root)

    def gather_op(self, value: Any, root: int = 0, nbytes: Optional[int] = None) -> CollectiveOp:
        """Gather to root; resumes with the list of values at root, None elsewhere."""
        if nbytes is None:
            nbytes = _payload_nbytes(value)
        return self._next_collective("gather", value, nbytes, root=root)


def _payload_nbytes(value: Any) -> int:
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if hasattr(value, "nbytes"):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, (list, tuple)):
        return sum(_payload_nbytes(v) for v in value)
    return 64  # opaque object: charge a nominal header


def reduce_values(values: List[Any], op: str) -> Any:
    """Apply a named reduction across per-rank values (rank order)."""
    fn = _REDUCE_OPS[op]
    result = values[0]
    for v in values[1:]:
        result = fn(result, v)
    return result
