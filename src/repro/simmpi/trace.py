"""Per-rank timeline accounting.

The paper's key measured quantity beyond run-time is *residual
communication*: "the time spent by the code waiting for the next batch of
data, ... equal to the total communication time minus its portion masked
by computation" (Section III).  The trace records exactly the categories
needed to reproduce that analysis:

* ``compute`` — virtual seconds spent in modeled computation;
* ``wait`` — virtual seconds a rank sat blocked for data that had not
  landed (this *is* residual communication);
* ``comm_issued`` — total wire time of transfers the rank originated
  (masked or not), so masking effectiveness = 1 - wait/comm_issued;
* ``collective`` — time inside barriers/allreduce/alltoallv, kept
  separate because Algorithm B's sorting overhead lives here.
* ``recovery`` — time spent re-fetching lost shards, reloading orphaned
  query blocks and rescoring them after a rank failure.  Kept separate
  from ``compute``/``wait`` so fault-free metrics (residual-to-compute,
  masking effectiveness) are untouched by recovery work, and so the cost
  of surviving a fault plan is directly visible in the summary.
* ``index`` — one-time fragment-ion index construction per shard.
  Separate from ``compute`` for the same reason as ``recovery``: the
  build is an amortized setup cost, and folding it into query-processing
  compute would distort residual-communication ratios.
* ``sweep`` — candidate-major sweep setup (query sorting, vectorized
  window bounds, cohort probes).  Kept out of ``compute`` so the sweep's
  amortized bookkeeping is directly visible in summaries and does not
  shift residual-communication ratios relative to per-query runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class RankFailure:
    """One fail-stop rank crash, as it materialized during the run."""

    rank: int
    time: float


@dataclass
class RankTrace:
    """Accumulated virtual-time categories for one rank."""

    rank: int
    compute: float = 0.0
    wait: float = 0.0
    comm_issued: float = 0.0
    collective: float = 0.0
    recovery: float = 0.0
    index_build: float = 0.0
    sweep: float = 0.0
    events: List[tuple] = field(default_factory=list, repr=False)
    record_events: bool = False

    def add(self, category: str, start: float, duration: float, detail: str = "") -> None:
        if duration < 0:
            raise ValueError(f"negative duration {duration} for {category}")
        if category == "compute":
            self.compute += duration
        elif category == "wait":
            self.wait += duration
        elif category == "collective":
            self.collective += duration
        elif category == "comm_issued":
            self.comm_issued += duration
        elif category == "recovery":
            self.recovery += duration
        elif category == "index":
            self.index_build += duration
        elif category == "sweep":
            self.sweep += duration
        else:
            raise ValueError(f"unknown trace category {category!r}")
        if self.record_events and duration > 0:
            self.events.append((category, start, duration, detail))

    @property
    def residual_communication(self) -> float:
        """The paper's residual communication: unmasked wait time."""
        return self.wait

    @property
    def residual_to_compute_ratio(self) -> float:
        return self.wait / self.compute if self.compute > 0 else 0.0


@dataclass(frozen=True)
class TraceSummary:
    """Machine-wide aggregates over all rank traces.

    The fault-tolerance fields default to "nothing went wrong" so
    fault-free callers and serialized summaries are unchanged:
    ``failures`` lists crashes in the order they materialized,
    ``total_recovery`` sums the survivors' recovery-category time, and
    ``transfer_retries`` counts transient transfer failures charged by
    the fault plan.
    """

    makespan: float
    total_compute: float
    total_wait: float
    total_collective: float
    total_comm_issued: float
    per_rank: Dict[int, RankTrace]
    total_recovery: float = 0.0
    failures: Tuple[RankFailure, ...] = ()
    transfer_retries: int = 0
    recovery_fetches: int = 0
    total_index_build: float = 0.0
    total_sweep: float = 0.0

    @classmethod
    def from_traces(
        cls,
        traces: Dict[int, RankTrace],
        makespan: float,
        failures: Tuple[RankFailure, ...] = (),
        transfer_retries: int = 0,
        recovery_fetches: int = 0,
    ) -> "TraceSummary":
        return cls(
            makespan=makespan,
            total_compute=sum(t.compute for t in traces.values()),
            total_wait=sum(t.wait for t in traces.values()),
            total_collective=sum(t.collective for t in traces.values()),
            total_comm_issued=sum(t.comm_issued for t in traces.values()),
            per_rank=traces,
            total_recovery=sum(t.recovery for t in traces.values()),
            failures=tuple(failures),
            transfer_retries=transfer_retries,
            recovery_fetches=recovery_fetches,
            total_index_build=sum(t.index_build for t in traces.values()),
            total_sweep=sum(t.sweep for t in traces.values()),
        )

    @property
    def failed_ranks(self) -> Tuple[int, ...]:
        """Ranks that crashed, in failure order."""
        return tuple(f.rank for f in self.failures)

    @property
    def mean_residual_to_compute(self) -> float:
        """Mean over ranks of wait/compute — the paper's 0.36 +/- 0.11 metric."""
        ratios = [t.residual_to_compute_ratio for t in self.per_rank.values() if t.compute > 0]
        return sum(ratios) / len(ratios) if ratios else 0.0

    @property
    def masking_effectiveness(self) -> float:
        """Fraction of issued wire time hidden behind computation (0..1)."""
        if self.total_comm_issued <= 0:
            return 1.0
        return max(0.0, 1.0 - self.total_wait / self.total_comm_issued)
