"""The discrete-event scheduler driving simulated rank programs.

:class:`SimCluster` owns the machine state: per-rank virtual clocks
(inside each :class:`~repro.simmpi.comm.SimComm`), RMA windows, NIC
availability, mailboxes, in-flight collectives, memory trackers and
traces.  Rank programs are generators; the scheduler repeatedly advances
the runnable rank with the smallest virtual clock (ties broken by rank
id), which both guarantees determinism and keeps message causality
conservative (a rank never consumes a message that an earlier-in-time
rank could still have preceded).

Fault model (``ClusterConfig.fault_plan``): the machine can be run
against a declarative :class:`~repro.faults.plan.FaultPlan` describing
rank crashes, stragglers, NIC degradation and transient transfer
failures.  Crashes are *fail-stop at synchronization granularity*: a
rank whose crash time has passed dies the next time the scheduler would
advance it, or inside a collective whose release time reaches its crash
time — so a rank never acts after its planned death, and a rank that
returned its results before the crash time completed legitimately.
Surviving ranks observe failures two ways: an immediate typed
:class:`~repro.errors.RankFailedError` when they touch a dead peer's
window, and a consistent snapshot (``SimComm.sync_failures``) stamped at
every collective release, which recovery protocols use to agree on who
adopts a dead rank's work.  Fault injection is seeded and consumed in
deterministic scheduler order, so a given plan always produces the same
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.constants import PAPER_RAM_PER_RANK_BYTES
from repro.errors import CommunicationError, DeadlockError, RankFailedError
from repro.faults.plan import FaultPlan, TransientFaultState
from repro.simmpi.comm import (
    ANY_SOURCE,
    CollectiveOp,
    RecvOp,
    SimComm,
    reduce_values,
)
from repro.simmpi.memory import MemoryTracker
from repro.simmpi.network import NetworkModel
from repro.simmpi.nic import NicTimeline, reserve_transfer
from repro.simmpi.request import SimRequest
from repro.simmpi.trace import RankFailure, RankTrace, TraceSummary

RankProgram = Callable[[SimComm], Generator[Any, Any, Any]]

_READY = "ready"
_BLOCKED_RECV = "blocked_recv"
_BLOCKED_COLL = "blocked_coll"
_DONE = "done"
_FAILED = "failed"


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and physics of the simulated machine.

    Defaults mirror the paper's testbed: 1 GB RAM per MPI process over
    gigabit ethernet.

    ``rank_speeds`` models a *heterogeneous* cluster: entry r scales rank
    r's compute throughput (1.0 = nominal, 0.5 = half speed).  The
    paper's testbed was homogeneous; heterogeneity is the regime where
    the master-worker baseline's dynamic balancing beats Algorithm A's
    static split (see tests/integration/test_heterogeneous.py).

    ``fault_plan`` injects failures (crashes, stragglers, NIC
    degradation, transient transfer faults) into the run; ``None`` (the
    default) is the perfect machine every pre-existing experiment runs
    on.
    """

    num_ranks: int
    ram_per_rank: int = PAPER_RAM_PER_RANK_BYTES
    network: NetworkModel = field(default_factory=NetworkModel)
    record_events: bool = False
    rank_speeds: Optional[Tuple[float, ...]] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {self.num_ranks}")
        if self.rank_speeds is not None:
            if len(self.rank_speeds) != self.num_ranks:
                raise ValueError(
                    f"rank_speeds has {len(self.rank_speeds)} entries for "
                    f"{self.num_ranks} ranks"
                )
            if any(s <= 0 for s in self.rank_speeds):
                raise ValueError("rank_speeds must be positive")
        if self.fault_plan is not None:
            self.fault_plan.validate_for(self.num_ranks)

    def speed_of(self, rank: int) -> float:
        return self.rank_speeds[rank] if self.rank_speeds is not None else 1.0


@dataclass
class RankOutcome:
    """What one rank produced: its return value and final clock."""

    rank: int
    value: Any
    finish_time: float


@dataclass
class _Message:
    arrival: float
    seq: int
    source: int
    tag: int
    payload: Any


@dataclass
class _PendingCollective:
    kind: str
    arrivals: Dict[int, Tuple[float, CollectiveOp]] = field(default_factory=dict)


class SimCluster:
    """A simulated distributed-memory machine run."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        p = config.num_ranks
        self.memory: Dict[int, MemoryTracker] = {
            r: MemoryTracker(r, config.ram_per_rank) for r in range(p)
        }
        self.traces: Dict[int, RankTrace] = {
            r: RankTrace(r, record_events=config.record_events) for r in range(p)
        }
        self._comms = [SimComm(r, p, self) for r in range(p)]
        self._windows: Dict[Tuple[int, str], Tuple[Any, int]] = {}
        self._nics: List[NicTimeline] = [NicTimeline() for _ in range(p)]
        self._mailboxes: Dict[int, List[_Message]] = {r: [] for r in range(p)}
        self._send_seq = 0
        self._collectives: Dict[int, _PendingCollective] = {}
        self._recv_filter: Dict[int, Tuple[int, int]] = {}
        # -- fault bookkeeping ------------------------------------------
        plan = config.fault_plan
        self._dead: set = set()
        self.failure_log: List[RankFailure] = []
        self.transfer_retries = 0
        self.recovery_fetches = 0
        self._crash_times: Dict[int, float] = {}
        self._transient: Optional[TransientFaultState] = None
        if plan is not None:
            self._crash_times = {
                r: t for r in range(p) if (t := plan.crash_time(r)) is not None
            }
            if plan.transient is not None and plan.transient.probability > 0:
                self._transient = TransientFaultState(plan.transient)
        # populated for the duration of run()
        self._gens: List[Generator] = []
        self._state: List[str] = []
        self._inject: List[Any] = []

    # ------------------------------------------------------------------
    # machine services called by SimComm
    # ------------------------------------------------------------------

    def effective_speed(self, rank: int, now: float) -> float:
        """Compute throughput of ``rank`` at virtual time ``now``."""
        speed = self.config.speed_of(rank)
        if self.config.fault_plan is not None:
            speed *= self.config.fault_plan.speed_factor(rank, now)
        return speed

    def _transfer_window(
        self, origin: int, target: int, nbytes: int, now: float
    ) -> Tuple[float, float, float]:
        """Reserve a transfer; returns ``(start, end, occupied_wire_time)``.

        Applies the fault plan's NIC degradation (both endpoints; the
        slower one bounds the transfer) and transient transfer failures
        (each failed attempt delays completion by a wasted wire pass
        plus the retransmit penalty).
        """
        net = self.config.network
        wire = net.byte_cost * nbytes
        stretch = 1.0
        plan = self.config.fault_plan
        if plan is not None:
            factor = min(
                plan.bandwidth_factor(origin, now), plan.bandwidth_factor(target, now)
            )
            if factor < 1.0:
                stretch = 1.0 / factor
        start = reserve_transfer(
            self._nics[origin], self._nics[target], now, wire, stretch
        )
        occupied = wire * stretch
        end = start + occupied + net.latency
        if self._transient is not None:
            failures = self._transient.failures_for_next_transfer()
            if failures:
                self.transfer_retries += failures
                end += failures * net.failed_attempt_time(
                    occupied, self._transient.spec.penalty
                )
        return start, end, occupied

    def expose_window(self, rank: int, name: str, payload: Any, nbytes: int) -> None:
        key = (rank, name)
        if key in self._windows:
            raise CommunicationError(f"rank {rank} window {name!r} already exposed")
        self._windows[key] = (payload, int(nbytes))

    def unexpose_window(self, rank: int, name: str) -> None:
        if self._windows.pop((rank, name), None) is None:
            raise CommunicationError(f"rank {rank} window {name!r} not exposed")

    def read_window(self, rank: int, name: str) -> Any:
        if rank in self._dead:
            raise RankFailedError(rank, f"window {name!r}@{rank}: rank has failed")
        try:
            return self._windows[(rank, name)][0]
        except KeyError:
            raise CommunicationError(f"rank {rank} window {name!r} not exposed") from None

    def salvage_window(self, rank: int, name: str) -> Any:
        """Read a window payload regardless of owner liveness.

        Recovery-only: models reading the copy of a dead rank's shard
        that a surviving rank still holds from the rotation.  Callers
        must charge the transfer separately (``SimComm.recovery_fetch``).
        """
        try:
            return self._windows[(rank, name)][0]
        except KeyError:
            raise CommunicationError(
                f"salvage: rank {rank} window {name!r} was never exposed"
            ) from None

    def issue_get(self, origin: int, target: int, window: str, now: float) -> SimRequest:
        if target in self._dead:
            raise RankFailedError(
                target, f"iget {window!r}@{target}: target rank has failed"
            )
        try:
            payload, nbytes = self._windows[(target, window)]
        except KeyError:
            raise CommunicationError(
                f"iget: rank {target} has no exposed window {window!r}"
            ) from None
        if origin == target:
            # local read: no wire, immediate completion
            return SimRequest(origin, target, window, 0, now, now, payload)
        start, end, occupied = self._transfer_window(origin, target, nbytes, now)
        net = self.config.network
        self.traces[origin].add(
            "comm_issued", start, occupied + net.latency, f"get {window}@{target}"
        )
        return SimRequest(origin, target, window, nbytes, now, end, payload)

    def post_send(
        self, source: int, dest: int, payload: Any, nbytes: int, tag: int, now: float
    ) -> None:
        net = self.config.network
        if dest == source:
            arrival = now
        else:
            start, arrival, occupied = self._transfer_window(source, dest, nbytes, now)
            self.traces[source].add(
                "comm_issued", start, occupied + net.latency, f"send->{dest}"
            )
        self._send_seq += 1
        self._mailboxes[dest].append(_Message(arrival, self._send_seq, source, tag, payload))

    def charge_recovery_fetch(
        self, origin: int, source: int, nbytes: int, now: float
    ) -> float:
        """Charge re-fetching rank ``source``'s shard from a surviving holder.

        The holder is deterministic: the first alive rank scanning the
        ring from ``source`` (the owner itself when alive — the normal
        re-fetch path; after a crash, its ring successor, which under the
        rotation schedule held the shard most recently).  When the
        holder *is* the origin, the copy is local and costs nothing.
        Returns the virtual completion time; the caller traces it.
        """
        self.recovery_fetches += 1
        p = self.config.num_ranks
        holder = source
        for k in range(p):
            candidate = (source + k) % p
            if candidate not in self._dead:
                holder = candidate
                break
        else:  # pragma: no cover - validate_for keeps one rank alive
            raise RankFailedError(source, "no surviving holder for recovery fetch")
        if holder == origin:
            return now
        _start, end, _occupied = self._transfer_window(origin, holder, nbytes, now)
        return end

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def run(
        self,
        program: RankProgram,
        args: Optional[Dict[int, tuple]] = None,
    ) -> Tuple[List[RankOutcome], TraceSummary]:
        """Run ``program(comm, *args[rank])`` on every rank to completion.

        Returns per-rank outcomes (in rank order, crashed ranks omitted)
        and the trace summary.  Any exception raised inside a rank
        program propagates to the caller (with rank context), mirroring
        an MPI abort.
        """
        p = self.config.num_ranks
        gens: List[Generator] = []
        for r in range(p):
            extra = args.get(r, ()) if args else ()
            gens.append(program(self._comms[r], *extra))

        state = [_READY] * p
        inject: List[Any] = [None] * p  # value to send into the generator
        outcomes: List[Optional[RankOutcome]] = [None] * p
        self._gens, self._state, self._inject = gens, state, inject

        def runnable_candidates() -> List[Tuple[float, int, str]]:
            cands: List[Tuple[float, int, str]] = []
            for r in range(p):
                if state[r] == _READY:
                    cands.append((self._comms[r].clock, r, "run"))
                elif state[r] == _BLOCKED_RECV:
                    msg = self._match_message(r)
                    if msg is not None:
                        cands.append((max(self._comms[r].clock, msg.arrival), r, "recv"))
            return cands

        while True:
            if all(s in (_DONE, _FAILED) for s in state):
                break
            cands = runnable_candidates()
            if not cands:
                blocked = {
                    r: state[r] for r in range(p) if state[r] not in (_DONE, _FAILED)
                }
                raise DeadlockError(f"no runnable rank; blocked states: {blocked}")
            _t, rank, action = min(cands)
            comm = self._comms[rank]
            crash_at = self._crash_times.get(rank)
            if crash_at is not None and comm.clock >= crash_at:
                self._kill_rank(rank)
                continue
            if action == "recv":
                msg = self._match_message(rank)
                assert msg is not None
                self._mailboxes[rank].remove(msg)
                if msg.arrival > comm.clock:
                    self.traces[rank].add("wait", comm.clock, msg.arrival - comm.clock, "recv")
                    comm.clock = msg.arrival
                inject[rank] = (msg.source, msg.payload)
                state[rank] = _READY

            try:
                op = gens[rank].send(inject[rank])
            except StopIteration as stop:
                state[rank] = _DONE
                outcomes[rank] = RankOutcome(rank, stop.value, comm.clock)
                continue
            except Exception as exc:
                if hasattr(exc, "add_note"):
                    exc.add_note(f"raised inside simulated rank {rank}")
                raise
            finally:
                inject[rank] = None

            if isinstance(op, RecvOp):
                self._recv_filter[rank] = (op.source, op.tag)
                state[rank] = _BLOCKED_RECV
            elif isinstance(op, CollectiveOp):
                state[rank] = _BLOCKED_COLL
                self._enter_collective(rank, op)
            else:
                raise CommunicationError(
                    f"rank {rank} yielded {op!r}; only RecvOp/CollectiveOp may be yielded"
                )

        finished = [o for o in outcomes if o is not None]
        if not finished:
            raise RankFailedError(
                self.failure_log[0].rank if self.failure_log else 0,
                "no rank survived to completion",
            )
        summary = TraceSummary.from_traces(
            self.traces,
            makespan=max(o.finish_time for o in finished),
            failures=tuple(self.failure_log),
            transfer_retries=self.transfer_retries,
            recovery_fetches=self.recovery_fetches,
        )
        return finished, summary

    # ------------------------------------------------------------------
    # failure machinery
    # ------------------------------------------------------------------

    def _kill_rank(self, rank: int) -> None:
        """Fail-stop ``rank``: close it, then let any collective it was
        expected in complete over the survivors."""
        self._state[rank] = _FAILED
        self._dead.add(rank)
        planned = self._crash_times.get(rank, self._comms[rank].clock)
        self.failure_log.append(RankFailure(rank, planned))
        try:
            self._gens[rank].close()
        except Exception:  # pragma: no cover - generator cleanup is best effort
            pass
        self._mailboxes[rank].clear()
        for instance in list(self._collectives):
            pending = self._collectives.get(instance)
            if pending is None:
                continue
            pending.arrivals.pop(rank, None)
            self._try_release_collective(instance)

    # ------------------------------------------------------------------

    def _match_message(self, rank: int) -> Optional[_Message]:
        source, tag = self._recv_filter.get(rank, (ANY_SOURCE, 0))
        best: Optional[_Message] = None
        for msg in self._mailboxes[rank]:
            if source != ANY_SOURCE and msg.source != source:
                continue
            if msg.tag != tag:
                continue
            if best is None or (msg.arrival, msg.seq) < (best.arrival, best.seq):
                best = msg
        return best

    def _enter_collective(self, rank: int, op: CollectiveOp) -> None:
        pending = self._collectives.setdefault(op.instance, _PendingCollective(op.kind))
        if pending.kind != op.kind:
            raise CommunicationError(
                f"collective mismatch at instance {op.instance}: rank {rank} called "
                f"{op.kind!r} but another rank called {pending.kind!r}"
            )
        if rank in pending.arrivals:
            raise CommunicationError(f"rank {rank} re-entered collective {op.instance}")
        pending.arrivals[rank] = (self._comms[rank].clock, op)
        done_ranks = [r for r in range(self.config.num_ranks) if self._state[r] == _DONE]
        if done_ranks:
            raise DeadlockError(
                f"collective {op.kind!r} cannot complete: ranks {done_ranks} already finished"
            )
        self._try_release_collective(op.instance)

    def _try_release_collective(self, instance: int) -> None:
        """Release a pending collective once every live rank has arrived.

        Failed ranks are not waited for (the surviving communicator
        shrinks, as under MPI ULFM shrink semantics).  If the release
        time reaches a participant's planned crash time, that rank dies
        *inside* the collective: it is killed, removed from the arrival
        set, and the release re-evaluated — so no rank ever acts after
        its crash, and survivors leave the collective already seeing the
        failure in their ``sync_failures`` snapshot.
        """
        pending = self._collectives.get(instance)
        if pending is None:
            return
        p = self.config.num_ranks
        expected = [r for r in range(p) if self._state[r] not in (_DONE, _FAILED)]
        if not expected:
            del self._collectives[instance]
            return
        if any(r not in pending.arrivals for r in expected):
            return
        net = self.config.network
        n = len(expected)
        arrival_max = max(pending.arrivals[r][0] for r in expected)
        ops = {r: pending.arrivals[r][1] for r in expected}
        results: Dict[int, Any] = {}
        if pending.kind in ("barrier", "rendezvous"):
            end = arrival_max + net.barrier_time(n)
            results = {r: None for r in expected}
        elif pending.kind == "allreduce":
            nbytes = max(o.nbytes for o in ops.values())
            end = arrival_max + net.allreduce_time(n, nbytes)
            reduced = reduce_values(
                [ops[r].payload for r in expected], ops[expected[0]].op or "sum"
            )
            results = {r: reduced for r in expected}
        elif pending.kind == "bcast":
            root = ops[expected[0]].root
            if root not in ops:
                raise DeadlockError(
                    f"bcast root {root} failed; broadcast cannot complete"
                )
            end = arrival_max + net.bcast_time(n, ops[root].nbytes)
            results = {r: ops[root].payload for r in expected}
        elif pending.kind == "gather":
            root = ops[expected[0]].root
            if root not in ops:
                raise DeadlockError(
                    f"gather root {root} failed; gather cannot complete"
                )
            nbytes = max(o.nbytes for o in ops.values())
            end = arrival_max + net.bcast_time(n, nbytes)  # symmetric tree cost
            gathered = [ops[r].payload for r in expected]
            results = {r: (gathered if r == root else None) for r in expected}
        elif pending.kind == "alltoallv":
            if n != p:
                raise DeadlockError(
                    "alltoallv cannot complete after a rank failure; crashes during "
                    "Algorithm B's sort phase are outside the supported fault window"
                )
            send_totals = [ops[src].nbytes for src in range(p)]
            recv_totals = [
                sum(int(ops[src].payload[dst][1]) for src in range(p)) for dst in range(p)
            ]
            end = arrival_max + net.alltoallv_time(p, max(send_totals), max(recv_totals))
            for dst in range(p):
                results[dst] = [ops[src].payload[dst][0] for src in range(p)]
            for src in range(p):
                self.traces[src].add(
                    "comm_issued", pending.arrivals[src][0], net.byte_cost * send_totals[src],
                    "alltoallv",
                )
        else:  # pragma: no cover - kinds are produced only by SimComm
            raise CommunicationError(f"unknown collective kind {pending.kind!r}")

        # A participant whose planned crash falls within the collective
        # window dies inside it; survivors re-form and complete without it.
        doomed = [
            r
            for r in expected
            if (t := self._crash_times.get(r)) is not None and t <= end
        ]
        if doomed:
            self._kill_rank(min(doomed))  # re-enters _try_release_collective
            return

        del self._collectives[instance]
        snapshot = tuple(f.rank for f in self.failure_log)
        category = "wait" if pending.kind == "rendezvous" else "collective"
        for r in expected:
            arrive_t = pending.arrivals[r][0]
            self.traces[r].add(category, arrive_t, end - arrive_t, pending.kind)
            self._comms[r].clock = end
            self._comms[r].sync_failures = snapshot
            self._inject[r] = results[r]
            self._state[r] = _READY
