"""The discrete-event scheduler driving simulated rank programs.

:class:`SimCluster` owns the machine state: per-rank virtual clocks
(inside each :class:`~repro.simmpi.comm.SimComm`), RMA windows, NIC
availability, mailboxes, in-flight collectives, memory trackers and
traces.  Rank programs are generators; the scheduler repeatedly advances
the runnable rank with the smallest virtual clock (ties broken by rank
id), which both guarantees determinism and keeps message causality
conservative (a rank never consumes a message that an earlier-in-time
rank could still have preceded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.constants import PAPER_RAM_PER_RANK_BYTES
from repro.errors import CommunicationError, DeadlockError
from repro.simmpi.comm import (
    ANY_SOURCE,
    CollectiveOp,
    RecvOp,
    SimComm,
    reduce_values,
)
from repro.simmpi.memory import MemoryTracker
from repro.simmpi.network import NetworkModel
from repro.simmpi.nic import NicTimeline, reserve_transfer
from repro.simmpi.request import SimRequest
from repro.simmpi.trace import RankTrace, TraceSummary

RankProgram = Callable[[SimComm], Generator[Any, Any, Any]]

_READY = "ready"
_BLOCKED_RECV = "blocked_recv"
_BLOCKED_COLL = "blocked_coll"
_DONE = "done"


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and physics of the simulated machine.

    Defaults mirror the paper's testbed: 1 GB RAM per MPI process over
    gigabit ethernet.

    ``rank_speeds`` models a *heterogeneous* cluster: entry r scales rank
    r's compute throughput (1.0 = nominal, 0.5 = half speed).  The
    paper's testbed was homogeneous; heterogeneity is the regime where
    the master-worker baseline's dynamic balancing beats Algorithm A's
    static split (see tests/integration/test_heterogeneous.py).
    """

    num_ranks: int
    ram_per_rank: int = PAPER_RAM_PER_RANK_BYTES
    network: NetworkModel = field(default_factory=NetworkModel)
    record_events: bool = False
    rank_speeds: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {self.num_ranks}")
        if self.rank_speeds is not None:
            if len(self.rank_speeds) != self.num_ranks:
                raise ValueError(
                    f"rank_speeds has {len(self.rank_speeds)} entries for "
                    f"{self.num_ranks} ranks"
                )
            if any(s <= 0 for s in self.rank_speeds):
                raise ValueError("rank_speeds must be positive")

    def speed_of(self, rank: int) -> float:
        return self.rank_speeds[rank] if self.rank_speeds is not None else 1.0


@dataclass
class RankOutcome:
    """What one rank produced: its return value and final clock."""

    rank: int
    value: Any
    finish_time: float


@dataclass
class _Message:
    arrival: float
    seq: int
    source: int
    tag: int
    payload: Any


@dataclass
class _PendingCollective:
    kind: str
    arrivals: Dict[int, Tuple[float, CollectiveOp]] = field(default_factory=dict)


class SimCluster:
    """A simulated distributed-memory machine run."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        p = config.num_ranks
        self.memory: Dict[int, MemoryTracker] = {
            r: MemoryTracker(r, config.ram_per_rank) for r in range(p)
        }
        self.traces: Dict[int, RankTrace] = {
            r: RankTrace(r, record_events=config.record_events) for r in range(p)
        }
        self._comms = [SimComm(r, p, self) for r in range(p)]
        self._windows: Dict[Tuple[int, str], Tuple[Any, int]] = {}
        self._nics: List[NicTimeline] = [NicTimeline() for _ in range(p)]
        self._mailboxes: Dict[int, List[_Message]] = {r: [] for r in range(p)}
        self._send_seq = 0
        self._collectives: Dict[int, _PendingCollective] = {}
        self._recv_filter: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # machine services called by SimComm
    # ------------------------------------------------------------------

    def expose_window(self, rank: int, name: str, payload: Any, nbytes: int) -> None:
        key = (rank, name)
        if key in self._windows:
            raise CommunicationError(f"rank {rank} window {name!r} already exposed")
        self._windows[key] = (payload, int(nbytes))

    def unexpose_window(self, rank: int, name: str) -> None:
        if self._windows.pop((rank, name), None) is None:
            raise CommunicationError(f"rank {rank} window {name!r} not exposed")

    def read_window(self, rank: int, name: str) -> Any:
        try:
            return self._windows[(rank, name)][0]
        except KeyError:
            raise CommunicationError(f"rank {rank} window {name!r} not exposed") from None

    def issue_get(self, origin: int, target: int, window: str, now: float) -> SimRequest:
        try:
            payload, nbytes = self._windows[(target, window)]
        except KeyError:
            raise CommunicationError(
                f"iget: rank {target} has no exposed window {window!r}"
            ) from None
        net = self.config.network
        if origin == target:
            # local read: no wire, immediate completion
            return SimRequest(origin, target, window, 0, now, now, payload)
        wire = net.byte_cost * nbytes
        start = reserve_transfer(self._nics[origin], self._nics[target], now, wire)
        end = start + wire + net.latency
        self.traces[origin].add("comm_issued", start, wire + net.latency, f"get {window}@{target}")
        return SimRequest(origin, target, window, nbytes, now, end, payload)

    def post_send(
        self, source: int, dest: int, payload: Any, nbytes: int, tag: int, now: float
    ) -> None:
        net = self.config.network
        if dest == source:
            arrival = now
        else:
            wire = net.byte_cost * nbytes
            start = reserve_transfer(self._nics[source], self._nics[dest], now, wire)
            arrival = start + wire + net.latency
            self.traces[source].add("comm_issued", start, wire + net.latency, f"send->{dest}")
        self._send_seq += 1
        self._mailboxes[dest].append(_Message(arrival, self._send_seq, source, tag, payload))

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def run(
        self,
        program: RankProgram,
        args: Optional[Dict[int, tuple]] = None,
    ) -> Tuple[List[RankOutcome], TraceSummary]:
        """Run ``program(comm, *args[rank])`` on every rank to completion.

        Returns per-rank outcomes (in rank order) and the trace summary.
        Any exception raised inside a rank program propagates to the
        caller (with rank context), mirroring an MPI abort.
        """
        p = self.config.num_ranks
        gens: List[Generator] = []
        for r in range(p):
            extra = args.get(r, ()) if args else ()
            gens.append(program(self._comms[r], *extra))

        state = [_READY] * p
        inject: List[Any] = [None] * p  # value to send into the generator
        outcomes: List[Optional[RankOutcome]] = [None] * p

        def runnable_candidates() -> List[Tuple[float, int, str]]:
            cands: List[Tuple[float, int, str]] = []
            for r in range(p):
                if state[r] == _READY:
                    cands.append((self._comms[r].clock, r, "run"))
                elif state[r] == _BLOCKED_RECV:
                    msg = self._match_message(r)
                    if msg is not None:
                        cands.append((max(self._comms[r].clock, msg.arrival), r, "recv"))
            return cands

        while True:
            if all(s == _DONE for s in state):
                break
            cands = runnable_candidates()
            if not cands:
                blocked = {r: state[r] for r in range(p) if state[r] != _DONE}
                raise DeadlockError(f"no runnable rank; blocked states: {blocked}")
            _t, rank, action = min(cands)
            comm = self._comms[rank]
            if action == "recv":
                msg = self._match_message(rank)
                assert msg is not None
                self._mailboxes[rank].remove(msg)
                if msg.arrival > comm.clock:
                    self.traces[rank].add("wait", comm.clock, msg.arrival - comm.clock, "recv")
                    comm.clock = msg.arrival
                inject[rank] = (msg.source, msg.payload)
                state[rank] = _READY

            try:
                op = gens[rank].send(inject[rank])
            except StopIteration as stop:
                state[rank] = _DONE
                outcomes[rank] = RankOutcome(rank, stop.value, comm.clock)
                continue
            except Exception as exc:
                if hasattr(exc, "add_note"):
                    exc.add_note(f"raised inside simulated rank {rank}")
                raise
            finally:
                inject[rank] = None

            if isinstance(op, RecvOp):
                self._recv_filter[rank] = (op.source, op.tag)
                state[rank] = _BLOCKED_RECV
            elif isinstance(op, CollectiveOp):
                state[rank] = _BLOCKED_COLL
                self._enter_collective(rank, op, state, inject)
            else:
                raise CommunicationError(
                    f"rank {rank} yielded {op!r}; only RecvOp/CollectiveOp may be yielded"
                )

        summary = TraceSummary.from_traces(
            self.traces, makespan=max(o.finish_time for o in outcomes if o is not None)
        )
        return [o for o in outcomes if o is not None], summary

    # ------------------------------------------------------------------

    def _match_message(self, rank: int) -> Optional[_Message]:
        source, tag = self._recv_filter.get(rank, (ANY_SOURCE, 0))
        best: Optional[_Message] = None
        for msg in self._mailboxes[rank]:
            if source != ANY_SOURCE and msg.source != source:
                continue
            if msg.tag != tag:
                continue
            if best is None or (msg.arrival, msg.seq) < (best.arrival, best.seq):
                best = msg
        return best

    def _enter_collective(
        self, rank: int, op: CollectiveOp, state: List[str], inject: List[Any]
    ) -> None:
        pending = self._collectives.setdefault(op.instance, _PendingCollective(op.kind))
        if pending.kind != op.kind:
            raise CommunicationError(
                f"collective mismatch at instance {op.instance}: rank {rank} called "
                f"{op.kind!r} but another rank called {pending.kind!r}"
            )
        if rank in pending.arrivals:
            raise CommunicationError(f"rank {rank} re-entered collective {op.instance}")
        pending.arrivals[rank] = (self._comms[rank].clock, op)
        p = self.config.num_ranks
        done_ranks = [r for r in range(p) if state[r] == _DONE]
        if done_ranks:
            raise DeadlockError(
                f"collective {op.kind!r} cannot complete: ranks {done_ranks} already finished"
            )
        if len(pending.arrivals) < p:
            return
        # all ranks arrived: compute results and release everyone
        del self._collectives[op.instance]
        net = self.config.network
        arrival_max = max(t for t, _ in pending.arrivals.values())
        ops = [pending.arrivals[r][1] for r in range(p)]
        results: List[Any]
        if op.kind in ("barrier", "rendezvous"):
            end = arrival_max + net.barrier_time(p)
            results = [None] * p
        elif op.kind == "allreduce":
            nbytes = max(o.nbytes for o in ops)
            end = arrival_max + net.allreduce_time(p, nbytes)
            reduced = reduce_values([o.payload for o in ops], ops[0].op or "sum")
            results = [reduced] * p
        elif op.kind == "bcast":
            root = ops[0].root
            end = arrival_max + net.bcast_time(p, ops[root].nbytes)
            results = [ops[root].payload] * p
        elif op.kind == "gather":
            root = ops[0].root
            nbytes = max(o.nbytes for o in ops)
            end = arrival_max + net.bcast_time(p, nbytes)  # symmetric tree cost
            gathered = [o.payload for o in ops]
            results = [gathered if r == root else None for r in range(p)]
        elif op.kind == "alltoallv":
            send_totals = [o.nbytes for o in ops]
            recv_totals = [
                sum(int(ops[src].payload[dst][1]) for src in range(p)) for dst in range(p)
            ]
            end = arrival_max + net.alltoallv_time(p, max(send_totals), max(recv_totals))
            results = [[ops[src].payload[dst][0] for src in range(p)] for dst in range(p)]
            for src in range(p):
                self.traces[src].add(
                    "comm_issued", pending.arrivals[src][0], net.byte_cost * send_totals[src],
                    "alltoallv",
                )
        else:  # pragma: no cover - kinds are produced only by SimComm
            raise CommunicationError(f"unknown collective kind {op.kind!r}")

        category = "wait" if op.kind == "rendezvous" else "collective"
        for r in range(p):
            arrive_t = pending.arrivals[r][0]
            self.traces[r].add(category, arrive_t, end - arrive_t, op.kind)
            self._comms[r].clock = end
            inject[r] = results[r]
            state[r] = _READY
