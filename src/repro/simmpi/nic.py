"""Per-endpoint NIC occupancy with earliest-gap interval packing.

The scheduler advances each rank in *bursts* (until its next yield), so
transfers are issued in scheduler order, not global virtual-time order.
A scalar "NIC free at" clock would let a burst reserve future slots and
spuriously delay other ranks' earlier transfers.  Instead each endpoint
keeps a sorted list of busy intervals and a new transfer packs into the
earliest gap, at or after its issue time, that is free at *both*
endpoints.  The result is order-insensitive for non-overlapping traffic
(no artifact) while still serializing genuinely concurrent transfers
through a shared endpoint — the contention that matters when Algorithm
B's sender groups skew toward a few ranks.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple


class NicTimeline:
    """Busy intervals of one endpoint, sorted and non-overlapping."""

    __slots__ = ("_intervals",)

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []

    def conflict_end(self, start: float, duration: float) -> float:
        """If ``[start, start + duration)`` overlaps a busy interval,
        return that interval's end; else return ``start``."""
        if duration <= 0:
            return start
        idx = bisect.bisect_right(self._intervals, (start, float("inf"))) - 1
        if idx >= 0 and self._intervals[idx][1] > start:
            return self._intervals[idx][1]
        if idx + 1 < len(self._intervals) and self._intervals[idx + 1][0] < start + duration:
            return self._intervals[idx + 1][1]
        return start

    def reserve(self, start: float, duration: float) -> None:
        if duration <= 0:
            return
        bisect.insort(self._intervals, (start, start + duration))

    @property
    def busy_time(self) -> float:
        return sum(e - s for s, e in self._intervals)


def reserve_transfer(
    origin: NicTimeline,
    target: NicTimeline,
    issue_time: float,
    duration: float,
    stretch: float = 1.0,
) -> float:
    """Pack a transfer into the earliest common gap; returns its start time.

    ``stretch`` scales the occupancy (>= 1.0): a degraded NIC (see
    :class:`repro.faults.plan.NicDegradation`) delivers a fraction of
    nominal bandwidth, so the same bytes hold both endpoints' timelines
    proportionally longer — degradation slows *and* congests.
    """
    if stretch < 1.0:
        raise ValueError(f"stretch must be >= 1.0, got {stretch}")
    duration = duration * stretch
    if duration <= 0:
        return issue_time
    start = issue_time
    for _ in range(1_000_000):  # converges in O(#intervals) steps
        moved = origin.conflict_end(start, duration)
        moved = target.conflict_end(moved, duration)
        if moved == start:
            origin.reserve(start, duration)
            target.reserve(start, duration)
            return start
        start = moved
    raise RuntimeError("NIC reservation failed to converge")  # pragma: no cover
