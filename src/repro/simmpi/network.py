"""LogGP-style network model for the simulated cluster.

The paper's complexity analysis is written in exactly these terms: "let
lambda be the network latency and mu be the time to transfer one byte
over the network.  Then the total communication complexity is
O(lambda * p + mu * N)" (Section II.B).  We adopt the same two-parameter
model, defaulting to gigabit-ethernet constants matching the paper's
testbed, plus per-endpoint serialization so concurrent transfers into
one rank queue up rather than magically sharing the wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import PAPER_NETWORK_BYTE_COST_S, PAPER_NETWORK_LATENCY_S


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point and collective communication costs.

    Attributes:
        latency: end-to-end message latency lambda (seconds).
        byte_cost: per-byte transfer time mu (seconds/byte).
        allreduce_linear: if True, Allreduce is modeled as a linear
            (non-tree) reduce-then-broadcast — the behaviour the paper's
            Algorithm B measurements are consistent with (its sorting
            overhead grows ~linearly in p, Table IV); if False a
            logarithmic tree model is used.
        software_rma: model MPI_Get over commodity ethernet, where the
            target has no RDMA hardware and one-sided transfers progress
            only when the target's CPU enters the MPI library.  The
            rotation algorithms then rendezvous once per iteration, so
            per-iteration compute *skew* across ranks surfaces as
            residual communication — the mechanism behind the paper's
            size-independent residual-to-compute ratio (0.36 +/- 0.11)
            and its one-time efficiency drop from p=2 to p=4.  Set False
            to model an RDMA-capable interconnect.
    """

    latency: float = PAPER_NETWORK_LATENCY_S
    byte_cost: float = PAPER_NETWORK_BYTE_COST_S
    allreduce_linear: bool = True
    software_rma: bool = True

    def __post_init__(self) -> None:
        if self.latency < 0 or self.byte_cost < 0:
            raise ValueError("latency and byte_cost must be >= 0")

    def transfer_time(self, nbytes: int) -> float:
        """Time for one point-to-point transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + self.byte_cost * nbytes

    def failed_attempt_time(self, wire_time: float, penalty: float) -> float:
        """Time one transient transfer failure wastes before the retry.

        A failed attempt burns the wire time already spent (modeled
        conservatively as the full serialized transfer), one latency for
        the failure to be detected, and the fault plan's retransmit
        ``penalty`` (timeout + re-setup).  Used by the scheduler when a
        :class:`repro.faults.plan.TransientFaults` spec is active.
        """
        if wire_time < 0 or penalty < 0:
            raise ValueError("wire_time and penalty must be >= 0")
        return wire_time + self.latency + penalty

    def barrier_time(self, p: int) -> float:
        """Dissemination barrier: ceil(log2 p) rounds of small messages."""
        if p <= 1:
            return 0.0
        return math.ceil(math.log2(p)) * self.latency

    def allreduce_time(self, p: int, nbytes: int) -> float:
        """Allreduce of an ``nbytes`` payload across ``p`` ranks."""
        if p <= 1:
            return 0.0
        if self.allreduce_linear:
            # reduce to root then broadcast, both linear in p
            return 2.0 * (p - 1) * (self.latency + self.byte_cost * nbytes)
        rounds = math.ceil(math.log2(p))
        return 2.0 * rounds * (self.latency + self.byte_cost * nbytes)

    def alltoallv_time(self, p: int, max_send: int, max_recv: int) -> float:
        """Alltoallv bounded by the busiest endpoint.

        Modeled as ``p`` pairwise rounds: every rank pays one latency per
        peer plus the serialized byte time of its heavier direction.
        """
        if p <= 1:
            return 0.0
        return (p - 1) * self.latency + self.byte_cost * max(max_send, max_recv)

    def bcast_time(self, p: int, nbytes: int) -> float:
        """Binomial-tree broadcast."""
        if p <= 1:
            return 0.0
        return math.ceil(math.log2(p)) * (self.latency + self.byte_cost * nbytes)


#: A zero-cost network, useful in unit tests that assert pure semantics.
ZERO_NETWORK = NetworkModel(latency=0.0, byte_cost=0.0)
