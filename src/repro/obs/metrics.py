"""The metrics registry: counters, gauges, histograms and timing spans.

One :class:`MetricsRegistry` instance collects everything the runtime
wants to measure about *itself* — not the simulated machine (that is
``simmpi.trace``'s job) but the real process: wall-clock spans around
the scoring hot paths, task dispatch/retry counters in the
multiprocessing engine, checkpoint I/O, index builds.

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  Telemetry is opt-in; the
   default registry is disabled and every mutator starts with a single
   ``if not self.enabled: return``.  ``span()`` returns one shared no-op
   context-manager singleton, so the hot paths pay an attribute check
   and a method call, nothing else — no allocation, no lock, no clock
   read.  Search results are bitwise identical either way, because
   telemetry never feeds back into computation.
2. **Safe under threads and processes.**  Mutation takes a lock
   (supervisor thread vs. pool callback threads).  Worker *processes*
   never share a registry: each task records into its own registry and
   ships a :meth:`snapshot` back with its result; the parent folds it in
   with :meth:`merge_snapshot`.  This works identically under fork and
   spawn because nothing but plain dicts crosses the boundary.
3. **JSON all the way down.**  A snapshot is a plain-dict tree that
   serializes as-is into the RunReport (see ``repro.obs.report``) and
   the Chrome-trace exporter (``repro.obs.chrome_trace``).

Metric names are dotted strings from the documented contract
(``docs/observability.md``): ``search.candidates``, ``sweep.cohorts``,
``multiproc.retries``, ``checkpoint.flushes``, ...
"""

from __future__ import annotations

import bisect
import contextlib
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: default fixed histogram buckets (seconds-flavoured log scale); values
#: above the last edge land in the overflow bucket
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0
)

#: snapshot format version, embedded so RunReports are self-describing
SNAPSHOT_VERSION = 1


class _NullSpan:
    """The shared do-nothing context manager returned when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """A live timing span; records itself into the registry on exit.

    ``ts`` is wall-clock (``time.time``) so spans from different
    processes line up on one timeline; ``dur`` is measured with the
    monotonic ``time.perf_counter`` so it never goes negative under
    clock adjustment.
    """

    __slots__ = ("_registry", "name", "category", "args", "_t0", "_wall0")

    def __init__(self, registry: "MetricsRegistry", name: str, category: str, args: Dict[str, Any]):
        self._registry = registry
        self.name = name
        self.category = category
        self.args = args

    def __enter__(self) -> "_Span":
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = time.perf_counter() - self._t0
        self._registry._record_span(
            self.name, self.category, self._wall0, duration, self.args
        )
        return False


class MetricsRegistry:
    """Process-local registry of counters, gauges, histograms and spans."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # name -> (bucket edges, counts[len(edges)+1], sum, count)
        self._histograms: Dict[str, Dict[str, Any]] = {}
        # each span: {name, cat, pid, ts, dur, args}
        self._spans: List[Dict[str, Any]] = []

    # -- mutators --------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Increment counter ``name`` by ``value`` (monotonic by contract)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(
        self, name: str, value: float, buckets: Optional[Sequence[float]] = None
    ) -> None:
        """Record ``value`` into the fixed-bucket histogram ``name``.

        The bucket layout is fixed at the histogram's first observation;
        later ``buckets`` arguments are ignored, which keeps merges
        well-defined.
        """
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                edges = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
                if list(edges) != sorted(edges) or len(edges) < 1:
                    raise ValueError(f"histogram buckets must be sorted, got {edges}")
                hist = self._histograms[name] = {
                    "buckets": list(edges),
                    "counts": [0] * (len(edges) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            hist["counts"][bisect.bisect_left(hist["buckets"], value)] += 1
            hist["sum"] += value
            hist["count"] += 1

    def span(self, name: str, category: str = "", **args: Any):
        """Context manager timing a block; no-op singleton when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, category, args)

    def _record_span(
        self, name: str, category: str, ts: float, duration: float, args: Dict[str, Any]
    ) -> None:
        with self._lock:
            self._spans.append(
                {
                    "name": name,
                    "cat": category,
                    "pid": os.getpid(),
                    "ts": ts,
                    "dur": duration,
                    "args": args,
                }
            )

    # -- reading ---------------------------------------------------------

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return list(self._spans)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready plain-dict image of everything recorded so far."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "pid": os.getpid(),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "buckets": list(h["buckets"]),
                        "counts": list(h["counts"]),
                        "sum": h["sum"],
                        "count": h["count"],
                    }
                    for name, h in self._histograms.items()
                },
                "spans": [dict(s) for s in self._spans],
            }

    def merge_snapshot(self, snap: Optional[Dict[str, Any]]) -> None:
        """Fold another registry's snapshot in (cross-process aggregation).

        Counters and histogram cells add; gauges last-write-win; spans
        concatenate.  Histograms with mismatched bucket layouts raise —
        the contract fixes the layout per metric name.
        """
        if not snap:
            return
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snap.get("gauges", {}))
            for name, theirs in snap.get("histograms", {}).items():
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = {
                        "buckets": list(theirs["buckets"]),
                        "counts": list(theirs["counts"]),
                        "sum": theirs["sum"],
                        "count": theirs["count"],
                    }
                    continue
                if mine["buckets"] != list(theirs["buckets"]):
                    raise ValueError(
                        f"histogram {name!r}: mismatched bucket layouts "
                        f"{mine['buckets']} vs {theirs['buckets']}"
                    )
                mine["counts"] = [a + b for a, b in zip(mine["counts"], theirs["counts"])]
                mine["sum"] += theirs["sum"]
                mine["count"] += theirs["count"]
            self._spans.extend(dict(s) for s in snap.get("spans", []))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()


#: the process-wide default registry — disabled until someone opts in
_DEFAULT = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry the hot paths record into."""
    return _DEFAULT


def enable_metrics(enabled: bool = True) -> MetricsRegistry:
    """Switch the default registry on (or off); returns it for chaining.

    Enabling does not clear prior state; call :meth:`MetricsRegistry.reset`
    for a fresh run.
    """
    _DEFAULT.enabled = enabled
    return _DEFAULT


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry):
    """Temporarily make ``registry`` the process default.

    The multiprocessing engine runs each worker task under a fresh
    registry so nested instrumentation (index builds, shard searches,
    checkpoint writes) lands in a per-task snapshot that ships back to
    the supervisor with the task result.  Process-wide swap, so only for
    single-threaded scopes (worker processes are).
    """
    global _DEFAULT
    saved = _DEFAULT
    _DEFAULT = registry
    try:
        yield registry
    finally:
        _DEFAULT = saved
