"""RunReport: the versioned, engine-independent run record.

Every engine already returns a :class:`~repro.core.results.SearchReport`
whose shape diverges per engine — trace present or not, fault stats
under different extras keys, metrics nowhere.  A :class:`RunReport`
merges all of it into one schema-versioned JSON document:

* run identity (algorithm, engine, rank count, schema version);
* headline results (virtual time, candidate counts, hit summary);
* the full :class:`~repro.simmpi.trace.TraceSummary` — totals *and*
  per-rank category breakdowns — when the engine produced one;
* a normalized fault/recovery block with the same keys regardless of
  which engine the faults happened in;
* canonicalized engine extras (see ``repro.obs.naming``);
* a metrics-registry snapshot (see ``repro.obs.metrics``).

This is the file ``repro search --report-out report.json`` writes, the
input ``benchmarks/regression.py`` gates on, and the schema documented
in ``docs/observability.md``.  ``SCHEMA`` is bumped on breaking shape
changes; readers reject unknown majors rather than guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.obs.naming import canonicalize_extras

if TYPE_CHECKING:  # pragma: no cover - typing only; runtime import would
    # close the cycle core.results -> simmpi -> faults -> obs -> here
    from repro.core.results import SearchReport
    from repro.simmpi.trace import TraceSummary

#: schema identifier; bump the trailing integer on breaking changes
SCHEMA = "repro.run_report/1"

#: normalized fault-block defaults: "nothing went wrong"
_FAULT_DEFAULTS: Dict[str, Any] = {
    "failed_ranks": [],
    "failed_tasks": [],
    "failed_units": 0,
    "recovery_retries": 0,
    "recovery_timeouts": 0,
    "recovery_fetches": 0,
    "recovery_time": 0.0,
    "degraded": False,
}

_REQUIRED_KEYS = (
    "schema",
    "algorithm",
    "engine",
    "num_ranks",
    "virtual_time",
    "candidates_evaluated",
    "results",
    "trace",
    "faults",
    "extras",
    "metrics",
)


def engine_of(report: "SearchReport") -> str:
    """Classify which substrate produced a SearchReport."""
    if report.algorithm == "multiprocess":
        return "multiproc"
    if report.algorithm.endswith("_mpi"):
        return "mpi4py"
    if report.algorithm == "serial":
        return "serial"
    if report.algorithm == "service":
        return "service"
    return "simmpi"


def _trace_payload(trace: "Optional[TraceSummary]") -> Optional[Dict[str, Any]]:
    if trace is None:
        return None
    return {
        "makespan": trace.makespan,
        "total_compute": trace.total_compute,
        "total_wait": trace.total_wait,
        "total_collective": trace.total_collective,
        "total_comm_issued": trace.total_comm_issued,
        "total_recovery": trace.total_recovery,
        "total_index_build": trace.total_index_build,
        "total_sweep": trace.total_sweep,
        "mean_residual_to_compute": trace.mean_residual_to_compute,
        "masking_effectiveness": trace.masking_effectiveness,
        "per_rank": {
            str(rank): {
                "compute": t.compute,
                "wait": t.wait,
                "collective": t.collective,
                "comm_issued": t.comm_issued,
                "recovery": t.recovery,
                "index_build": t.index_build,
                "sweep": t.sweep,
            }
            for rank, t in trace.per_rank.items()
        },
    }


def _fault_payload(extras: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize fault/recovery stats from canonicalized extras."""
    faults = dict(_FAULT_DEFAULTS)
    for key in faults:
        if key in extras:
            faults[key] = extras[key]
    faults["failed_units"] = len(faults["failed_ranks"]) + len(faults["failed_tasks"])
    faults["degraded"] = bool(faults["degraded"] or faults["failed_units"])
    return faults


@dataclass
class RunReport:
    """One run, one schema — see the module docstring."""

    algorithm: str
    engine: str
    num_ranks: int
    virtual_time: float
    candidates_evaluated: int
    results: Dict[str, Any]
    trace: Optional[Dict[str, Any]] = None
    faults: Dict[str, Any] = field(default_factory=lambda: dict(_FAULT_DEFAULTS))
    extras: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: long-lived-service section (admission/health/counters); None for
    #: batch runs, so the schema version needs no bump — readers treat a
    #: missing key as "not a service run"
    service: Optional[Dict[str, Any]] = None
    #: autotuner section (calibration terms, chosen plan, predicted vs.
    #: measured phase times, lower-bound projection); None unless the
    #: run was tuned — optional like ``service``, so no schema bump
    tuning: Optional[Dict[str, Any]] = None
    schema: str = SCHEMA

    @property
    def candidates_per_second(self) -> float:
        if self.virtual_time <= 0:
            return 0.0
        return self.candidates_evaluated / self.virtual_time

    # -- construction ----------------------------------------------------

    @classmethod
    def from_search_report(
        cls,
        report: "SearchReport",
        metrics: Optional[Dict[str, Any]] = None,
        service: Optional[Dict[str, Any]] = None,
        tuning: Optional[Dict[str, Any]] = None,
    ) -> "RunReport":
        """Merge a SearchReport (+ optional metrics snapshot) into one record.

        ``service`` attaches a :meth:`SearchService.service_report`
        payload for runs served by the long-lived service; ``tuning``
        attaches the autotuner's :data:`repro.tune.tuner.TUNING_SCHEMA`
        section for autotuned runs."""
        extras = canonicalize_extras(report.extras)
        peak = report.max_peak_memory
        return cls(
            algorithm=report.algorithm,
            engine=engine_of(report),
            num_ranks=report.num_ranks,
            virtual_time=report.virtual_time,
            candidates_evaluated=report.candidates_evaluated,
            results={
                "queries": len(report.hits),
                "queries_with_hits": sum(1 for h in report.hits.values() if h),
                "hits_reported": sum(len(h) for h in report.hits.values()),
                "max_peak_memory": peak,
            },
            trace=_trace_payload(report.trace),
            faults=_fault_payload(extras),
            extras=extras,
            metrics=dict(metrics) if metrics else {},
            service=dict(service) if service else None,
            tuning=dict(tuning) if tuning else None,
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "schema": self.schema,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "num_ranks": self.num_ranks,
            "virtual_time": self.virtual_time,
            "candidates_evaluated": self.candidates_evaluated,
            "candidates_per_second": self.candidates_per_second,
            "results": dict(self.results),
            "trace": self.trace,
            "faults": dict(self.faults),
            "extras": dict(self.extras),
            "metrics": dict(self.metrics),
        }
        if self.service is not None:
            payload["service"] = dict(self.service)
        if self.tuning is not None:
            payload["tuning"] = dict(self.tuning)
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        problems = cls.validate(payload)
        if problems:
            raise ValueError(
                "not a valid RunReport: " + "; ".join(problems)
            )
        return cls(
            algorithm=payload["algorithm"],
            engine=payload["engine"],
            num_ranks=int(payload["num_ranks"]),
            virtual_time=float(payload["virtual_time"]),
            candidates_evaluated=int(payload["candidates_evaluated"]),
            results=dict(payload["results"]),
            trace=payload["trace"],
            faults=dict(payload["faults"]),
            extras=dict(payload["extras"]),
            metrics=dict(payload["metrics"]),
            service=dict(payload["service"]) if payload.get("service") else None,
            tuning=dict(payload["tuning"]) if payload.get("tuning") else None,
            schema=payload["schema"],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "RunReport":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # -- validation ------------------------------------------------------

    @staticmethod
    def validate(payload: Any) -> List[str]:
        """Schema check; returns a list of problems (empty == valid)."""
        if not isinstance(payload, dict):
            return ["payload is not a JSON object"]
        problems = [f"missing key {k!r}" for k in _REQUIRED_KEYS if k not in payload]
        if problems:
            return problems
        schema = payload["schema"]
        if not isinstance(schema, str) or not schema.startswith("repro.run_report/"):
            problems.append(f"unrecognized schema {schema!r}")
        elif schema != SCHEMA:
            problems.append(f"unsupported schema version {schema!r} (expected {SCHEMA})")
        if not isinstance(payload["num_ranks"], int) or payload["num_ranks"] < 1:
            problems.append(f"num_ranks must be a positive int, got {payload['num_ranks']!r}")
        if payload["trace"] is not None and not isinstance(payload["trace"], dict):
            problems.append("trace must be null or an object")
        for key in ("results", "faults", "extras", "metrics"):
            if not isinstance(payload[key], dict):
                problems.append(f"{key} must be an object")
        if "service" in payload and payload["service"] is not None:
            if not isinstance(payload["service"], dict):
                problems.append("service must be null or an object")
        if "tuning" in payload and payload["tuning"] is not None:
            if not isinstance(payload["tuning"], dict):
                problems.append("tuning must be null or an object")
        return problems
