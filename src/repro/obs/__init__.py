"""repro.obs: the unified observability layer.

One subsystem, shared by every engine, for everything the runtime
measures about itself:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms, timing spans) with a disabled-mode
  fast path, wired into the scoring hot paths;
* :mod:`repro.obs.naming` — the canonical extras/metric vocabulary and
  the back-compat alias shim;
* :mod:`repro.obs.report` — :class:`RunReport`, the schema-versioned
  JSON record merging trace, extras, fault stats and metrics;
* :mod:`repro.obs.chrome_trace` — Chrome trace-event export of per-rank
  simulated timelines and per-process worker spans.

The telemetry contract (names, schema, trace categories) is documented
in ``docs/observability.md``.
"""

from repro.obs.chrome_trace import (
    chrome_trace,
    events_from_metrics,
    events_from_summary,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    enable_metrics,
    get_metrics,
    use_registry,
)
from repro.obs.naming import canonicalize_extras, simmpi_extras
from repro.obs.report import SCHEMA, RunReport

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "enable_metrics",
    "get_metrics",
    "use_registry",
    "canonicalize_extras",
    "simmpi_extras",
    "SCHEMA",
    "RunReport",
    "chrome_trace",
    "events_from_metrics",
    "events_from_summary",
    "write_chrome_trace",
]
