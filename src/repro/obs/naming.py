"""The canonical telemetry vocabulary shared by every engine.

Before this module existed each engine stuffed ad-hoc keys into
``SearchReport.extras``: the simulated engines reported transient
transfer retries as ``transfer_retries`` while the multiprocessing
supervisor called its task resubmissions ``retries``; rank failures were
``failed_ranks`` (a list of ints) but task failures were
``failed_tasks`` (a list of manifests); Algorithms A and B each
hand-built an identical extras block.  The same quantity must have the
same key in every engine before run reports can be compared or gated —
that is this module's whole job.

Two mechanisms:

* :func:`canonicalize_extras` — the back-compat shim.  Engines keep
  emitting their historical keys (tests and downstream consumers read
  them), and the shim *adds* the canonical name next to each legacy one.
  New code and ``RunReport`` read canonical names only; the legacy keys
  are frozen aliases scheduled to stay until a major version.
* :func:`simmpi_extras` — the shared builder for every simulated-cluster
  engine, so the standard block (overlap ratios, index and sweep
  accounting, fault stats) is constructed in exactly one place.

The full name contract — extras keys, metric names, trace categories —
is documented in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.config import SearchConfig
    from repro.core.search import ShardStats
    from repro.simmpi.trace import TraceSummary

#: legacy extras key -> canonical key.  The shim mirrors values from the
#: legacy name to the canonical one; engines may also emit the canonical
#: name directly.
CANONICAL_FOR_LEGACY: Dict[str, str] = {
    # recovery/retry accounting: simmpi counts transient transfer
    # retries, multiproc counts task resubmissions — same quantity
    # ("work units retried after a fault") under one name.
    "transfer_retries": "recovery_retries",
    "retries": "recovery_retries",
    "timeouts": "recovery_timeouts",
}

#: canonical keys whose value is a *count of failed work units*: rank
#: crashes in the simulated engines, quarantined tasks in multiproc.
FAILED_UNIT_SOURCES = ("failed_ranks", "failed_tasks")


def canonicalize_extras(extras: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``extras`` with canonical keys added beside legacy ones.

    Never overwrites: if an engine already emitted a canonical key the
    legacy value does not clobber it.  The input dict is not mutated.
    """
    merged = dict(extras)
    for legacy, canonical in CANONICAL_FOR_LEGACY.items():
        if legacy in merged and canonical not in merged:
            merged[canonical] = merged[legacy]
    if "failed_units" not in merged:
        for source in FAILED_UNIT_SOURCES:
            if source in merged:
                merged["failed_units"] = len(merged[source])
                break
    return merged


def simmpi_extras(
    summary: "TraceSummary",
    totals: Optional["ShardStats"] = None,
    config: Optional["SearchConfig"] = None,
    fault_tolerant: bool = False,
    **engine_specific: Any,
) -> Dict[str, Any]:
    """The standard extras block for simulated-cluster engines.

    Always present: the paper's two overlap metrics.  With ``totals``
    (real per-shard work counters): index accounting, and — when the
    config enables the sweep — sweep accounting.  With
    ``fault_tolerant`` (a fault plan was supplied): the fault/recovery
    block, including canonical names.  ``engine_specific`` keys
    (e.g. Algorithm B's ``sorting_time``) are folded in last and win.
    """
    extras: Dict[str, Any] = {
        "residual_to_compute": summary.mean_residual_to_compute,
        "masking_effectiveness": summary.masking_effectiveness,
    }
    if totals is not None:
        extras["index_build_time"] = summary.total_index_build
        extras["index_probe_fraction"] = (
            totals.index_rows / totals.rows_scored if totals.rows_scored else 0.0
        )
        if config is not None and config.use_sweep:
            extras.update(
                sweep_queries=totals.sweep_queries,
                sweep_cohorts=totals.sweep_cohorts,
                sweep_setup_time=summary.total_sweep,
            )
    if fault_tolerant:
        extras.update(
            failed_ranks=list(summary.failed_ranks),
            recovery_time=summary.total_recovery,
            transfer_retries=summary.transfer_retries,
            recovery_fetches=summary.recovery_fetches,
        )
    extras.update(engine_specific)
    return canonicalize_extras(extras)
