"""Export run timelines as Chrome trace-event JSON.

Two timeline sources feed the same output format:

* **simulated runs** — per-rank ``RankTrace.events`` recorded under
  ``ClusterConfig(record_events=True)``: one lane (tid) per rank, in
  virtual time.  Masking is directly visible: a rank whose ``compute``
  slices tile the lane with no ``wait`` gaps masked its communication;
  ``wait`` slices *are* residual communication.
* **multiprocessing runs** — wall-clock spans from the metrics registry
  (``repro.obs.metrics``): one lane per OS process, so task dispatch,
  retries, index builds and checkpoint flushes appear where they really
  ran.

Output follows the Trace Event Format's JSON-object flavour (a
``traceEvents`` array of complete events, ``ph == "X"``, timestamps in
microseconds) plus ``M``-phase metadata naming the lanes, so files load
directly in ``chrome://tracing`` and Perfetto.  ``repro trace --format
chrome`` is the CLI entry point; see ``docs/observability.md`` for the
reading guide.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.simmpi.trace import TraceSummary

#: phase constants from the trace-event spec that this exporter emits
PHASE_COMPLETE = "X"
PHASE_METADATA = "M"

_SECONDS_TO_US = 1e6


def _metadata_event(pid: int, tid: Optional[int], name: str, value: str) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": name,
        "ph": PHASE_METADATA,
        "pid": pid,
        "ts": 0,
        "args": {"name": value},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def events_from_summary(summary: "TraceSummary", pid: int = 0) -> List[Dict[str, Any]]:
    """Per-rank virtual-time events -> complete events, one lane per rank.

    Requires the run to have recorded events
    (``ClusterConfig(record_events=True)``); raises ValueError otherwise,
    mirroring :func:`repro.analysis.timeline.ascii_gantt`.
    """
    if not any(t.events for t in summary.per_rank.values()):
        raise ValueError(
            "no events recorded; run with ClusterConfig(record_events=True)"
        )
    events: List[Dict[str, Any]] = [
        _metadata_event(pid, None, "process_name", "simmpi cluster")
    ]
    for rank in sorted(summary.per_rank):
        events.append(_metadata_event(pid, rank, "thread_name", f"rank {rank}"))
        for category, start, duration, detail in summary.per_rank[rank].events:
            events.append(
                {
                    "name": detail or category,
                    "cat": category,
                    "ph": PHASE_COMPLETE,
                    "ts": start * _SECONDS_TO_US,
                    "dur": duration * _SECONDS_TO_US,
                    "pid": pid,
                    "tid": rank,
                    "args": {"category": category},
                }
            )
    return events


def events_from_metrics(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Metrics-registry spans -> complete events, one lane per process.

    Span timestamps are wall-clock seconds (comparable across processes);
    the earliest span anchors t = 0 so the trace does not start at the
    epoch.
    """
    spans = snapshot.get("spans", [])
    if not spans:
        return []
    t0 = min(span["ts"] for span in spans)
    pids = sorted({span["pid"] for span in spans})
    events: List[Dict[str, Any]] = [
        _metadata_event(pid, None, "process_name", f"worker pid {pid}") for pid in pids
    ]
    for span in spans:
        events.append(
            {
                "name": span["name"],
                "cat": span.get("cat") or "span",
                "ph": PHASE_COMPLETE,
                "ts": (span["ts"] - t0) * _SECONDS_TO_US,
                "dur": span["dur"] * _SECONDS_TO_US,
                "pid": span["pid"],
                "tid": 0,
                "args": dict(span.get("args", {})),
            }
        )
    return events


def chrome_trace(
    events: List[Dict[str, Any]], metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Wrap events in the JSON-object trace container."""
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(
    path,
    events: List[Dict[str, Any]],
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events, metadata), fh, indent=2)
        fh.write("\n")
