"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  The memory-related errors exist because a core
claim of the paper is *space optimality*: the replicated-database baseline
must fail (out of memory) on inputs the distributed algorithms handle, and
we surface that as a typed exception rather than a crash.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class InvalidSequenceError(ReproError, ValueError):
    """A protein/peptide string contains characters outside the residue alphabet."""


class SpectrumError(ReproError, ValueError):
    """A spectrum is malformed (unsorted m/z, negative intensity, ...)."""


class ConfigError(ReproError, ValueError):
    """A search or machine configuration is inconsistent."""


class OutOfMemoryError(ReproError, MemoryError):
    """A simulated rank exceeded its memory budget.

    Raised by :class:`repro.simmpi.memory.MemoryTracker` when an
    allocation would push a rank past its configured RAM cap (the paper
    uses 1 GB per MPI process).  This is how the O(N)-space baseline
    "crashes out of memory" in our reproduction of the paper's Section I
    observation.
    """

    def __init__(self, rank: int, requested: int, in_use: int, limit: int):
        self.rank = rank
        self.requested = requested
        self.in_use = in_use
        self.limit = limit
        super().__init__(
            f"rank {rank}: allocation of {requested} B would exceed memory "
            f"limit ({in_use} B in use of {limit} B)"
        )


class CommunicationError(ReproError, RuntimeError):
    """Invalid use of the simulated communication API (bad rank, unposted window, ...)."""


class DeadlockError(ReproError, RuntimeError):
    """The simulated machine made no progress while ranks were still blocked."""


class FastaError(ReproError, ValueError):
    """A FASTA file or byte range is malformed (content before the first
    header, an invalid chunk range, ...).  Subclasses ValueError so
    pre-existing callers that caught ValueError keep working."""


class FaultPlanError(ReproError, ValueError):
    """A fault plan is inconsistent (negative times, out-of-range ranks,
    non-physical degradation factors) or could not be parsed."""


class RankFailedError(ReproError, RuntimeError):
    """A simulated rank crashed (fail-stop) and a peer touched it.

    Raised inside surviving rank programs when they issue a one-sided
    Get against a dead peer's window — the simulated analogue of an MPI
    implementation reporting ``MPI_ERR_PROC_FAILED`` (ULFM).  Recovery-
    aware programs catch it and re-fetch the lost shard from a surviving
    holder; everything else aborts, as stock MPI would.
    """

    def __init__(self, rank: int, message: str = ""):
        self.rank = rank
        super().__init__(message or f"rank {rank} has failed")


class WorkerCrashError(ReproError, RuntimeError):
    """An injected crash inside a multiprocessing worker task.

    Only ever raised by the opt-in fault injector
    (:class:`repro.faults.injector.FaultInjector`); the supervised
    engine treats it like any other task failure: retry with backoff,
    then quarantine.
    """


class CheckpointError(ReproError, ValueError):
    """A checkpoint file is unreadable or belongs to a different run
    (mismatched shard count, search parameters, or query workload)."""


class IndexStoreError(ReproError, ValueError):
    """A persisted fragment-index directory cannot be trusted.

    Raised by :mod:`repro.store` when an index directory is missing, its
    header is unreadable or carries an unknown schema version, a buffer
    is truncated or disagrees with the manifest, or the content
    fingerprint does not match the database/configuration the caller is
    searching.  A stale or corrupt index must be *rejected*, never
    silently served: the build-once/load-many contract only holds if a
    loaded index is bitwise-equivalent to an in-process rebuild.
    """


class ServiceError(ReproError, RuntimeError):
    """Base class for long-lived search-service failures.

    Everything the service refuses or abandons is reported through a
    subclass of this type, never a bare RuntimeError or a hang: clients
    of :class:`repro.service.SearchService` can always distinguish
    *rejected* (admission control said no), *expired* (the request's
    deadline passed) and *failed* (execution was abandoned after
    retries) outcomes programmatically.
    """


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request because the queue is full.

    Raised immediately under the ``shed`` backpressure policy, or after
    ``admission_timeout`` seconds under the ``block`` policy.  This is
    the typed alternative to melting: an overloaded service answers
    "try again later" in bounded time instead of queueing without bound
    or hanging the client.
    """


class ServiceUnavailableError(ServiceError):
    """The service cannot admit requests right now.

    Raised when submitting before :meth:`~repro.service.SearchService.start`,
    during drain (shutdown completes in-flight work but admits nothing
    new), after :meth:`~repro.service.SearchService.stop`, or once every
    worker has died with no restart budget left.
    """


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before execution finished.

    Completed queries keep their (bitwise-deterministic) hits — the
    response is *partial*, not discarded; this error names the queries
    that were cut off.
    """


class ServiceBatchError(ServiceError):
    """A service batch was abandoned after exhausting its retry budget.

    The requests coalesced into the batch complete with status
    ``failed`` and this error's message; the service itself stays up
    (degraded), mirroring the supervised engine's quarantine semantics.
    """


class ExperimentSpecError(ConfigError):
    """An experiment scenario spec is malformed.

    Raised by :mod:`repro.experiments` when a YAML/dict scenario does
    not describe a runnable grid: an unknown axis or field, the same
    knob set twice in one mapping (dotted *and* nested forms),
    a ``faults.plan`` reference naming no declared fault plan, a table
    over an axis the grid does not vary, or an unparseable file.  A bad
    spec must fail before any cell runs — a 40-cell grid that dies on
    cell 37 because of a typo wastes hours; subclassing
    :class:`ConfigError` keeps the CLI's one-line typed-error contract.
    """


class IndexCompatError(ConfigError):
    """A search was configured with options a persisted index cannot serve.

    Raised when ``--index-path`` is combined with options that
    contradict it (``--no-index``, a simulated engine, a non-indexable
    scorer, a shard layout the store does not hold).  Subclasses
    :class:`ConfigError` because it is a configuration contradiction,
    not a corrupt store.
    """
